"""Schema dataflow analysis: abstract interpretation over document shapes.

The static verifier (PR 2/4/6) checks every layer in isolation — mappings
against their own schemas, binding chains over *formats*, conversations
over message kinds.  None of those passes can see that a transformation
route actually *produces* what the next layer consumes.  This module
closes that gap: it lowers each :class:`~repro.documents.schema.
DocumentSchema` into a field lattice (presence x scalar type x list
shape), pushes abstract documents through every mapping rule and
binding-chain route in the model, and checks the inferred output state
against the actual downstream consumer.

The lattice
-----------

An abstract document maps dotted field paths to :class:`FieldState`:

* presence — ``present`` (written on every non-raising path) or
  ``optional`` (written on some paths); paths not in the map are
  *absent* under the closed-world reading below;
* ``type_name`` — one of the schema type names, or ``any`` (top);
* ``items`` — for lists, the abstract document of one element.

Two abstract documents feed the transfer functions: schemas lower to the
state a conforming document is *declared* to have, and mapping rule
lists transfer an input state to the exact set of paths the rules write
— a closed world, since the rule language has no dynamic targets.  A
``post`` hook (arbitrary Python) collapses the output to the opaque top
element, exactly as it forfeits cacheability in the transformation
cache.

Soundness: every check only fires on *provable* facts — a type conflict
where the possible-value sets are disjoint, a read of a path no rule
writes and no schema declares.  Anything under a ``dict``/``any``
container, behind a post hook, or computed by an opaque function is
unknown and never reported.  The dynamic reference path
(``Mapping.apply`` + ``DocumentSchema.validate``) therefore raises on a
concrete document for every B2B701/702/705 finding — witnessed by the
counterexample document attached to the diagnostic — while clean routes
never raise a schema or path error (property-tested).

Diagnostics
-----------

======== ======== ====================================================
code     severity meaning
======== ======== ====================================================
B2B701   error    output field's inferred type conflicts with the
                  target schema's declaration
B2B702   warning  required target field unwritten on some rule path
B2B703   warning  lossy/narrowing conversion without a declared
                  transform function
B2B704   warning  rule reads a source path no upstream schema or
                  mapping can produce (dead rule)
B2B705   error    binding chain composes mappings whose intermediate
                  schemas disagree
B2B706   warning  BusinessRule expression reads a field the dataflow
                  proves absent from every inbound document
B2B707   info     compute has unanalyzable effects
======== ======== ====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field as dataclass_field
from typing import TYPE_CHECKING, Iterator, Sequence

from repro.core.binding import KIND_CONSUME, KIND_PRODUCE, KIND_TRANSFORM, Binding
from repro.documents.model import Document
from repro.documents.schema import DocumentSchema, FieldSpec
from repro.errors import NoRouteError
from repro.transform.mapping import (
    MISSING as _MISSING,
    Compute,
    Const,
    Each,
    Field,
    Mapping,
)
from repro.verify.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.verify.effects import analyze_function

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.integration import IntegrationModel

__all__ = [
    "PRESENT",
    "OPTIONAL",
    "FieldState",
    "AbstractDocument",
    "RouteSpec",
    "lower_schema",
    "transfer",
    "counterexample_document",
    "iter_binding_routes",
    "route_digest_payload",
    "check_mapping_dataflow",
    "check_route_dataflow",
    "check_rule_reads",
    "verify_dataflow",
]

PRESENT = "present"
OPTIONAL = "optional"

SCALAR_TYPES = frozenset({"str", "int", "float", "number", "bool"})
_NUMERIC_TYPES = frozenset({"int", "float", "number"})

# Possible concrete value types per schema type name; a declared/inferred
# pair conflicts exactly when these sets are disjoint (``any`` = all).
_POSSIBLE: dict[str, frozenset[str]] = {
    "str": frozenset({"str"}),
    "int": frozenset({"int"}),
    "float": frozenset({"int", "float"}),
    "number": frozenset({"int", "float"}),
    "bool": frozenset({"bool"}),
    "list": frozenset({"list"}),
    "dict": frozenset({"dict"}),
}


def types_conflict(inferred: str, declared: str) -> bool:
    """True when no concrete value can satisfy both type names."""
    if inferred == "any" or declared == "any":
        return False
    inferred_set = _POSSIBLE.get(inferred)
    declared_set = _POSSIBLE.get(declared)
    if inferred_set is None or declared_set is None:
        return False
    return not (inferred_set & declared_set)


# ---------------------------------------------------------------------------
# The lattice
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldState:
    """Abstract value of one document field."""

    presence: str = PRESENT
    type_name: str = "any"
    items: "AbstractDocument | None" = None


# resolve() markers: a path can be provably absent (closed world) or
# unknown (opaque state, or below a dict/any/list container).
ABSENT = FieldState(presence="absent", type_name="absent")
UNKNOWN = FieldState(presence=OPTIONAL, type_name="any")


@dataclass
class AbstractDocument:
    """Field-path -> :class:`FieldState`, insertion-ordered like schemas.

    ``open`` distinguishes the two sources of abstract documents: a
    schema-lowered state is *open* — schemas are partial contracts, so an
    undeclared path may still be present on conforming documents — while
    a mapping-transferred state is *closed*: the rule language has no
    dynamic targets, so the write set is exact and an unwritten path is
    provably absent.
    """

    fields: dict[str, FieldState] = dataclass_field(default_factory=dict)
    opaque: bool = False
    open: bool = False

    def resolve(self, path: str) -> FieldState:
        """The abstract state of ``path``: a field state, ABSENT, or UNKNOWN."""
        if self.opaque:
            return UNKNOWN
        state = self.fields.get(path)
        if state is not None:
            return state
        # Below a known container?  dict/any containers hide their interior;
        # list interiors are indexed, which the flat path map cannot track.
        for declared, declared_state in self.fields.items():
            if path.startswith(declared + "."):
                if declared_state.type_name in ("dict", "any", "list"):
                    return UNKNOWN
                return ABSENT  # reading below a scalar always fails
        # Interior node of declared leaves (e.g. ``header`` when
        # ``header.po_number`` is declared): a present dict container.
        prefix = path + "."
        interior = [state for p, state in self.fields.items() if p.startswith(prefix)]
        if interior:
            presence = (
                PRESENT
                if any(state.presence == PRESENT for state in interior)
                else OPTIONAL
            )
            return FieldState(presence=presence, type_name="dict")
        return UNKNOWN if self.open else ABSENT

    def scalar_ancestor(self, path: str) -> tuple[str, str] | None:
        """First declared field that ``path`` writes below despite being a
        scalar — the construction-time contradiction ``Mapping`` rejects."""
        for declared, state in self.fields.items():
            if path.startswith(declared + ".") and state.type_name in SCALAR_TYPES:
                return declared, state.type_name
        return None


_OPAQUE = AbstractDocument(opaque=True)


def lower_schema(schema: DocumentSchema | None) -> AbstractDocument:
    """Lower a schema into the abstract state of a conforming document."""
    if schema is None:
        return _OPAQUE
    fields: dict[str, FieldState] = {}
    for spec in schema.fields:
        fields[spec.path] = FieldState(
            presence=PRESENT if spec.required else OPTIONAL,
            type_name=spec.type_name,
            items=lower_schema(spec.items) if spec.items is not None else None,
        )
    return AbstractDocument(fields=fields, open=True)


def _join_types(left: str, right: str) -> str:
    if left == right:
        return left
    if left in _NUMERIC_TYPES and right in _NUMERIC_TYPES:
        return "number"
    return "any"


def _value_type(value: object) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, list):
        return "list"
    if isinstance(value, dict):
        return "dict"
    return "any"


# Result types of the converter library (repro.transform.functions);
# factory-built converters are recognized by their ``__name__`` prefix.
_CONVERTER_RESULTS = {
    "to_str": "str",
    "upper": "str",
    "lower": "str",
    "strip": "str",
    "to_int": "int",
    "to_cents": "int",
    "to_float": "float",
    "money": "float",
    "from_cents": "float",
}
_CONVERTER_PREFIXES = (
    ("truncated_", "str"),
    ("scaled_", "float"),
    ("code_map_", "any"),
    ("chained_", "any"),
)


def converter_result_type(convert) -> str:
    name = getattr(convert, "__name__", "")
    result = _CONVERTER_RESULTS.get(name)
    if result is not None:
        return result
    for prefix, result in _CONVERTER_PREFIXES:
        if name.startswith(prefix):
            return result
    return "any"


# ---------------------------------------------------------------------------
# Transfer functions
# ---------------------------------------------------------------------------


class _Sink:
    """Diagnostic collector for one mapping analysis (None-able).

    ``reads_only`` restricts emission to read-side findings (B2B704) —
    used when replaying a mapping's rules against an upstream state at
    route level, where the write-side findings were already reported by
    the per-mapping pass.
    """

    def __init__(self, mapping: Mapping, location: str, reads_only: bool = False):
        self.mapping = mapping
        self.location = location
        self.reads_only = reads_only
        self.diagnostics: list[Diagnostic] = []
        # target path -> the optional source whose absence skips the write
        self.may_skip: dict[str, str] = {}

    def add(self, code: str, severity: str, message: str, hint: str = "") -> None:
        self.diagnostics.append(
            Diagnostic(code, severity, self.location, message, hint=hint)
        )


def _field_result_type(rule: Field, source_type: str) -> str:
    if rule.convert is None:
        return source_type
    return converter_result_type(rule.convert)


def _check_write(
    sink: _Sink,
    declared: AbstractDocument,
    target: str,
    inferred: str,
    rule_note: str,
    narrowing_source: str | None,
) -> None:
    """B2B701/B2B703 for one write against the declared target lattice."""
    spec = declared.fields.get(target)
    if spec is None:
        return
    schema_name = sink.mapping.target_schema.name if sink.mapping.target_schema else ""
    if narrowing_source is not None and inferred != "any":
        # Classic narrowing shapes get the dedicated diagnostic: the fix
        # is a declared transform function, not a schema change.
        if inferred in ("list", "dict") and spec.type_name in SCALAR_TYPES:
            sink.add(
                "B2B703",
                SEVERITY_WARNING,
                f"{rule_note} copies {narrowing_source!r} ({inferred}) into "
                f"{target!r} declared as {spec.type_name} in schema "
                f"{schema_name!r} without a transform function",
                hint="declare a converter that flattens the value, or fix "
                "the target type",
            )
            return
        if inferred in _NUMERIC_TYPES and spec.type_name == "str":
            sink.add(
                "B2B703",
                SEVERITY_WARNING,
                f"{rule_note} copies {narrowing_source!r} ({inferred}) into "
                f"{target!r} declared as str in schema {schema_name!r} "
                "without a transform function",
                hint="convert explicitly (functions.to_str) or widen the "
                "schema type",
            )
            return
        if inferred in ("float", "number") and spec.type_name == "int":
            sink.add(
                "B2B703",
                SEVERITY_WARNING,
                f"{rule_note} copies {narrowing_source!r} ({inferred}) into "
                f"{target!r} declared as int in schema {schema_name!r} "
                "without a transform function",
                hint="convert explicitly (functions.to_int/to_cents) or "
                "declare the field as number",
            )
            return
    if types_conflict(inferred, spec.type_name):
        sink.add(
            "B2B701",
            SEVERITY_ERROR,
            f"{rule_note} writes {target!r} as {inferred}, but schema "
            f"{schema_name!r} declares it {spec.type_name}",
            hint="fix the rule's value or the schema declaration",
        )


def _apply_rules(
    rules: Sequence[object],
    state: AbstractDocument,
    sink: _Sink | None,
    declared: AbstractDocument | None,
    origin: str,
    path_prefix: str = "",
) -> AbstractDocument:
    """Transfer ``state`` through ``rules``; emit diagnostics into ``sink``.

    ``declared`` is the lowered target schema (for B2B701/703 write
    checks); ``origin`` describes where the input state came from (a
    schema or an upstream mapping) for B2B704 messages; ``path_prefix``
    renders nested Each targets as ``parent[].child``.
    """
    out = AbstractDocument()
    for index, rule in enumerate(rules):
        note = f"rule {index} ({type(rule).__name__})"
        if isinstance(rule, Field):
            source_state = state.resolve(rule.source)
            if source_state is ABSENT and sink is not None:
                read_path = path_prefix + rule.source
                sink.add(
                    "B2B704",
                    SEVERITY_WARNING,
                    f"{note} reads source path {read_path!r}, which no "
                    "upstream schema or mapping produces"
                    + (f" ({origin})" if origin else ""),
                    hint="remove the dead rule or fix the source path",
                )
            source_type = (
                "any" if source_state in (ABSENT, UNKNOWN)
                else source_state.type_name
            )
            converted = _field_result_type(rule, source_type)
            # presence/type of the written value
            if rule.default is not _MISSING:
                if source_state is ABSENT:
                    inferred = _value_type(rule.default)
                else:
                    inferred = _join_types(converted, _value_type(rule.default))
                presence = PRESENT
            elif rule.required:
                inferred = converted
                presence = PRESENT  # on every non-raising path
            else:
                inferred = converted
                if source_state is ABSENT:
                    continue  # never written
                presence = source_state.presence
                if (
                    presence != PRESENT
                    and source_state is not UNKNOWN
                    and sink is not None
                ):
                    # only a *declared-optional* source proves a skip path;
                    # an unknown source may well always be present
                    sink.may_skip[path_prefix + rule.target] = rule.source
            if sink is not None and declared is not None:
                narrowing = rule.source if rule.convert is None else None
                _check_write(
                    sink, declared, rule.target, inferred, note, narrowing
                )
            out.fields[rule.target] = FieldState(
                presence=presence, type_name=inferred
            )
        elif isinstance(rule, Const):
            inferred = _value_type(rule.value)
            if sink is not None and declared is not None:
                _check_write(sink, declared, rule.target, inferred, note, None)
            out.fields[rule.target] = FieldState(type_name=inferred)
        elif isinstance(rule, Compute):
            if sink is not None and not sink.reads_only:
                effects = analyze_function(rule.fn)
                if not effects.analyzable:
                    name = rule.label or getattr(rule.fn, "__name__", "<fn>")
                    sink.add(
                        "B2B707",
                        SEVERITY_INFO,
                        f"{note} compute {name!r} for "
                        f"{path_prefix + rule.target!r} has unanalyzable "
                        f"effects ({effects.reason})",
                        hint="use a plain two-argument function so the "
                        "effect analyzer (and the transform cache) can "
                        "reason about it",
                    )
            out.fields[rule.target] = FieldState(type_name="any")
        elif isinstance(rule, Each):
            source_state = state.resolve(rule.source)
            if sink is not None:
                if source_state is ABSENT:
                    sink.add(
                        "B2B704",
                        SEVERITY_WARNING,
                        f"{note} reads source list {rule.source!r}, which no "
                        "upstream schema or mapping produces"
                        + (f" ({origin})" if origin else ""),
                        hint="remove the dead rule or fix the source path",
                    )
                elif (
                    source_state is not UNKNOWN
                    and source_state.type_name not in ("list", "any")
                ):
                    sink.add(
                        "B2B704",
                        SEVERITY_WARNING,
                        f"{note} iterates {rule.source!r}, which upstream "
                        f"declares as {source_state.type_name}, not a list",
                        hint="fix the source path or the upstream schema",
                    )
            item_state = _OPAQUE
            if (
                source_state not in (ABSENT, UNKNOWN)
                and source_state.items is not None
            ):
                item_state = source_state.items
            declared_items: AbstractDocument | None = None
            if declared is not None:
                target_spec = declared.fields.get(rule.target)
                if target_spec is not None and target_spec.items is not None:
                    declared_items = target_spec.items
            items_out = _apply_rules(
                rule.rules,
                item_state,
                sink,
                declared_items,
                origin,
                path_prefix=f"{path_prefix}{rule.target}[].",
            )
            out.fields[rule.target] = FieldState(
                type_name="list", items=items_out
            )
    return out


def transfer(mapping: Mapping, state: AbstractDocument) -> AbstractDocument:
    """The abstract output of applying ``mapping`` to ``state``."""
    if mapping.post is not None:
        # a post hook may write (or delete) anything
        return _OPAQUE
    return _apply_rules(mapping.rules, state, None, None, "")


# ---------------------------------------------------------------------------
# Counterexamples
# ---------------------------------------------------------------------------


def _sample_value(spec: FieldSpec):
    if spec.choices:
        return spec.choices[0]
    type_name = spec.type_name
    if type_name == "str":
        return "X"
    if type_name == "int":
        return 1
    if type_name in ("float", "number"):
        return 1.0
    if type_name == "bool":
        return True
    if type_name == "dict":
        return {}
    if type_name == "list":
        count = max(spec.min_items, 1)
        element: dict = {}
        if spec.items is not None:
            item = Document("item", "item", {})
            for item_spec in spec.items.fields:
                if item_spec.required:
                    item.set(item_spec.path, _sample_value(item_spec))
            element = item.data
        return [dict(element) for _ in range(count)]
    return None


def counterexample_document(schema: DocumentSchema | None) -> Document | None:
    """A minimal concrete document satisfying ``schema`` using only its
    required fields — the witness for B2B701/702/705 findings (optional
    fields are deliberately omitted so skip-paths are exercised)."""
    if schema is None:
        return None
    document = Document(
        schema.format_name or "abstract", schema.doc_type or "document", {}
    )
    for spec in schema.fields:
        if spec.required:
            document.set(spec.path, _sample_value(spec))
    return document


def _witness_trace(schema: DocumentSchema | None) -> tuple[str, ...]:
    document = counterexample_document(schema)
    if document is None:
        return ()
    payload = json.dumps(document.data, sort_keys=True)
    return (
        f"counterexample document ({document.format_name}/"
        f"{document.doc_type}): {payload}",
    )


# ---------------------------------------------------------------------------
# Per-mapping analysis
# ---------------------------------------------------------------------------


def check_mapping_dataflow(mapping: Mapping) -> list[Diagnostic]:
    """Dataflow-lint one mapping against its own schemas (B2B701-704, 707)."""
    location = f"mapping:{mapping.name}"
    sink = _Sink(mapping, location)
    in_state = lower_schema(mapping.source_schema)
    declared = (
        lower_schema(mapping.target_schema)
        if mapping.target_schema is not None and mapping.post is None
        else None
    )
    origin = (
        f"source schema {mapping.source_schema.name!r}"
        if mapping.source_schema is not None
        else ""
    )
    out = _apply_rules(mapping.rules, in_state, sink, declared, origin)
    if declared is not None and mapping.target_schema is not None:
        _check_required_presence(sink, mapping.target_schema, out)
    witness = _witness_trace(mapping.source_schema)
    return [
        diag if not witness or diag.code not in ("B2B701", "B2B702")
        else _with_trace(diag, witness)
        for diag in sink.diagnostics
    ]


def _with_trace(diag: Diagnostic, trace: tuple[str, ...]) -> Diagnostic:
    from dataclasses import replace

    return replace(diag, trace=diag.trace + trace)


def _check_required_presence(
    sink: _Sink, schema: DocumentSchema, out: AbstractDocument
) -> None:
    """B2B702: required target fields whose write may be skipped."""
    for spec in schema.fields:
        if not spec.required:
            continue
        state = out.fields.get(spec.path)
        source = sink.may_skip.get(spec.path)
        if state is not None and state.presence == OPTIONAL and source is not None:
            sink.add(
                "B2B702",
                SEVERITY_WARNING,
                f"required target field {spec.path!r} of schema "
                f"{schema.name!r} is unwritten when optional source "
                f"{source!r} is absent",
                hint="give the Field rule a default= or mark the target "
                "field optional",
            )


# ---------------------------------------------------------------------------
# Binding-chain routes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RouteSpec:
    """One transformation chain a binding drives for one doc type."""

    binding: str
    direction: str
    doc_type: str
    chain: tuple[Mapping, ...]

    @property
    def label(self) -> str:
        return f"binding:{self.binding}/{self.direction}/{self.doc_type}"


def iter_binding_routes(model: "IntegrationModel") -> Iterator[RouteSpec]:
    """Enumerate every mapping chain the model's bindings can execute.

    Mirrors the format simulation of the B2B301 check: transform steps
    accumulate their resolved routes into one composed chain per
    (binding, direction, doc type); ``produce`` steps reset the chain
    (the producer's output is not statically known), ``consume`` ends it.
    Routes the registry cannot resolve are skipped here — B2B301 already
    reports them.
    """
    from repro.verify.binding_checks import _chain_context

    for binding in model.bindings.values():
        inbound_docs, outbound_docs, inbound_start, outbound_start = _chain_context(
            binding, model
        )
        for direction, docs, start, chain_steps in (
            ("inbound", inbound_docs, inbound_start, binding.inbound),
            ("outbound", outbound_docs, outbound_start, binding.outbound),
        ):
            if start is None:
                continue
            for doc_type in dict.fromkeys(docs):
                mappings: list[Mapping] = []
                current: str | None = start
                for step in chain_steps:
                    if step.kind == KIND_CONSUME:
                        break
                    if step.kind == KIND_PRODUCE:
                        if mappings:
                            yield RouteSpec(
                                binding.name, direction, doc_type, tuple(mappings)
                            )
                            mappings = []
                        current = None
                        continue
                    if step.kind != KIND_TRANSFORM or current is None:
                        continue
                    try:
                        hops = model.transforms.route(
                            current, step.target_format, doc_type
                        )
                    except NoRouteError:
                        hops = None  # B2B301's territory
                    if hops:
                        mappings.extend(hops)
                    current = step.target_format
                yield RouteSpec(
                    binding.name, direction, doc_type, tuple(mappings)
                )


def route_digest_payload(route: RouteSpec) -> dict:
    """The content identity of a route verdict: the exact mapping chain.

    Registry sweeps key cached route verdicts on this payload, so
    agreements sharing a protocol (and therefore a binding) reuse one
    verdict, and editing any mapping in the chain re-verifies exactly
    the routes that compose it.
    """
    return {
        "route": route.label,
        "chain": [mapping.fingerprint() for mapping in route.chain],
    }


def check_route_dataflow(route: RouteSpec) -> list[Diagnostic]:
    """Push an abstract document through a composed chain (B2B704/B2B705).

    Hops after the first consume a *closed* state (the upstream mapping's
    exact write set), so two provable facts appear that the per-mapping
    pass cannot see: the consumer's source schema disagreeing with what
    the producer writes (B2B705), and rules reading paths the producer
    never writes (B2B704).
    """
    diagnostics: list[Diagnostic] = []
    if len(route.chain) < 2:
        return diagnostics
    first = route.chain[0]
    state = transfer(first, lower_schema(first.source_schema))
    producer = first
    witness = _witness_trace(first.source_schema)
    for mapping in route.chain[1:]:
        consumer_schema = mapping.source_schema
        if consumer_schema is not None and not state.opaque:
            for spec in consumer_schema.fields:
                resolved = state.resolve(spec.path)
                if spec.required and resolved is ABSENT:
                    diagnostics.append(
                        Diagnostic(
                            "B2B705",
                            SEVERITY_ERROR,
                            route.label,
                            f"intermediate schemas disagree: mapping "
                            f"{mapping.name!r} requires {spec.path!r} "
                            f"(schema {consumer_schema.name!r}), but upstream "
                            f"mapping {producer.name!r} never writes it",
                            hint="add the missing rule to the upstream "
                            "mapping or relax the consumer schema",
                            trace=witness,
                        )
                    )
                elif resolved not in (ABSENT, UNKNOWN) and types_conflict(
                    resolved.type_name, spec.type_name
                ):
                    diagnostics.append(
                        Diagnostic(
                            "B2B705",
                            SEVERITY_ERROR,
                            route.label,
                            f"intermediate schemas disagree: mapping "
                            f"{producer.name!r} writes {spec.path!r} as "
                            f"{resolved.type_name}, but mapping "
                            f"{mapping.name!r} requires {spec.type_name} "
                            f"(schema {consumer_schema.name!r})",
                            hint="align the intermediate schemas or insert "
                            "a converting mapping",
                            trace=witness,
                        )
                    )
        read_sink = _Sink(mapping, route.label, reads_only=True)
        next_state = _apply_rules(
            mapping.rules,
            state,
            read_sink,
            None,
            f"output of mapping {producer.name!r}",
        )
        diagnostics.extend(read_sink.diagnostics)
        state = _OPAQUE if mapping.post is not None else next_state
        producer = mapping
    return diagnostics


# ---------------------------------------------------------------------------
# Expression reads (B2B706)
# ---------------------------------------------------------------------------

# Mirrors the access conventions of Document._access / the B2B202 check:
# ``amount`` aliases the summary totals, and bare keys fall back to the
# header section.
_AMOUNT_ALIASES = ("summary.total_amount", "summary.accepted_amount")


def _readable(states: list[AbstractDocument], path: str) -> bool:
    candidates = [path]
    if path == "amount":
        candidates.extend(_AMOUNT_ALIASES)
    if "." not in path:
        candidates.append(f"header.{path}")
    for state in states:
        for candidate in candidates:
            if state.resolve(candidate) is not ABSENT:
                return True
    return False


def check_rule_reads(
    model: "IntegrationModel", routes: Sequence[RouteSpec]
) -> list[Diagnostic]:
    """B2B706: BusinessRule expressions reading provably-absent fields.

    The abstract documents rules can observe are the final states of the
    inbound routes (the engine evaluates rules over normalized documents
    delivered by bindings).  A read is only flagged when the path is
    absent from *every* inbound document state — one producible doc type
    keeps the rule alive.
    """
    states: list[AbstractDocument] = []
    for route in routes:
        if route.direction != "inbound" or not route.chain:
            continue
        state = lower_schema(route.chain[0].source_schema)
        for mapping in route.chain:
            state = transfer(mapping, state)
        states.append(state)
    if not states or any(state.opaque for state in states):
        return []
    diagnostics: list[Diagnostic] = []
    for rule_set in model.rules.sets():
        for rule in rule_set.rules:
            compiled = getattr(rule, "_compiled", None)
            if compiled is None:
                continue
            for dotted in compiled.paths():
                root, _, rest = dotted.partition(".")
                if root != "document" or not rest:
                    continue
                leaf = rest.split("[", 1)[0]
                if not _readable(states, leaf):
                    diagnostics.append(
                        Diagnostic(
                            "B2B706",
                            SEVERITY_WARNING,
                            f"rules:{rule_set.function}/{rule.name}",
                            f"expression reads document.{rest}, but the "
                            "dataflow proves no inbound route ever writes "
                            f"{leaf!r}",
                            hint="fix the expression's path, or add the "
                            "field to the inbound mappings",
                        )
                    )
    return diagnostics


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def verify_dataflow(
    model: "IntegrationModel", stats: dict | None = None
) -> list[Diagnostic]:
    """The whole-model dataflow pass: every mapping, route, and rule read.

    Returns unprefixed diagnostics (``verify_model`` adds the model
    prefix) and records the number of routes analyzed in ``stats``.
    """
    diagnostics: list[Diagnostic] = []
    for mapping in model.transforms.mappings():
        diagnostics.extend(check_mapping_dataflow(mapping))
    routes = list(iter_binding_routes(model))
    for route in routes:
        diagnostics.extend(check_route_dataflow(route))
    diagnostics.extend(check_rule_reads(model, routes))
    if stats is not None:
        stats["dataflow_routes"] = len(routes)
    return diagnostics
