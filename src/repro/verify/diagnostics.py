"""Diagnostic records produced by the static verifier.

Every check in :mod:`repro.verify` reports through a :class:`Diagnostic`:
a stable code (``B2B1xx`` graph, ``B2B2xx`` expressions, ``B2B3xx``
bindings/mappings, ``B2B4xx`` model, ``B2B5xx`` conversations, ``B2B6xx``
parallel races), a severity, a location path into the model, a human
message, an optional fix hint and an optional counterexample trace.
Codes are part of the public contract — CI gates and suppression lists
key on them — so existing codes must never be renumbered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

__all__ = [
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SEVERITY_INFO",
    "Diagnostic",
    "count_by_severity",
    "worst_severity",
    "at_or_above",
    "render_text",
]

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

_RANK = {SEVERITY_INFO: 0, SEVERITY_WARNING: 1, SEVERITY_ERROR: 2}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static verifier.

    :param code: stable diagnostic code (e.g. ``"B2B101"``).
    :param severity: ``error`` | ``warning`` | ``info``.
    :param location: path into the model (e.g.
        ``"workflow:private-po-seller/step:approve_po"``).
    :param message: human-readable description of the problem.
    :param hint: optional suggestion for fixing it.
    :param trace: optional counterexample trace (one rendered line per
        entry) leading to the reported state — the conversation checks of
        :mod:`repro.verify.statespace` attach a message-sequence chart.
    """

    code: str
    severity: str
    location: str
    message: str
    hint: str = ""
    trace: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.severity not in _RANK:
            raise ValueError(f"unknown diagnostic severity {self.severity!r}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible representation (``repro lint --format json``)."""
        payload: dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }
        if self.hint:
            payload["hint"] = self.hint
        if self.trace:
            payload["trace"] = list(self.trace)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Diagnostic":
        """Rebuild a diagnostic from its :meth:`to_dict` form.

        Round-trips exactly — the persisted verification cache of
        :mod:`repro.verify.incremental` stores verdicts in this shape.
        """
        return cls(
            code=payload["code"],
            severity=payload["severity"],
            location=payload["location"],
            message=payload["message"],
            hint=payload.get("hint", ""),
            trace=tuple(payload.get("trace", ())),
        )

    def render(self) -> str:
        """One-line human rendering."""
        line = f"{self.severity:<7} {self.code} {self.location}: {self.message}"
        if self.hint:
            line += f" (hint: {self.hint})"
        return line


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> dict[str, int]:
    """Return ``{severity: count}`` over ``diagnostics`` (all keys present)."""
    counts = {SEVERITY_ERROR: 0, SEVERITY_WARNING: 0, SEVERITY_INFO: 0}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] += 1
    return counts


def worst_severity(diagnostics: Iterable[Diagnostic]) -> str | None:
    """The highest severity present, or ``None`` for a clean result."""
    worst: str | None = None
    for diagnostic in diagnostics:
        if worst is None or _RANK[diagnostic.severity] > _RANK[worst]:
            worst = diagnostic.severity
    return worst


def at_or_above(diagnostics: Iterable[Diagnostic], threshold: str) -> list[Diagnostic]:
    """Diagnostics whose severity is at least ``threshold``."""
    floor = _RANK[threshold]
    return [d for d in diagnostics if _RANK[d.severity] >= floor]


def render_text(diagnostics: list[Diagnostic], title: str = "") -> str:
    """Render a diagnostic list the way ``repro lint`` prints it.

    Ordering is a total stable sort on (severity desc, code, location,
    message) so output — and the golden tests over it — is deterministic
    regardless of check execution order.  Counterexample traces are
    rendered indented under their diagnostic.
    """
    lines: list[str] = []
    if title:
        lines.append(title)
    if not diagnostics:
        lines.append("  clean — no diagnostics")
        return "\n".join(lines)
    ordered = sorted(
        diagnostics,
        key=lambda d: (-_RANK[d.severity], d.code, d.location, d.message),
    )
    for diagnostic in ordered:
        lines.append(f"  {diagnostic.render()}")
        lines.extend(f"      {entry}" for entry in diagnostic.trace)
    counts = count_by_severity(diagnostics)
    lines.append(
        f"  {counts[SEVERITY_ERROR]} error(s), "
        f"{counts[SEVERITY_WARNING]} warning(s), {counts[SEVERITY_INFO]} info"
    )
    return "\n".join(lines)
