"""Bytecode-level purity/effect analysis for computes and hooks.

PR 8 taught the transformation cache to bypass context-sensitive routes
by scanning each ``Compute`` function's bytecode for references to its
``context`` parameter (``rules_context_free`` in ``repro.transform.
mapping``).  That check answered exactly one question — "does this read
context?" — and answered it conservatively: anything without an
inspectable code object (``functools.partial``, bound methods, C
builtins) was treated as context-reading and bypassed the cache.

This module generalizes the scan into a small effect analyzer shared by
the transformation cache and the schema dataflow pass
(:mod:`repro.verify.dataflow`):

* classification — ``pure`` (reads only its document and immutable
  closure state), ``reads-context`` (touches the per-call context
  mapping), or ``unanalyzable`` (no bytecode to inspect);
* ``reads_globals`` — module-level names the function loads (informational:
  globals are assumed constant after catalog construction, matching the
  PR 8 cacheability contract);
* ``may_raise`` — whether the bytecode contains an explicit ``raise``.

The analyzer also *widens* the old check: ``functools.partial`` wrappers
and bound methods are unwrapped (with the context-parameter index
shifted past the pre-bound arguments), so a partial application of a
pure document reader is now recognized as pure — and its route stays
cacheable — where the PR 8 scan forced a bypass.
"""

from __future__ import annotations

import dis
import functools
from dataclasses import dataclass

__all__ = [
    "EFFECT_PURE",
    "EFFECT_READS_CONTEXT",
    "EFFECT_UNANALYZABLE",
    "FunctionEffects",
    "analyze_function",
    "compute_effects",
    "rules_cacheable",
    "rules_read_context",
]

EFFECT_PURE = "pure"
EFFECT_READS_CONTEXT = "reads-context"
EFFECT_UNANALYZABLE = "unanalyzable"

_CO_VARARGS = 0x04
_CO_VARKEYWORDS = 0x08

# Opcodes that surface an explicit ``raise`` statement.  RERAISE also
# appears in compiler-generated exception-table cleanup, so only
# RAISE_VARARGS counts as "this function deliberately raises".
_RAISE_OPCODES = frozenset({"RAISE_VARARGS"})


@dataclass(frozen=True)
class FunctionEffects:
    """The inferred effect summary of one compute/hook function."""

    classification: str
    reads_globals: tuple[str, ...] = ()
    may_raise: bool = False
    reason: str = ""

    @property
    def analyzable(self) -> bool:
        return self.classification != EFFECT_UNANALYZABLE

    @property
    def reads_context(self) -> bool:
        # Unanalyzable functions *may* read context; both answers must be
        # treated conservatively by callers, so expose the safe one here.
        return self.classification != EFFECT_PURE

    @property
    def cacheable(self) -> bool:
        """True when memoizing on document content alone is sound."""
        return self.classification == EFFECT_PURE


def _unwrap(fn, context_index: int):
    """Peel ``functools.partial`` and bound-method wrappers.

    Returns ``(code, context_index, reason)`` where ``code`` is the
    underlying code object (or None with a reason) and ``context_index``
    is the position of the context parameter inside that code object's
    argument list.
    """
    depth = 0
    while depth < 8:
        depth += 1
        if isinstance(fn, functools.partial):
            if fn.keywords:
                return None, 0, "partial with keyword arguments"
            context_index += len(fn.args)
            fn = fn.func
            continue
        bound_self = getattr(fn, "__self__", None)
        wrapped = getattr(fn, "__func__", None)
        if bound_self is not None and wrapped is not None:
            context_index += 1  # ``self`` occupies slot 0
            fn = wrapped
            continue
        break
    code = getattr(fn, "__code__", None)
    if code is None:
        return None, 0, "no inspectable bytecode"
    return code, context_index, ""


def analyze_function(fn, context_index: int = 1) -> FunctionEffects:
    """Analyze ``fn`` as called with its context at ``context_index``.

    Mapping computes and post hooks are invoked as ``fn(document,
    context)``, so the context parameter defaults to position 1.
    """
    code, context_index, reason = _unwrap(fn, context_index)
    if code is None:
        return FunctionEffects(EFFECT_UNANALYZABLE, reason=reason)
    if code.co_flags & (_CO_VARARGS | _CO_VARKEYWORDS):
        return FunctionEffects(EFFECT_UNANALYZABLE, reason="variadic signature")
    if code.co_argcount <= context_index:
        return FunctionEffects(
            EFFECT_UNANALYZABLE, reason="missing context parameter"
        )
    context_name = code.co_varnames[context_index]
    reads_context = False
    may_raise = False
    global_reads: list[str] = []
    for instruction in dis.get_instructions(code):
        argval = instruction.argval
        if argval == context_name or (
            isinstance(argval, tuple) and context_name in argval
        ):
            reads_context = True
        if instruction.opname == "LOAD_GLOBAL" and isinstance(argval, str):
            if argval not in global_reads:
                global_reads.append(argval)
        if instruction.opname in _RAISE_OPCODES:
            may_raise = True
    classification = EFFECT_READS_CONTEXT if reads_context else EFFECT_PURE
    return FunctionEffects(
        classification,
        reads_globals=tuple(global_reads),
        may_raise=may_raise,
    )


def compute_effects(rules) -> list[tuple[str, object, FunctionEffects]]:
    """Effect summaries for every ``Compute`` rule, recursing into ``Each``.

    Returns ``(target_path, rule, effects)`` triples; nested ``Each``
    targets are rendered ``parent[].child`` to match the coverage-check
    notation used elsewhere in the verifier.
    """
    from repro.transform.mapping import Compute, Each

    found: list[tuple[str, object, FunctionEffects]] = []

    def walk(rules, prefix: str) -> None:
        for rule in rules:
            if isinstance(rule, Compute):
                target = f"{prefix}{rule.target}"
                found.append((target, rule, analyze_function(rule.fn)))
            elif isinstance(rule, Each):
                walk(rule.rules, f"{prefix}{rule.target}[].")

    walk(rules, "")
    return found


def rules_read_context(rules) -> bool:
    """True when any compute may read its context (the PR 8 question)."""
    return any(
        effects.reads_context for _, _, effects in compute_effects(rules)
    )


def rules_cacheable(rules) -> bool:
    """True when every compute is provably pure (document-only)."""
    return all(effects.cacheable for _, _, effects in compute_effects(rules))
