"""Incremental verification: fingerprint-keyed re-verification.

Deep lint is sound but not free: every model pays for workflow, mapping,
binding and conversation checks on every run.  At registry scale (the
ROADMAP's 10k-partner deployment) that turns the deploy-path lint into
minutes of redundant work, because almost nothing changed since the last
run.  This module makes the verifier incremental the same way PR 3 made
binding plans cacheable: **content digests**.

Digest composition
------------------

Every unit of verification (an :class:`~repro.core.integration.
IntegrationModel` or a bare workflow type) is reduced to a map of
*component digests* — ``mapping:<name>``, ``protocol:<name>``,
``public:<name>``, ``binding:<name>``, ``private:<name>``,
``schema:<doc_type>``, ``partner:<id>``, ``agreement:<key>``,
``rule:<set>:<name>``, ``application:<name>`` — each a SHA-256 over the
component's full content (rules, schemas, step lists, descriptors),
with callables identified by their qualified name.  The unit's
*verification digest* hashes the sorted component digests together with
the verify options (``deep``/``dataflow``/``queue_bound``/
``max_states``/``time_budget``/``reduce``) and :data:`ENGINE_VERSION`,
so a verifier
upgrade or an option change invalidates everything while an untouched
model is a guaranteed hit.

Invalidation rules
------------------

A cached verdict is reused iff the unit's verification digest is
unchanged.  Because the digest is composed from per-component digests,
editing one shared component (a mapping registry used by two models, a
protocol descriptor, one binding) changes exactly the digests of the
units containing it — its *dependents* — and nothing else:
:meth:`VerificationCache.dependents` exposes that map for reporting,
and :meth:`VerificationCache.invalidations` names the changed
components for one unit.

The persisted cache (``.repro-lint-cache.json`` by default) stores, per
unit: the digest, the component digests, the diagnostics verbatim
(:meth:`~repro.verify.diagnostics.Diagnostic.to_dict` round-trip), and
the exploration stats, so a warm re-lint reports identical findings and
counts without re-running anything.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.verify.diagnostics import Diagnostic

__all__ = [
    "ENGINE_VERSION",
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_PATH",
    "ModelReport",
    "VerificationCache",
    "IncrementalVerifier",
    "component_digests",
    "content_digest",
    "options_digest",
    "verification_digest",
    "verify_unit",
]

ENGINE_VERSION = "2"
"""Bumped whenever verifier semantics change; embedded in every digest so
stale caches from an older engine can never satisfy a newer lint.

History: ``"1"`` through PR 9; ``"2"`` adds the B2B7xx schema dataflow
pass and the shared effect analyzer (PR 10), which also changes
``TransformCache`` cacheability decisions."""

CACHE_SCHEMA = "repro-lint-cache/1"
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


# ---------------------------------------------------------------------------
# Content digests
# ---------------------------------------------------------------------------


def _jsonable(value: Any) -> Any:
    """Reduce ``value`` to a JSON-stable structure for digesting.

    Callables are identified by module-qualified name (stable across
    processes, unlike ``repr`` which embeds addresses); dataclasses are
    walked field by field so nested rule content — e.g. the per-item
    rules inside an ``Each`` mapping rule — participates in the digest.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {
            str(key): _jsonable(item)
            for key, item in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload: dict[str, Any] = {"__kind__": type(value).__name__}
        for spec in dataclasses.fields(value):
            payload[spec.name] = _jsonable(getattr(value, spec.name))
        return payload
    if callable(value):
        qualname = getattr(
            value, "__qualname__", getattr(value, "__name__", type(value).__name__)
        )
        return f"fn:{getattr(value, '__module__', '?')}.{qualname}"
    return f"{type(value).__name__}:{getattr(value, 'name', '')}"


def content_digest(payload: Any) -> str:
    """SHA-256 (16 hex chars, like ``Binding.fingerprint``) of ``payload``."""
    text = json.dumps(_jsonable(payload), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def component_digests(model: Any) -> dict[str, str]:
    """Per-component content digests of an ``IntegrationModel``.

    The keys mirror :meth:`IntegrationModel.element_index` (the Section
    4.5 change-impact substrate) but the values are full content hashes —
    ``element_index`` summarizes a mapping as ``src->tgt/doc#rule_count``,
    which would miss an in-place rule edit; verification must not.
    """
    components: dict[str, str] = {}
    for mapping in model.transforms.mappings():
        components[f"mapping:{mapping.name}"] = mapping.fingerprint()
    components["transforms:version"] = str(model.transforms.version)
    for name in sorted(model.protocols):
        protocol = model.protocols[name]
        components[f"protocol:{name}"] = content_digest(
            {
                "name": protocol.name,
                "wire_format": protocol.wire_format,
                "transport": protocol.transport,
                "ack_timeout": protocol.ack_timeout,
                "max_retries": protocol.max_retries,
                "receipt_builder": protocol.receipt_builder,
            }
        )
    for name in sorted(model.public_processes):
        components[f"public:{name}"] = content_digest(
            model.public_processes[name].to_dict()
        )
    for name in sorted(model.bindings):
        components[f"binding:{name}"] = model.bindings[name].fingerprint()
    for name in sorted(model.private_processes):
        components[f"private:{name}"] = content_digest(
            model.private_processes[name].to_dict()
        )
    for rule_set in model.rules.sets():
        for rule in rule_set.rules:
            components[f"rule:{rule_set.function}:{rule.name}"] = rule.fingerprint()
    for partner in model.partners.partners():
        components[f"partner:{partner.partner_id}"] = content_digest(
            {
                "name": partner.name,
                "address": partner.address,
                "protocols": sorted(partner.protocols),
                "properties": partner.properties,
            }
        )
    for agreement in model.partners.agreements():
        components[f"agreement:{':'.join(agreement.key())}"] = content_digest(
            {
                "status": agreement.status,
                "doc_types": list(agreement.doc_types),
                "properties": agreement.properties,
            }
        )
    for name, native_format in model.applications.items():
        components[f"application:{name}"] = content_digest(native_format)
    for doc_type in sorted(_relevant_doc_types(model)):
        schema = _normalized_schema(doc_type)
        if schema is not None:
            components[f"schema:{doc_type}"] = content_digest(schema)
    return components


def _relevant_doc_types(model: Any) -> set[str]:
    doc_types: set[str] = set()
    for mapping in model.transforms.mappings():
        doc_types.add(mapping.doc_type)
    for agreement in model.partners.agreements():
        doc_types.update(agreement.doc_types)
    return doc_types


def _normalized_schema(doc_type: str) -> Any:
    from repro.documents.normalized import schema_for

    try:
        return schema_for(doc_type)
    except Exception:
        # Synthetic/sweep doc types have no normalized schema; nothing to
        # digest for them.
        return None


def options_digest(verify_options: Mapping[str, Any] | None) -> str:
    """Digest of the options a verdict depends on, normalized to defaults."""
    from repro.verify.statespace import DEFAULT_MAX_STATES, DEFAULT_QUEUE_BOUND

    options = dict(verify_options or {})
    return content_digest(
        {
            "engine": ENGINE_VERSION,
            "deep": bool(options.get("deep")),
            "dataflow": bool(options.get("dataflow")),
            "queue_bound": options.get("queue_bound") or DEFAULT_QUEUE_BOUND,
            "max_states": options.get("max_states") or DEFAULT_MAX_STATES,
            "time_budget": options.get("time_budget"),
            "reduce": bool(options.get("reduce", True)),
        }
    )


def verification_digest(
    target: Any, verify_options: Mapping[str, Any] | None = None
) -> tuple[str, dict[str, str]]:
    """``(digest, component_digests)`` for one verification unit.

    ``target`` is an ``IntegrationModel`` or a bare workflow type (the
    naive baseline lints one of those).  Equal digests guarantee the
    verifier would produce the identical verdict.
    """
    if hasattr(target, "transforms"):
        components = component_digests(target)
    else:
        components = {f"workflow:{target.name}": content_digest(target.to_dict())}
    digest = content_digest(
        {"options": options_digest(verify_options), "components": components}
    )
    return digest, components


# ---------------------------------------------------------------------------
# Verification units and reports
# ---------------------------------------------------------------------------


@dataclass
class ModelReport:
    """One unit's verification outcome, cached or freshly computed."""

    label: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    cached: bool = False
    duration: float = 0.0
    states_explored: int = 0
    states_pruned: int = 0
    dataflow_routes: int = 0
    digest: str = ""


def verify_unit(
    label: str, target: Any, verify_options: Mapping[str, Any] | None = None
) -> ModelReport:
    """Verify one unit (model or bare workflow) and time it."""
    options = dict(verify_options or {})
    started = time.monotonic()
    stats: dict[str, Any] = {}
    if hasattr(target, "transforms"):
        diagnostics = target.verify(stats=stats, **options)
    else:
        from repro.verify.workflow_checks import verify_workflow

        # A bare workflow has no conversations to explore or routes to
        # dataflow-check; only the deep flag is meaningful (it enables
        # the B2B6xx race analysis).
        diagnostics = verify_workflow(target, deep=bool(options.get("deep")))
    return ModelReport(
        label=label,
        diagnostics=diagnostics,
        cached=False,
        duration=time.monotonic() - started,
        states_explored=int(stats.get("states_explored", 0)),
        states_pruned=int(stats.get("states_pruned", 0)),
        dataflow_routes=int(stats.get("dataflow_routes", 0)),
    )


# ---------------------------------------------------------------------------
# The persisted cache
# ---------------------------------------------------------------------------


class VerificationCache:
    """Digest-keyed verdict store, optionally persisted as JSON.

    With ``path=None`` the cache lives in memory only (tests, benchmark
    warm/cold comparisons); with a path it loads eagerly and persists on
    :meth:`save`.  A cache written by a different :data:`CACHE_SCHEMA` or
    :data:`ENGINE_VERSION`, or an unreadable/corrupt file, is treated as
    cold — a cache must never turn into a lint failure — but says so with
    a one-line stderr warning that includes the reason, so a persistently
    cold cache is diagnosable from the logs.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self.entries: dict[str, dict[str, Any]] = {}
        self.loaded = False
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as error:
            self._warn_cold(f"unreadable ({error})")
            return
        if not isinstance(payload, dict):
            self._warn_cold(f"expected a JSON object, got {type(payload).__name__}")
            return
        if payload.get("schema") != CACHE_SCHEMA:
            self._warn_cold(
                f"schema {payload.get('schema')!r} != {CACHE_SCHEMA!r}"
            )
            return
        if payload.get("engine") != ENGINE_VERSION:
            self._warn_cold(
                f"engine {payload.get('engine')!r} != {ENGINE_VERSION!r}"
            )
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self.entries = entries
            self.loaded = True

    def _warn_cold(self, reason: str) -> None:
        """One-line stderr note before falling back to a cold cache."""
        print(
            f"warning: ignoring lint cache {self.path}: {reason}",
            file=sys.stderr,
        )

    def save(self) -> None:
        """Persist the cache; a no-op for in-memory caches."""
        if self.path is None:
            return
        payload = {
            "schema": CACHE_SCHEMA,
            "engine": ENGINE_VERSION,
            "entries": self.entries,
        }
        self.path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )

    def lookup(self, label: str, digest: str) -> dict[str, Any] | None:
        """The cached entry for ``label`` iff its digest matches."""
        entry = self.entries.get(label)
        if entry is not None and entry.get("digest") == digest:
            return entry
        return None

    def store(
        self,
        label: str,
        digest: str,
        components: Mapping[str, str],
        diagnostics: list[Diagnostic],
        stats: Mapping[str, Any],
    ) -> None:
        self.entries[label] = {
            "digest": digest,
            "components": dict(components),
            "diagnostics": [d.to_dict() for d in diagnostics],
            "stats": dict(stats),
        }

    def dependents(self, component_key: str) -> list[str]:
        """Labels of every cached unit containing ``component_key``.

        This is the dependency map: the units a shared schema/protocol/
        binding edit will force to re-verify.
        """
        return sorted(
            label
            for label, entry in self.entries.items()
            if component_key in entry.get("components", {})
        )

    def invalidations(self, label: str, components: Mapping[str, str]) -> list[str]:
        """Component keys whose digest differs from the cached entry.

        Covers changed and newly-added components plus components that
        disappeared; an empty list means the cached verdict is reusable
        (modulo options, which live in the unit digest).
        """
        entry = self.entries.get(label)
        if entry is None:
            return sorted(components)
        cached: Mapping[str, str] = entry.get("components", {})
        changed = {
            key for key, value in components.items() if cached.get(key) != value
        }
        changed.update(key for key in cached if key not in components)
        return sorted(changed)


# ---------------------------------------------------------------------------
# The incremental verifier
# ---------------------------------------------------------------------------


class IncrementalVerifier:
    """Digest-gated verification front end.

    ``verify(label, target)`` digests the target, reuses the cached
    verdict on a hit, and runs the real verifier (recording the verdict)
    on a miss.  ``hits``/``misses``/``hit_rate`` feed the CLI ``--stats``
    output and the CI warm-cache gate; ``flush()`` persists the cache.
    """

    def __init__(
        self,
        cache: VerificationCache | None = None,
        **verify_options: Any,
    ) -> None:
        self.cache = cache if cache is not None else VerificationCache()
        self.options = dict(verify_options)
        self.hits = 0
        self.misses = 0
        self.reports: dict[str, ModelReport] = {}

    def verify(self, label: str, target: Any) -> ModelReport:
        digest, components = verification_digest(target, self.options)
        entry = self.cache.lookup(label, digest)
        if entry is not None:
            self.hits += 1
            stats = entry.get("stats", {})
            report = ModelReport(
                label=label,
                diagnostics=[
                    Diagnostic.from_dict(d) for d in entry.get("diagnostics", [])
                ],
                cached=True,
                duration=0.0,
                states_explored=int(stats.get("states_explored", 0)),
                states_pruned=int(stats.get("states_pruned", 0)),
                dataflow_routes=int(stats.get("dataflow_routes", 0)),
                digest=digest,
            )
        else:
            self.misses += 1
            report = verify_unit(label, target, self.options)
            report.digest = digest
            self.cache.store(
                label,
                digest,
                components,
                report.diagnostics,
                {
                    "states_explored": report.states_explored,
                    "states_pruned": report.states_pruned,
                    "dataflow_routes": report.dataflow_routes,
                    "duration": report.duration,
                },
            )
        self.reports[label] = report
        return report

    @property
    def hit_rate(self) -> float:
        """Fraction of ``verify()`` calls served from cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def flush(self) -> None:
        """Persist the cache (no-op for in-memory caches)."""
        self.cache.save()
