"""Whole-model checks (B2B4xx) and the model-level orchestrator.

:func:`verify_model` runs every layer's checks over one
:class:`~repro.core.integration.IntegrationModel`: each private process
(graph + expressions), each public process, each mapping in the
transformation catalog, each binding in its deployment context, and the
cross-element integrity checks only the whole model can decide — dangling
routes, orphaned private processes, agreements over undeployed protocols.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.verify.binding_checks import (
    verify_binding,
    verify_mapping,
    verify_public_process,
)
from repro.verify.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.verify.workflow_checks import verify_workflow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.integration import IntegrationModel

__all__ = ["verify_model"]


def verify_model(
    model: "IntegrationModel",
    deep: bool = False,
    dataflow: bool = False,
    queue_bound: int | None = None,
    max_states: int | None = None,
    time_budget: float | None = None,
    reduce: bool = True,
    stats: dict | None = None,
) -> list[Diagnostic]:
    """Statically lint every element of ``model``.

    With ``deep=True`` the conversation model checker (B2B5xx, see
    :mod:`repro.verify.statespace`) explores every protocol's
    buyer/seller product automaton, and the AND-parallel race analysis
    (B2B6xx, :mod:`repro.verify.race_checks`) runs over every private
    process.  ``queue_bound``/``max_states``/``time_budget`` tune the
    exploration (``None`` = the statespace defaults); ``reduce=False``
    switches the exploration back to plain unreduced BFS.

    With ``dataflow=True`` the schema dataflow pass (B2B7xx, see
    :mod:`repro.verify.dataflow`) pushes abstract documents through
    every mapping and binding-chain route and checks the inferred
    output against each downstream consumer.

    When ``stats`` is a dict it is filled in place with verification
    metrics: ``duration`` (seconds), ``states_explored``/``states_pruned``
    totals, a per-pair ``conversations`` list, and (with ``dataflow``)
    ``dataflow_routes``.
    """
    started = time.monotonic()
    prefix = f"model:{model.name}"
    diagnostics: list[Diagnostic] = []
    for name, workflow in model.private_processes.items():
        diagnostics.extend(
            verify_workflow(
                workflow, location_prefix=f"{prefix}/private:{name}", deep=deep
            )
        )
    for definition in model.public_processes.values():
        diagnostics.extend(_prefixed(verify_public_process(definition), prefix))
    for mapping in model.transforms.mappings():
        diagnostics.extend(_prefixed(verify_mapping(mapping), prefix))
    for binding in model.bindings.values():
        diagnostics.extend(_prefixed(verify_binding(binding, model), prefix))
    _check_routes(model, prefix, diagnostics)
    _check_orphans(model, prefix, diagnostics)
    _check_agreements(model, prefix, diagnostics)
    if dataflow:
        from repro.verify.dataflow import verify_dataflow

        diagnostics.extend(
            _prefixed(verify_dataflow(model, stats=stats), prefix)
        )
    explorations: list = []
    if deep:
        from repro.verify.statespace import (
            DEFAULT_MAX_STATES,
            DEFAULT_QUEUE_BOUND,
            verify_conversations,
        )

        diagnostics.extend(
            verify_conversations(
                model,
                queue_bound=queue_bound or DEFAULT_QUEUE_BOUND,
                max_states=max_states or DEFAULT_MAX_STATES,
                time_budget=time_budget,
                reduce=reduce,
                results=explorations,
            )
        )
    if stats is not None:
        stats["duration"] = time.monotonic() - started
        stats["states_explored"] = sum(
            result.states_explored for _loc, result in explorations
        )
        stats["states_pruned"] = sum(
            result.states_pruned for _loc, result in explorations
        )
        stats["conversations"] = [
            {
                "location": location,
                "states_explored": result.states_explored,
                "states_pruned": result.states_pruned,
                "replay_states": result.replay_states,
                "truncated": result.truncated,
            }
            for location, result in explorations
        ]
    return diagnostics


def _prefixed(diagnostics: list[Diagnostic], prefix: str) -> list[Diagnostic]:
    return [replace(d, location=f"{prefix}/{d.location}") for d in diagnostics]


# ---------------------------------------------------------------------------
# B2B401 / B2B403: protocol and route integrity
# ---------------------------------------------------------------------------


def _check_routes(
    model: "IntegrationModel", prefix: str, diagnostics: list[Diagnostic]
) -> None:
    routed_protocols = {protocol for protocol, _role in model._routes}
    for name in model.protocols:
        if name not in routed_protocols:
            diagnostics.append(
                Diagnostic(
                    "B2B401",
                    SEVERITY_ERROR,
                    f"{prefix}/protocol:{name}",
                    "protocol is deployed but no route connects it to a "
                    "private process",
                    hint="deploy the protocol via add_protocol() so routes exist",
                )
            )
    for (protocol, role), route in model._routes.items():
        location = f"{prefix}/route:{protocol}/{role}"
        missing = []
        if route.public_process not in model.public_processes:
            missing.append(f"public process {route.public_process!r}")
        if route.binding not in model.bindings:
            missing.append(f"binding {route.binding!r}")
        if route.private_process not in model.private_processes:
            missing.append(f"private process {route.private_process!r}")
        if protocol not in model.protocols:
            missing.append(f"protocol {protocol!r}")
        for reference in missing:
            diagnostics.append(
                Diagnostic(
                    "B2B403",
                    SEVERITY_ERROR,
                    location,
                    f"route references missing {reference}",
                    hint="re-deploy the protocol or remove the stale route",
                )
            )


# ---------------------------------------------------------------------------
# B2B402: orphaned private processes
# ---------------------------------------------------------------------------


def _check_orphans(
    model: "IntegrationModel", prefix: str, diagnostics: list[Diagnostic]
) -> None:
    served = {binding.private_process for binding in model.bindings.values()}
    for name in model.private_processes:
        if name not in served:
            diagnostics.append(
                Diagnostic(
                    "B2B402",
                    SEVERITY_WARNING,
                    f"{prefix}/private:{name}",
                    "private process is registered but no binding serves it: "
                    "no protocol or application can ever reach it",
                    hint="deploy a protocol/application for it or remove it",
                )
            )


# ---------------------------------------------------------------------------
# B2B404 / B2B405 / B2B406: partner and agreement integrity
# ---------------------------------------------------------------------------


def _check_agreements(
    model: "IntegrationModel", prefix: str, diagnostics: list[Diagnostic]
) -> None:
    deployed = set(model.protocols)
    overlap: dict[tuple[str, str, str], list[str]] = defaultdict(list)
    for agreement in model.partners.agreements():
        location = f"{prefix}/agreement:{':'.join(agreement.key())}"
        if agreement.protocol not in deployed:
            diagnostics.append(
                Diagnostic(
                    "B2B404",
                    SEVERITY_ERROR,
                    location,
                    f"agreement references protocol {agreement.protocol!r}, "
                    "which is not deployed in this model",
                    hint="deploy the protocol or retire the agreement",
                )
            )
        if agreement.status != "active":
            continue
        for doc_type in agreement.doc_types:
            overlap[(agreement.partner_id, agreement.our_role, doc_type)].append(
                agreement.protocol
            )
    for (partner_id, role, doc_type), protocols in sorted(overlap.items()):
        if len(protocols) < 2:
            continue
        diagnostics.append(
            Diagnostic(
                "B2B405",
                SEVERITY_WARNING,
                f"{prefix}/partner:{partner_id}",
                f"duplicate agreements: {sorted(protocols)} all cover "
                f"doc_type {doc_type!r} with partner {partner_id!r} as "
                f"{role!r}; agreement lookup without an explicit protocol "
                "is ambiguous",
                hint="retire one agreement or always pass protocol= when "
                "starting conversations",
            )
        )
    for partner in model.partners.partners():
        if partner.protocols and not set(partner.protocols) & deployed:
            diagnostics.append(
                Diagnostic(
                    "B2B406",
                    SEVERITY_WARNING,
                    f"{prefix}/partner:{partner.partner_id}",
                    f"partner speaks {sorted(partner.protocols)} but none of "
                    "these protocols is deployed in this model",
                    hint="deploy a shared protocol or update the partner profile",
                )
            )
