"""Parallel-branch race detection over workflow types (B2B6xx).

A step with two or more *unconditioned* outgoing transitions fans tokens
out into AND-parallel branches (see :mod:`repro.workflow.definitions`);
the branches run concurrently until the matching AND-join.  Instance
variables are the data-flow medium, so two concurrently-enabled steps that
touch the same variable race: the final value (write/write) or the value
observed (read/write) depends on scheduling — exactly the class of defect
that only shows up under load, and exactly what deployment-time analysis
should catch instead.

Codes::

    B2B601  write/write   two concurrent steps both write a variable
    B2B602  read/write    one concurrent branch writes a variable another
                          branch reads (directly or through a document path)

Concurrency is decided structurally on the acyclic step graph: steps X
and Y can hold tokens simultaneously iff some fork reaches them through
*different* unconditioned arcs and neither is a graph descendant of the
other (the AND-join and everything after it is a descendant of both
branches, so post-join steps are never flagged).  Conditioned (XOR)
siblings are deliberately excluded — their exclusivity is the modeler's
intent, and flagging them would drown real races in noise.

Reads come from :meth:`Expression.names` / :meth:`Expression.paths` over
activity inputs, loop conditions and outgoing transition conditions;
writes come from the steps' output declarations.
"""

from __future__ import annotations

from repro.verify.diagnostics import SEVERITY_WARNING, Diagnostic
from repro.workflow.definitions import LoopStep, Step, WorkflowType
from repro.workflow.expressions import Expression

__all__ = ["verify_workflow_races", "concurrent_step_pairs"]


def concurrent_step_pairs(workflow: WorkflowType) -> list[tuple[str, str, str]]:
    """All structurally concurrent step pairs of ``workflow``.

    Returns ``(fork_step_id, step_a, step_b)`` triples with ``step_a <
    step_b``, sorted, one triple per pair (the first fork in sorted order
    wins when several forks make the same pair concurrent).
    """
    descendants = _descendants(workflow)
    pairs: dict[tuple[str, str], str] = {}
    for fork_id in sorted(workflow.steps):
        parallel_arcs = [
            arc
            for arc in workflow.outgoing(fork_id)
            if arc.condition is None and not arc.otherwise
        ]
        if len(parallel_arcs) < 2:
            continue
        regions = [
            {arc.target} | descendants[arc.target] for arc in parallel_arcs
        ]
        for index, region_a in enumerate(regions):
            for region_b in regions[index + 1:]:
                for step_a in sorted(region_a):
                    for step_b in sorted(region_b):
                        if step_a == step_b:
                            continue
                        if step_a in descendants[step_b]:
                            continue
                        if step_b in descendants[step_a]:
                            continue
                        first, second = sorted((step_a, step_b))
                        pairs.setdefault((first, second), fork_id)
    return sorted(
        (fork_id, step_a, step_b)
        for (step_a, step_b), fork_id in pairs.items()
    )


def verify_workflow_races(
    workflow: WorkflowType, location_prefix: str = ""
) -> list[Diagnostic]:
    """Report variable conflicts between concurrently-enabled steps."""
    prefix = location_prefix or f"workflow:{workflow.name}"
    writes = {sid: _writes(step) for sid, step in workflow.steps.items()}
    reads = {sid: _reads(workflow, sid) for sid in workflow.steps}
    diagnostics: list[Diagnostic] = []
    reported: set[tuple[str, str, str, str]] = set()
    for fork_id, step_a, step_b in concurrent_step_pairs(workflow):
        location = f"{prefix}/parallel:{fork_id}"
        for variable in sorted(writes[step_a] & writes[step_b]):
            key = ("B2B601", step_a, step_b, variable)
            if key in reported:
                continue
            reported.add(key)
            diagnostics.append(
                Diagnostic(
                    "B2B601",
                    SEVERITY_WARNING,
                    location,
                    f"write/write race: steps {step_a!r} and {step_b!r} run "
                    f"in parallel branches of fork {fork_id!r} and both "
                    f"write variable {variable!r}; the surviving value "
                    "depends on completion order",
                    hint="write distinct variables per branch and merge "
                    "after the AND-join",
                )
            )
        for writer, reader in ((step_a, step_b), (step_b, step_a)):
            for variable in sorted(writes[writer]):
                paths = reads[reader].get(variable)
                if paths is None:
                    continue
                key = ("B2B602", writer, reader, variable)
                if key in reported:
                    continue
                reported.add(key)
                spelled = ", ".join(repr(path) for path in sorted(paths))
                diagnostics.append(
                    Diagnostic(
                        "B2B602",
                        SEVERITY_WARNING,
                        location,
                        f"read/write race: step {writer!r} writes variable "
                        f"{variable!r} while parallel step {reader!r} reads "
                        f"it (as {spelled}); the value observed depends on "
                        "scheduling",
                        hint="move the read after the AND-join or pass the "
                        "value through a branch-local variable",
                    )
                )
    return diagnostics


# ---------------------------------------------------------------------------
# Topology and data-flow extraction
# ---------------------------------------------------------------------------


def _descendants(workflow: WorkflowType) -> dict[str, set[str]]:
    """Step id -> every step reachable from it (the graph is acyclic)."""
    memo: dict[str, set[str]] = {}

    def visit(step_id: str) -> set[str]:
        known = memo.get(step_id)
        if known is not None:
            return known
        reached: set[str] = set()
        memo[step_id] = reached  # safe: the constructor rejected cycles
        for arc in workflow.outgoing(step_id):
            reached.add(arc.target)
            reached.update(visit(arc.target))
        return reached

    for step_id in workflow.steps:
        visit(step_id)
    return memo


def _writes(step: Step) -> set[str]:
    """Variables the step writes: its output declarations' target names."""
    return set(getattr(step, "outputs", {}) or {})


def _reads(workflow: WorkflowType, step_id: str) -> dict[str, set[str]]:
    """Variable -> dotted paths the step (and its outgoing conditions) reads."""
    step = workflow.steps[step_id]
    expressions = [
        Expression.shared(text)
        for text in (getattr(step, "inputs", {}) or {}).values()
    ]
    if isinstance(step, LoopStep):
        expressions.append(Expression.shared(step.condition))
    expressions.extend(
        Expression.shared(arc.condition)
        for arc in workflow.outgoing(step_id)
        if arc.condition is not None
    )
    reads: dict[str, set[str]] = {}
    for expression in expressions:
        for name in expression.names():
            reads.setdefault(name, set()).add(name)
        for path in expression.paths():
            root = path.partition(".")[0].partition("[")[0]
            reads.setdefault(root, set()).add(path)
    return reads
