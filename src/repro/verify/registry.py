"""Registry-scale verification: lint every trading-partner agreement.

The paper's deployment story (§4.5–4.6) requires every pairwise agreement
to be statically checked before it goes live — not just the shipped
example models.  A naive loop calling ``verify(deep=True)`` once per
agreement would re-explore the same protocol product automata thousands
of times; this sweep is built around two observations:

* **Explorations are shared.**  All agreements over one protocol verify
  against the same buyer/seller public-process pair, so each protocol is
  explored at most once per sweep regardless of how many thousands of
  agreements reference it.

* **Verdicts are cacheable.**  Each agreement's verdict depends only on
  its protocol descriptor, the protocol's public processes, the partner
  profile, the agreement terms and the verify options — digested exactly
  like :mod:`repro.verify.incremental` digests whole models.  With a
  warm :class:`~repro.verify.incremental.VerificationCache`, a re-sweep
  after a single-agreement edit re-verifies only that agreement (plus
  the whole-model fabric pass, whose own digest covers every component).

The fabric pass runs the ordinary static checks once for the shared
infrastructure (workflows, mappings, bindings, routes, agreement
integrity — everything ``verify_model(deep=False)`` covers); the
per-agreement pass attaches the protocol's conversation diagnostics
(B2B5xx) under each agreement's location.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.verify.diagnostics import Diagnostic
from repro.verify.model_checks import verify_model
from repro.verify.statespace import (
    DEFAULT_MAX_STATES,
    DEFAULT_QUEUE_BOUND,
    ExplorationResult,
    explore_pair,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.integration import IntegrationModel
    from repro.verify.incremental import VerificationCache

__all__ = ["SweepReport", "sweep_registry"]


@dataclass
class SweepReport:
    """Outcome of one registry sweep.

    ``verified``/``cache_hits`` count agreements; ``explorations`` counts
    the conversation explorations actually run (shared per protocol, so
    it is bounded by the protocol count, not the agreement count).
    """

    agreements: int = 0
    verified: int = 0
    cache_hits: int = 0
    explorations: int = 0
    states_explored: int = 0
    states_pruned: int = 0
    duration: float = 0.0
    fabric_cached: bool = False
    fabric_diagnostics: list[Diagnostic] = field(default_factory=list)
    agreement_diagnostics: dict[str, list[Diagnostic]] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of agreements served from cache (0.0 for an empty sweep)."""
        return self.cache_hits / self.agreements if self.agreements else 0.0

    @property
    def diagnostics(self) -> list[Diagnostic]:
        """Fabric diagnostics plus every agreement's, flattened."""
        merged = list(self.fabric_diagnostics)
        for label in sorted(self.agreement_diagnostics):
            merged.extend(self.agreement_diagnostics[label])
        return merged

    @property
    def dirty(self) -> dict[str, list[Diagnostic]]:
        """Only the agreements that reported diagnostics."""
        return {
            label: diagnostics
            for label, diagnostics in self.agreement_diagnostics.items()
            if diagnostics
        }


def sweep_registry(
    model: "IntegrationModel",
    deep: bool = True,
    queue_bound: int | None = None,
    max_states: int | None = None,
    time_budget: float | None = None,
    reduce: bool = True,
    cache: "VerificationCache | None" = None,
) -> SweepReport:
    """Verify every agreement in ``model``'s partner directory.

    :param cache: optional digest-keyed verdict cache (in-memory or
        persisted); pass the same cache across sweeps to make unchanged
        agreements hits.  ``None`` verifies everything cold.
    """
    from repro.verify.incremental import (
        VerificationCache,
        component_digests,
        content_digest,
        options_digest,
    )

    started = time.monotonic()
    if cache is None:
        cache = VerificationCache()
    options = {
        "deep": deep,
        "queue_bound": queue_bound,
        "max_states": max_states,
        "time_budget": time_budget,
        "reduce": reduce,
    }
    opts_digest = options_digest(options)
    report = SweepReport()

    # --- fabric pass: every non-conversation check, once for the model
    fabric_components = component_digests(model)
    fabric_digest = content_digest(
        {"options": opts_digest, "components": fabric_components}
    )
    fabric_label = f"registry-fabric:{model.name}"
    entry = cache.lookup(fabric_label, fabric_digest)
    if entry is not None:
        report.fabric_cached = True
        report.fabric_diagnostics = [
            Diagnostic.from_dict(d) for d in entry.get("diagnostics", [])
        ]
    else:
        report.fabric_diagnostics = verify_model(model, deep=False)
        cache.store(
            fabric_label,
            fabric_digest,
            fabric_components,
            report.fabric_diagnostics,
            {},
        )

    # --- per-agreement pass: shared explorations, digest-gated verdicts
    public_by_protocol: dict[str, list[str]] = {}
    for name in sorted(model.public_processes):
        definition = model.public_processes[name]
        public_by_protocol.setdefault(definition.protocol, []).append(name)
    explored: dict[str, list[Diagnostic]] = {}
    for agreement in model.partners.agreements():
        key = ":".join(agreement.key())
        label = f"agreement:{key}"
        report.agreements += 1
        components = {
            name: fabric_components[name]
            for name in (
                f"protocol:{agreement.protocol}",
                f"partner:{agreement.partner_id}",
                f"agreement:{key}",
            )
            if name in fabric_components
        }
        for public_name in public_by_protocol.get(agreement.protocol, ()):
            components[f"public:{public_name}"] = fabric_components[
                f"public:{public_name}"
            ]
        digest = content_digest({"options": opts_digest, "components": components})
        entry = cache.lookup(label, digest)
        if entry is not None:
            report.cache_hits += 1
            diagnostics = [
                Diagnostic.from_dict(d) for d in entry.get("diagnostics", [])
            ]
        else:
            report.verified += 1
            diagnostics = []
            if deep:
                if agreement.protocol not in explored:
                    explored[agreement.protocol] = _explore_protocol(
                        model, agreement.protocol, options, report
                    )
                diagnostics = [
                    replace(d, location=f"{label}/{d.location}")
                    for d in explored[agreement.protocol]
                ]
            cache.store(label, digest, components, diagnostics, {})
        report.agreement_diagnostics[label] = diagnostics
    report.duration = time.monotonic() - started
    return report


def _explore_protocol(
    model: "IntegrationModel",
    protocol: str,
    options: dict[str, Any],
    report: SweepReport,
) -> list[Diagnostic]:
    """Explore one protocol's buyer/seller conversations, tallying stats."""
    by_role: dict[str, list[Any]] = {}
    for name in sorted(model.public_processes):
        definition = model.public_processes[name]
        if definition.protocol == protocol:
            by_role.setdefault(definition.role, []).append(definition)
    diagnostics: list[Diagnostic] = []
    for buyer in by_role.get("buyer", []):
        for seller in by_role.get("seller", []):
            location = (
                f"model:{model.name}/conversation:{protocol}/"
                f"{buyer.name}+{seller.name}"
            )
            result: ExplorationResult = explore_pair(
                buyer,
                seller,
                queue_bound=options["queue_bound"] or DEFAULT_QUEUE_BOUND,
                max_states=options["max_states"] or DEFAULT_MAX_STATES,
                time_budget=options["time_budget"],
                location=location,
                reduce=options["reduce"],
            )
            report.explorations += 1
            report.states_explored += result.states_explored
            report.states_pruned += result.states_pruned
            diagnostics.extend(result.diagnostics)
    return diagnostics
