"""Registry-scale verification: lint every trading-partner agreement.

The paper's deployment story (§4.5–4.6) requires every pairwise agreement
to be statically checked before it goes live — not just the shipped
example models.  A naive loop calling ``verify(deep=True)`` once per
agreement would re-explore the same protocol product automata thousands
of times; this sweep is built around two observations:

* **Explorations are shared.**  All agreements over one protocol verify
  against the same buyer/seller public-process pair, so each protocol is
  explored at most once per sweep regardless of how many thousands of
  agreements reference it.

* **Verdicts are cacheable.**  Each agreement's verdict depends only on
  its protocol descriptor, the protocol's public processes, the partner
  profile, the agreement terms and the verify options — digested exactly
  like :mod:`repro.verify.incremental` digests whole models.  With a
  warm :class:`~repro.verify.incremental.VerificationCache`, a re-sweep
  after a single-agreement edit re-verifies only that agreement (plus
  the whole-model fabric pass, whose own digest covers every component).

The fabric pass runs the ordinary static checks once for the shared
infrastructure (workflows, mappings, bindings, routes, agreement
integrity — everything ``verify_model(deep=False)`` covers); the
per-agreement pass attaches the protocol's conversation diagnostics
(B2B5xx) under each agreement's location.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.verify.diagnostics import Diagnostic
from repro.verify.model_checks import verify_model
from repro.verify.statespace import (
    DEFAULT_MAX_STATES,
    DEFAULT_QUEUE_BOUND,
    ExplorationResult,
    explore_pair,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.integration import IntegrationModel
    from repro.verify.incremental import VerificationCache

__all__ = ["SweepReport", "sweep_registry"]


@dataclass
class SweepReport:
    """Outcome of one registry sweep.

    ``verified``/``cache_hits`` count agreements; ``explorations`` counts
    the conversation explorations actually run (shared per protocol, so
    it is bounded by the protocol count, not the agreement count).
    """

    agreements: int = 0
    verified: int = 0
    cache_hits: int = 0
    explorations: int = 0
    states_explored: int = 0
    states_pruned: int = 0
    dataflow_routes: int = 0
    routes_verified: int = 0
    route_cache_hits: int = 0
    duration: float = 0.0
    fabric_cached: bool = False
    fabric_diagnostics: list[Diagnostic] = field(default_factory=list)
    dataflow_diagnostics: list[Diagnostic] = field(default_factory=list)
    agreement_diagnostics: dict[str, list[Diagnostic]] = field(default_factory=dict)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of agreements served from cache (0.0 for an empty sweep)."""
        return self.cache_hits / self.agreements if self.agreements else 0.0

    @property
    def route_cache_hit_rate(self) -> float:
        """Fraction of dataflow routes served from cache (0.0 when none)."""
        return (
            self.route_cache_hits / self.dataflow_routes
            if self.dataflow_routes
            else 0.0
        )

    @property
    def diagnostics(self) -> list[Diagnostic]:
        """Fabric and dataflow diagnostics plus every agreement's, flattened."""
        merged = list(self.fabric_diagnostics)
        merged.extend(self.dataflow_diagnostics)
        for label in sorted(self.agreement_diagnostics):
            merged.extend(self.agreement_diagnostics[label])
        return merged

    @property
    def dirty(self) -> dict[str, list[Diagnostic]]:
        """Only the agreements that reported diagnostics."""
        return {
            label: diagnostics
            for label, diagnostics in self.agreement_diagnostics.items()
            if diagnostics
        }


def sweep_registry(
    model: "IntegrationModel",
    deep: bool = True,
    dataflow: bool = False,
    queue_bound: int | None = None,
    max_states: int | None = None,
    time_budget: float | None = None,
    reduce: bool = True,
    cache: "VerificationCache | None" = None,
) -> SweepReport:
    """Verify every agreement in ``model``'s partner directory.

    With ``dataflow=True`` the B2B7xx schema dataflow pass also runs:
    mapping-level checks once for the catalog, and route-level checks
    digest-keyed per binding chain (the chain's mapping fingerprints), so
    every agreement sharing a protocol — and every re-sweep over an
    unchanged chain — reuses the route verdict instead of re-analyzing.

    :param cache: optional digest-keyed verdict cache (in-memory or
        persisted); pass the same cache across sweeps to make unchanged
        agreements hits.  ``None`` verifies everything cold.
    """
    from repro.verify.incremental import (
        VerificationCache,
        component_digests,
        content_digest,
        options_digest,
    )

    started = time.monotonic()
    if cache is None:
        cache = VerificationCache()
    options = {
        "deep": deep,
        "dataflow": dataflow,
        "queue_bound": queue_bound,
        "max_states": max_states,
        "time_budget": time_budget,
        "reduce": reduce,
    }
    opts_digest = options_digest(options)
    report = SweepReport()

    # --- fabric pass: every non-conversation check, once for the model
    fabric_components = component_digests(model)
    fabric_digest = content_digest(
        {"options": opts_digest, "components": fabric_components}
    )
    fabric_label = f"registry-fabric:{model.name}"
    entry = cache.lookup(fabric_label, fabric_digest)
    if entry is not None:
        report.fabric_cached = True
        report.fabric_diagnostics = [
            Diagnostic.from_dict(d) for d in entry.get("diagnostics", [])
        ]
    else:
        report.fabric_diagnostics = verify_model(model, deep=False)
        cache.store(
            fabric_label,
            fabric_digest,
            fabric_components,
            report.fabric_diagnostics,
            {},
        )

    if dataflow:
        _sweep_dataflow(
            model, opts_digest, fabric_digest, fabric_components, cache, report
        )

    # --- per-agreement pass: shared explorations, digest-gated verdicts
    public_by_protocol: dict[str, list[str]] = {}
    for name in sorted(model.public_processes):
        definition = model.public_processes[name]
        public_by_protocol.setdefault(definition.protocol, []).append(name)
    explored: dict[str, list[Diagnostic]] = {}
    for agreement in model.partners.agreements():
        key = ":".join(agreement.key())
        label = f"agreement:{key}"
        report.agreements += 1
        components = {
            name: fabric_components[name]
            for name in (
                f"protocol:{agreement.protocol}",
                f"partner:{agreement.partner_id}",
                f"agreement:{key}",
            )
            if name in fabric_components
        }
        for public_name in public_by_protocol.get(agreement.protocol, ()):
            components[f"public:{public_name}"] = fabric_components[
                f"public:{public_name}"
            ]
        digest = content_digest({"options": opts_digest, "components": components})
        entry = cache.lookup(label, digest)
        if entry is not None:
            report.cache_hits += 1
            diagnostics = [
                Diagnostic.from_dict(d) for d in entry.get("diagnostics", [])
            ]
        else:
            report.verified += 1
            diagnostics = []
            if deep:
                if agreement.protocol not in explored:
                    explored[agreement.protocol] = _explore_protocol(
                        model, agreement.protocol, options, report
                    )
                diagnostics = [
                    replace(d, location=f"{label}/{d.location}")
                    for d in explored[agreement.protocol]
                ]
            cache.store(label, digest, components, diagnostics, {})
        report.agreement_diagnostics[label] = diagnostics
    report.duration = time.monotonic() - started
    return report


def _sweep_dataflow(
    model: "IntegrationModel",
    opts_digest: str,
    fabric_digest: str,
    fabric_components: dict[str, str],
    cache: "VerificationCache",
    report: SweepReport,
) -> None:
    """The B2B7xx pass of a sweep: cached per catalog and per route.

    Mapping-level checks and rule-read checks depend on the whole model,
    so they are cached as one unit under the fabric digest; route-level
    checks depend only on the route's mapping chain, so each route is
    digest-keyed by its chain fingerprints and reused across agreements
    and re-sweeps.
    """
    from repro.verify.dataflow import (
        check_mapping_dataflow,
        check_route_dataflow,
        check_rule_reads,
        iter_binding_routes,
        route_digest_payload,
    )
    from repro.verify.incremental import content_digest

    prefix = f"model:{model.name}"
    routes = list(iter_binding_routes(model))
    report.dataflow_routes = len(routes)

    catalog_label = f"dataflow-catalog:{model.name}"
    entry = cache.lookup(catalog_label, fabric_digest)
    if entry is not None:
        report.dataflow_diagnostics.extend(
            Diagnostic.from_dict(d) for d in entry.get("diagnostics", [])
        )
    else:
        diagnostics: list[Diagnostic] = []
        for mapping in model.transforms.mappings():
            diagnostics.extend(check_mapping_dataflow(mapping))
        diagnostics.extend(check_rule_reads(model, routes))
        diagnostics = [
            replace(d, location=f"{prefix}/{d.location}") for d in diagnostics
        ]
        cache.store(
            catalog_label, fabric_digest, fabric_components, diagnostics, {}
        )
        report.dataflow_diagnostics.extend(diagnostics)

    for route in routes:
        label = f"dataflow-route:{route.label}"
        payload = route_digest_payload(route)
        digest = content_digest({"options": opts_digest, **payload})
        entry = cache.lookup(label, digest)
        if entry is not None:
            report.route_cache_hits += 1
            diagnostics = [
                Diagnostic.from_dict(d) for d in entry.get("diagnostics", [])
            ]
        else:
            report.routes_verified += 1
            diagnostics = [
                replace(d, location=f"{prefix}/{d.location}")
                for d in check_route_dataflow(route)
            ]
            components = {
                f"mapping:{mapping.name}": mapping.fingerprint()
                for mapping in route.chain
            }
            cache.store(label, digest, components, diagnostics, {})
        report.dataflow_diagnostics.extend(diagnostics)


def _explore_protocol(
    model: "IntegrationModel",
    protocol: str,
    options: dict[str, Any],
    report: SweepReport,
) -> list[Diagnostic]:
    """Explore one protocol's buyer/seller conversations, tallying stats."""
    by_role: dict[str, list[Any]] = {}
    for name in sorted(model.public_processes):
        definition = model.public_processes[name]
        if definition.protocol == protocol:
            by_role.setdefault(definition.role, []).append(definition)
    diagnostics: list[Diagnostic] = []
    for buyer in by_role.get("buyer", []):
        for seller in by_role.get("seller", []):
            location = (
                f"model:{model.name}/conversation:{protocol}/"
                f"{buyer.name}+{seller.name}"
            )
            result: ExplorationResult = explore_pair(
                buyer,
                seller,
                queue_bound=options["queue_bound"] or DEFAULT_QUEUE_BOUND,
                max_states=options["max_states"] or DEFAULT_MAX_STATES,
                time_budget=options["time_budget"],
                location=location,
                reduce=options["reduce"],
            )
            report.explorations += 1
            report.states_explored += result.states_explored
            report.states_pruned += result.states_pruned
            diagnostics.extend(result.diagnostics)
    return diagnostics
