"""Conversation model checking: bounded product-state-space exploration.

:func:`~repro.core.public_process.check_complementary` (Section 3) only
accepts strictly mirrored exchanges; anything more asynchronous — receipt
windows, one-way multi-step dispatches, hand-negotiated ebXML
collaborations — needs a real interaction-protocol check.  This module is
that check: it composes two roles' :class:`PublicProcessDefinition`s into
a **product automaton** with one bounded FIFO message queue per direction
and enumerates reachable joint states, so each defect is reported with a
*minimal* counterexample trace rendered as a textual message-sequence
chart.

Detected conversation defects (the ``B2B5xx`` family)::

    B2B501  deadlock              nobody can move and every queue is empty:
                                  each side waits for a message the other
                                  will never send
    B2B502  unspecified reception the message at a queue head is not the one
                                  the receiving state expects; a sequential
                                  public process can never consume it
    B2B503  queue overflow        a send is blocked on a full queue in a
                                  state with no other progress — a diverging
                                  or unmatched send sequence at this bound
    B2B504  orphan message        a side finished with messages still queued
                                  for it: sent but never consumable
    B2B505  exploration truncated the state or time budget ran out before
                                  the space was exhausted; findings so far
                                  are sound, absence of findings is not

Model assumptions: connection steps (``to_binding`` / ``from_binding``)
and ``produce`` steps are internal moves that are always enabled — the
binding and the private process behind it are assumed to eventually
respond.  The exploration therefore verifies the *wire* conversation
between the partners, not liveness of either private side.  Definitions
are finite and strictly sequential, so with a queue bound the product
space is finite; ``max_states``/``time_budget`` keep worst cases cheap
enough for CI.

Partial-order reduction and canonical hashing (``reduce=True``)
---------------------------------------------------------------

Because both roles are strictly sequential, the product automaton has
unusually strong structure that the explorer exploits:

* **Canonical state hashing.** Side ``i`` has executed exactly the steps
  before its position, each receive consumed exactly one message from the
  FIFO head, and each send appended exactly one — so the contents of both
  queues are a *function of the position pair*.  ``(pos0, pos1)`` is
  therefore a perfect, collision-free key for the visited set: one small
  int per state instead of a tuple-of-tuples, and deterministic across
  runs.

* **Ample-set reduction.** At most one move per side is enabled in any
  state, two moves enabled together always belong to different sides, and
  cross-side moves commute and never disable each other (a send can only
  lengthen the partner's in-queue behind its head; a receive can only
  unblock the partner's full out-queue).  Every move strictly increases
  ``pos0 + pos1``, so the product graph is a DAG and the usual POR cycle
  proviso is vacuous.  Together this gives strong confluence: the
  reachable terminal (stuck) state is unique, and each defect predicate
  is *persistent* — B2B502's mismatched head can never be consumed,
  B2B504's orphan queue can never drain, and B2B501/B2B503 are only
  decidable at the unique terminal state anyway.  A singleton ample set
  (expand just the first enabled move) therefore detects exactly the
  same diagnostic codes as full BFS while exploring one maximal path.

* **Counterexample replay.** The reduced pass answers *whether* each
  defect exists; when one does, an unreduced BFS pass re-derives the
  *minimal* witness trace (BFS reaches shortest paths first).  Clean
  models — the common case when sweeping a registry — never pay for the
  replay.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, NamedTuple

from repro.core.public_process import (
    KIND_RECEIVE,
    KIND_SEND,
    PublicProcessDefinition,
)
from repro.verify.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.integration import IntegrationModel

__all__ = [
    "DEFAULT_QUEUE_BOUND",
    "DEFAULT_MAX_STATES",
    "ExplorationResult",
    "explore_pair",
    "render_msc",
    "verify_conversations",
]

DEFAULT_QUEUE_BOUND = 2
DEFAULT_MAX_STATES = 4096

# Joint state: (position of side 0, position of side 1,
#               queue side0 -> side1, queue side1 -> side0).
_State = tuple[int, int, tuple[str, ...], tuple[str, ...]]

# Trace event: (side index, step kind, doc_type, step_id).
_Event = tuple[int, str, str, str]

# Parent-linked trace cell: (event, parent cell) — materialized into a
# flat event tuple only when a diagnostic is recorded, so the hot
# exploration loop never copies path prefixes.
_Tail = "tuple[_Event, _Tail] | None"


@dataclass
class ExplorationResult:
    """Outcome of exploring one public-process pair.

    :param diagnostics: B2B5xx findings, at most one per code (each with
        the minimal counterexample trace).
    :param states_explored: number of distinct joint states visited.
    :param truncated: the state or time budget ran out before exhaustion.
    :param states_pruned: enabled transitions skipped by partial-order
        reduction (0 when the exploration ran unreduced).
    :param replay_states: states visited by the unreduced counterexample
        replay pass (0 when clean or when reduction was off).
    :param reduced: partial-order reduction was active for this result.
    """

    diagnostics: list[Diagnostic] = field(default_factory=list)
    states_explored: int = 0
    truncated: bool = False
    states_pruned: int = 0
    replay_states: int = 0
    reduced: bool = False

    @property
    def clean(self) -> bool:
        """True when the full space was explored and nothing was found."""
        return not self.diagnostics and not self.truncated


class _Exploration(NamedTuple):
    """One exploration pass (reduced or full) before diagnostics assembly."""

    found: dict[str, Diagnostic]
    states: int
    pruned: int
    truncated: bool


def explore_pair(
    first: PublicProcessDefinition,
    second: PublicProcessDefinition,
    queue_bound: int = DEFAULT_QUEUE_BOUND,
    max_states: int = DEFAULT_MAX_STATES,
    time_budget: float | None = None,
    location: str = "",
    reduce: bool = True,
) -> ExplorationResult:
    """Explore the joint conversation of two public processes.

    :param queue_bound: capacity of each per-direction FIFO; a send onto a
        full queue blocks (and is reported as B2B503 when nothing else can
        progress).
    :param max_states: hard cap on distinct joint states; exploration never
        visits more, and reports B2B505 when the cap stopped it early.
    :param time_budget: optional wall-clock cap in seconds, same truncation
        semantics as ``max_states``.
    :param location: diagnostic location (defaults to the two process names).
    :param reduce: apply partial-order reduction (see the module docstring
        for the soundness argument).  Detected codes and reported
        counterexamples are identical to the unreduced BFS; only the
        number of states visited on clean models changes.
    """
    if queue_bound < 1:
        raise ValueError("queue_bound must be >= 1")
    if max_states < 1:
        raise ValueError("max_states must be >= 1")
    defs = (first, second)
    where = location or f"conversation:{first.name}+{second.name}"
    detection = _explore(defs, queue_bound, max_states, time_budget, where, reduce)
    found = detection.found
    replay_states = 0
    if reduce and found:
        # Counterexample replay: re-derive each defect's minimal witness
        # with the plain BFS under the same budgets.
        replay = _explore(defs, queue_bound, max_states, time_budget, where, False)
        replay_states = replay.states
        merged = dict(replay.found)
        for code, diagnostic in found.items():
            # Only reachable when the replay truncated before re-reaching
            # a defect the reduced pass proved: keep the reduced-pass
            # witness rather than dropping the finding.
            merged.setdefault(code, diagnostic)
        found = merged
    diagnostics = [found[code] for code in sorted(found)]
    if detection.truncated:
        diagnostics.append(
            Diagnostic(
                "B2B505",
                SEVERITY_INFO,
                where,
                f"exploration truncated after {detection.states} state(s) "
                f"(max_states={max_states}"
                + (f", time_budget={time_budget}s" if time_budget else "")
                + "): defects found so far are real, but absence of "
                "defects is not proven",
                hint="raise --max-states (or the time budget) to finish "
                "the exploration",
            )
        )
    return ExplorationResult(
        diagnostics=diagnostics,
        states_explored=detection.states,
        truncated=detection.truncated,
        states_pruned=detection.pruned,
        replay_states=replay_states,
        reduced=reduce,
    )


def _explore(
    defs: tuple[PublicProcessDefinition, PublicProcessDefinition],
    queue_bound: int,
    max_states: int,
    time_budget: float | None,
    where: str,
    reduce: bool,
) -> _Exploration:
    """One exploration pass: BFS, optionally with singleton ample sets."""
    started = time.monotonic()
    # (pos0, pos1) determines the queues for strictly sequential roles,
    # so this packed pair is a collision-free canonical state key.
    stride = len(defs[1].steps) + 1
    visited = {0}
    initial: _State = (0, 0, (), ())
    frontier: deque[tuple[_State, tuple | None]] = deque([(initial, None)])
    found: dict[str, Diagnostic] = {}
    pruned = 0
    truncated = False
    while frontier:
        if time_budget is not None and time.monotonic() - started > time_budget:
            truncated = True
            break
        state, tail = frontier.popleft()
        moves = _moves(defs, state, queue_bound)
        _classify(defs, state, tail, bool(moves), queue_bound, where, found)
        if reduce and len(moves) > 1:
            # Singleton ample set: any enabled move represents the whole
            # state (commutation + persistence + acyclicity, see module
            # docstring); take the first for determinism.
            pruned += len(moves) - 1
            moves = moves[:1]
        for event, successor in moves:
            key = successor[0] * stride + successor[1]
            if key in visited:
                continue
            if len(visited) >= max_states:
                truncated = True
                continue
            visited.add(key)
            frontier.append((successor, (event, tail)))
    return _Exploration(found, len(visited), pruned, truncated)


def _tail_events(tail: tuple | None) -> tuple[_Event, ...]:
    """Materialize a parent-linked trace cell chain into an event tuple."""
    events: list[_Event] = []
    while tail is not None:
        event, tail = tail
        events.append(event)
    return tuple(reversed(events))


# ---------------------------------------------------------------------------
# Product-automaton moves
# ---------------------------------------------------------------------------


def _moves(
    defs: tuple[PublicProcessDefinition, PublicProcessDefinition],
    state: _State,
    queue_bound: int,
) -> list[tuple[_Event, _State]]:
    """Enabled transitions of ``state``, in a fixed deterministic order."""
    moves: list[tuple[_Event, _State]] = []
    positions = (state[0], state[1])
    queues = (state[2], state[3])  # queues[i] carries side i -> side 1-i
    for side in (0, 1):
        steps = defs[side].steps
        position = positions[side]
        if position >= len(steps):
            continue
        step = steps[position]
        out_queue, in_queue = queues[side], queues[1 - side]
        event: _Event = (side, step.kind, step.doc_type, step.step_id)
        if step.kind == KIND_SEND:
            if len(out_queue) >= queue_bound:
                continue  # blocked on the full queue
            out_queue = out_queue + (step.doc_type,)
        elif step.kind == KIND_RECEIVE:
            if not in_queue or in_queue[0] != step.doc_type:
                continue  # blocked waiting (or forever, on a mismatch)
            in_queue = in_queue[1:]
        # connection/produce steps are internal: always enabled, no queue
        # effect — the binding side is assumed to respond eventually.
        new_positions = [positions[0], positions[1]]
        new_positions[side] = position + 1
        new_queues = [out_queue, in_queue] if side == 0 else [in_queue, out_queue]
        moves.append(
            (event, (new_positions[0], new_positions[1],
                     tuple(new_queues[0]), tuple(new_queues[1])))
        )
    return moves


# ---------------------------------------------------------------------------
# State classification (the defect detectors)
# ---------------------------------------------------------------------------


def _classify(
    defs: tuple[PublicProcessDefinition, PublicProcessDefinition],
    state: _State,
    tail: tuple | None,
    has_moves: bool,
    queue_bound: int,
    where: str,
    found: dict[str, Diagnostic],
) -> None:
    """Inspect one reached state and record first-seen (minimal) defects."""
    positions = (state[0], state[1])
    queues = (state[2], state[3])

    def completed(side: int) -> bool:
        return positions[side] >= len(defs[side].steps)

    def current(side: int):
        return defs[side].steps[positions[side]]

    def in_queue(side: int) -> tuple[str, ...]:
        return queues[1 - side]

    def record(code: str, severity: str, message: str, hint: str) -> None:
        if code in found:
            return
        found[code] = Diagnostic(
            code, severity, where, message, hint,
            trace=_render_trace(defs, state, _tail_events(tail)),
        )

    # Eager checks: these states are already doomed even if the partner can
    # still move — a sequential process has no alternative receive to try.
    for side in (0, 1):
        if completed(side):
            if in_queue(side):
                record(
                    "B2B504",
                    SEVERITY_WARNING,
                    f"orphan message(s) {list(in_queue(side))} queued for "
                    f"{_who(defs, side)}, which has already completed: sent "
                    "but never consumable",
                    "remove the unmatched send or extend the receiving "
                    "process to consume the document",
                )
            continue
        step = current(side)
        if (
            step.kind == KIND_RECEIVE
            and in_queue(side)
            and in_queue(side)[0] != step.doc_type
        ):
            record(
                "B2B502",
                SEVERITY_ERROR,
                f"unspecified reception: {_who(defs, side)} at step "
                f"{step.step_id!r} expects {step.doc_type!r} but the queue "
                f"head is {in_queue(side)[0]!r}; the sequential process can "
                "never consume it",
                "reorder the exchange or add a receive step for the "
                "queued document",
            )
    if has_moves:
        return
    # The conversation is globally stuck.  A clean terminal state — both
    # sides completed, both queues drained — is the success case.
    if completed(0) and completed(1) and not queues[0] and not queues[1]:
        return
    for side in (0, 1):
        if completed(side):
            continue
        step = current(side)
        if step.kind == KIND_SEND and len(queues[side]) >= queue_bound:
            record(
                "B2B503",
                SEVERITY_ERROR,
                f"queue-bound overflow: {_who(defs, side)} is blocked "
                f"sending {step.doc_type!r} at step {step.step_id!r} — the "
                f"queue toward its partner holds {list(queues[side])} at "
                f"bound {queue_bound} and nothing can drain it (diverging "
                "or unmatched send sequence)",
                "match the sends with receives on the partner side, or "
                "raise --queue-bound if the protocol legitimately bursts",
            )
    if not queues[0] and not queues[1]:
        blocked = "; ".join(_side_status(defs, state, side) for side in (0, 1))
        record(
            "B2B501",
            SEVERITY_ERROR,
            f"conversation deadlock: {blocked}; both queues are empty, so "
            "neither side can ever proceed",
            "make one side send the document the other is waiting for "
            "(the processes are not complementary)",
        )


def _who(
    defs: tuple[PublicProcessDefinition, PublicProcessDefinition], side: int
) -> str:
    """Short actor label: the role when the two differ, else the name."""
    if defs[0].role != defs[1].role:
        return defs[side].role
    return defs[side].name


def _side_status(
    defs: tuple[PublicProcessDefinition, PublicProcessDefinition],
    state: _State,
    side: int,
) -> str:
    position = state[side]
    if position >= len(defs[side].steps):
        return f"{_who(defs, side)} has completed"
    step = defs[side].steps[position]
    waiting = f" {step.doc_type!r}" if step.doc_type else ""
    return (
        f"{_who(defs, side)} is blocked at step {step.step_id!r} "
        f"({step.kind}{waiting})"
    )


# ---------------------------------------------------------------------------
# Message-sequence-chart rendering
# ---------------------------------------------------------------------------


def render_msc(
    events: Iterable[tuple[int, str, str, str]],
    left_label: str,
    right_label: str,
) -> list[str]:
    """Render trace events as a two-column message-sequence chart.

    Wire events carry a direction arrow (``-->`` left-to-right, ``<--``
    right-to-left); internal steps sit in their actor's column with no
    arrow.  The output is deterministic and golden-test friendly.
    """
    rows: list[tuple[str, str, str]] = []
    for side, kind, doc_type, step_id in events:
        text = f"{kind} {doc_type}".strip() + f"  [{step_id}]"
        if kind == KIND_SEND:
            arrow = "-->" if side == 0 else "<--"
        elif kind == KIND_RECEIVE:
            arrow = "-->" if side == 1 else "<--"
        else:
            arrow = ""
        rows.append((text, arrow, "") if side == 0 else ("", arrow, text))
    width = max([len(left_label)] + [len(row[0]) for row in rows])
    lines = [f"{left_label:<{width}}  {'':3}  {right_label}".rstrip()]
    lines.extend(
        f"{left:<{width}}  {arrow:^3}  {right}".rstrip()
        for left, arrow, right in rows
    )
    return lines


def _render_trace(
    defs: tuple[PublicProcessDefinition, PublicProcessDefinition],
    state: _State,
    trace: tuple[_Event, ...],
) -> tuple[str, ...]:
    """The MSC plus a summary of the reached state, for Diagnostic.trace."""
    lines = render_msc(trace, _who(defs, 0), _who(defs, 1))
    lines.append(f"state: {_side_status(defs, state, 0)}; "
                 f"{_side_status(defs, state, 1)}")
    queue_ab, queue_ba = state[2], state[3]
    lines.append(
        f"queues: {_who(defs, 0)}->{_who(defs, 1)} "
        f"{list(queue_ab) if queue_ab else 'empty'} | "
        f"{_who(defs, 1)}->{_who(defs, 0)} "
        f"{list(queue_ba) if queue_ba else 'empty'}"
    )
    return tuple(lines)


# ---------------------------------------------------------------------------
# Model-level orchestration
# ---------------------------------------------------------------------------


def verify_conversations(
    model: "IntegrationModel",
    queue_bound: int = DEFAULT_QUEUE_BOUND,
    max_states: int = DEFAULT_MAX_STATES,
    time_budget: float | None = None,
    reduce: bool = True,
    results: list[tuple[str, ExplorationResult]] | None = None,
) -> list[Diagnostic]:
    """Model-check every conversation the model can hold.

    Public processes are grouped by their declared protocol; every
    buyer/seller pairing within a protocol is explored (deployed protocols
    register exactly one of each, so this is normally one exploration per
    protocol, shared by all trading-partner agreements over it).  Budgets
    apply per pair.  When ``results`` is given, each pair's
    ``(location, ExplorationResult)`` is appended to it so callers can
    report per-model explored/pruned state counts.
    """
    prefix = f"model:{model.name}"
    by_protocol: dict[str, dict[str, list[PublicProcessDefinition]]] = {}
    for name in sorted(model.public_processes):
        definition = model.public_processes[name]
        by_protocol.setdefault(definition.protocol, {}).setdefault(
            definition.role, []
        ).append(definition)
    diagnostics: list[Diagnostic] = []
    for protocol in sorted(by_protocol):
        roles = by_protocol[protocol]
        for buyer in roles.get("buyer", []):
            for seller in roles.get("seller", []):
                location = (
                    f"{prefix}/conversation:{protocol}/"
                    f"{buyer.name}+{seller.name}"
                )
                result = explore_pair(
                    buyer,
                    seller,
                    queue_bound=queue_bound,
                    max_states=max_states,
                    time_budget=time_budget,
                    location=location,
                    reduce=reduce,
                )
                if results is not None:
                    results.append((location, result))
                diagnostics.extend(result.diagnostics)
    return diagnostics
