"""Named lint targets: every model the analysis layer can build.

``repro lint`` and the CI model-lint job iterate these so a regression in
any scenario builder, the mapping catalog, or the standard protocol
registry surfaces as a diagnostic instead of a runtime failure three
layers deep.  Each builder returns ``{label: unit}`` where a unit is an
``IntegrationModel`` (or, for the naive baseline, a bare workflow type);
:func:`lint_all` verifies every unit — directly, or through an
:class:`~repro.verify.incremental.IncrementalVerifier` so unchanged
units are digest-matched cache hits.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.verify.diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.verify.incremental import IncrementalVerifier, ModelReport

__all__ = [
    "lint_targets",
    "lint_units",
    "lint_all",
    "build_broken_model",
    "build_deadlock_model",
    "build_dataflow_broken_model",
]

Builder = Callable[[], dict[str, Any]]


def _pair_units(protocol: str) -> dict[str, Any]:
    from repro.analysis.scenarios import build_two_enterprise_pair

    pair = build_two_enterprise_pair(protocol)
    return {
        f"pair-{protocol}/{enterprise.name}": enterprise.model
        for enterprise in pair.enterprises()
    }


def _order_to_cash_units() -> dict[str, Any]:
    from repro.analysis.scenarios import build_order_to_cash_pair

    pair = build_order_to_cash_pair()
    return {
        f"order-to-cash/{enterprise.name}": enterprise.model
        for enterprise in pair.enterprises()
    }


def _sourcing_units() -> dict[str, Any]:
    from repro.analysis.scenarios import build_sourcing_community

    community = build_sourcing_community(
        {"S1": {"widget": 5.0}, "S2": {"widget": 4.5}}
    )
    return {
        f"sourcing/{enterprise.name}": enterprise.model
        for enterprise in community.enterprises()
    }


def _fig15_units() -> dict[str, Any]:
    from repro.analysis.scenarios import build_fig15_community

    community = build_fig15_community()
    return {
        f"fig15/{enterprise.name}": enterprise.model
        for enterprise in community.enterprises()
    }


def _fig14_units() -> dict[str, Any]:
    from repro.analysis.change_impact import build_fig14_model

    return {"fig14": build_fig14_model()}


def _sweep_units() -> dict[str, Any]:
    from repro.analysis.scenarios import advanced_synthetic_model

    model = advanced_synthetic_model(4, 4, 3)
    return {f"sweep/{model.name}": model}


def _naive_seller_units() -> dict[str, Any]:
    from repro.baselines.monolithic import NaiveTopology, build_naive_seller_type

    return {"naive-seller": build_naive_seller_type(NaiveTopology.figure9())}


def lint_targets() -> dict[str, Builder]:
    """The registry of named lint targets (each builds ``{label: unit}``)."""
    return {
        "pair-edi-van": lambda: _pair_units("edi-van"),
        "pair-rosettanet": lambda: _pair_units("rosettanet"),
        "pair-oagis-http": lambda: _pair_units("oagis-http"),
        "pair-rosettanet-ra": lambda: _pair_units("rosettanet-ra"),
        "order-to-cash": _order_to_cash_units,
        "sourcing": _sourcing_units,
        "fig15": _fig15_units,
        "fig14": _fig14_units,
        "sweep": _sweep_units,
        "naive-seller": _naive_seller_units,
    }


def lint_units(only: str | None = None) -> dict[str, Any]:
    """Build all (or one) named targets' verification units.

    :param only: restrict to the target with this name.
    """
    targets = lint_targets()
    if only is not None:
        if only not in targets:
            raise KeyError(
                f"unknown lint target {only!r}; known: {sorted(targets)}"
            )
        targets = {only: targets[only]}
    units: dict[str, Any] = {}
    for builder in targets.values():
        units.update(builder())
    return units


def lint_all(
    only: str | None = None,
    incremental: "IncrementalVerifier | None" = None,
    reports: "dict[str, ModelReport] | None" = None,
    **verify_options: Any,
) -> dict[str, list[Diagnostic]]:
    """Verify all (or one) named lint targets; returns ``{label: diagnostics}``.

    :param only: restrict to the target with this name.
    :param incremental: when given, verification goes through the
        digest-keyed cache — unchanged units are hits, and
        ``verify_options`` must have been passed to the verifier instead.
    :param reports: optional dict filled with each unit's
        :class:`~repro.verify.incremental.ModelReport` (timing, cache
        status, explored/pruned state counts).
    :param verify_options: forwarded to every model's ``verify()`` —
        ``deep=True`` plus the ``queue_bound``/``max_states``/
        ``time_budget``/``reduce`` exploration controls.
    """
    from repro.verify.incremental import verify_unit

    units = lint_units(only)
    results: dict[str, list[Diagnostic]] = {}
    for label, unit in units.items():
        if incremental is not None:
            report = incremental.verify(label, unit)
        else:
            report = verify_unit(label, unit, verify_options)
        results[label] = report.diagnostics
        if reports is not None:
            reports[label] = report
    return results


def build_broken_model():
    """A deliberately broken model for demonstrating the verifier.

    Contains (at least) an undeclared condition variable (B2B201), a
    binding chain whose transform has no route (B2B301), and an XOR
    fan-out without an otherwise arc (B2B103) — three distinct failure
    families the verifier must catch.
    """
    from repro.core.binding import Binding, BindingStep
    from repro.core.integration import IntegrationModel
    from repro.core.public_process import seller_request_reply
    from repro.transform.catalog import build_standard_registry
    from repro.workflow.definitions import WorkflowBuilder

    workflow = (
        WorkflowBuilder("broken-seller")
        .activity("receive", "receive_po", outputs={"document": "document"})
        .activity("approve", "approve_po")
        .activity("reject", "reject_po")
        .activity("store", "store_po")
        # B2B201: 'approval_flag' is never declared nor bound as an output
        .link("receive", "approve", condition="approval_flag == True")
        # B2B103: the XOR fan-out has no otherwise and is not exhaustive
        .link("receive", "reject", condition="document.amount > 100000")
        .link("approve", "store")
        .link("reject", "store")
        .meta(doc_types=["purchase_order"])
        .build()
    )
    model = IntegrationModel("broken-demo")
    model.transforms = build_standard_registry()
    model.add_private_process(workflow)
    definition = seller_request_reply(
        "broken-public", protocol="rosettanet", wire_format="rosettanet-xml"
    )
    model.public_processes[definition.name] = definition
    # B2B301: the inbound chain targets a format the registry cannot
    # reach from rosettanet-xml for purchase orders
    binding = Binding(
        name="broken-binding",
        public_process=definition.name,
        private_process=workflow.name,
        inbound=[BindingStep("to_nowhere", "transform", target_format="csv-flat")],
        outbound=[BindingStep("to_wire", "transform", target_format="rosettanet-xml")],
    )
    model.bindings[binding.name] = binding
    return model


def build_dataflow_broken_model():
    """A deliberately mis-typed route for demonstrating ``--dataflow``.

    One binding chain composes two independently authored mappings whose
    intermediate schemas disagree.  The first mapping writes a numeric
    currency code where its own target schema declares a string (B2B701,
    with a counterexample document) and narrows a float total into a
    string field without a declared transform (B2B703); the second
    mapping's source schema requires a reference field the first mapping
    never writes and expects the currency as a string (B2B705 twice), so
    its reference-copying rule is dead on this route (B2B704).
    """
    from repro.core.binding import Binding, BindingStep
    from repro.core.integration import IntegrationModel
    from repro.core.public_process import seller_request_reply
    from repro.documents.schema import DocumentSchema, FieldSpec
    from repro.transform.mapping import Const, Field, Mapping
    from repro.transform.transformer import TransformationRegistry
    from repro.workflow.definitions import WorkflowBuilder

    wire_schema = DocumentSchema(
        "legacy-wire/purchase_order",
        format_name="legacy-wire",
        doc_type="purchase_order",
        fields=[
            FieldSpec("header.po_number", "str"),
            FieldSpec("header.currency", "str"),
            FieldSpec("summary.total", "float"),
        ],
    )
    # The hub schema as the *first* mapping's author understood it.
    hub_schema = DocumentSchema(
        "broken-hub/purchase_order",
        format_name="broken-hub",
        doc_type="purchase_order",
        fields=[
            FieldSpec("po.number", "str"),
            FieldSpec("po.currency", "str"),
            FieldSpec("po.amount", "float"),
            FieldSpec("po.total_code", "str"),
        ],
    )
    # The hub schema as the *second* mapping's author understood it:
    # it additionally requires ``po.reference``.
    hub_schema_v2 = DocumentSchema(
        "broken-hub/purchase_order",
        format_name="broken-hub",
        doc_type="purchase_order",
        fields=[
            FieldSpec("po.number", "str"),
            FieldSpec("po.currency", "str"),
            FieldSpec("po.amount", "float"),
            FieldSpec("po.total_code", "str"),
            FieldSpec("po.reference", "str"),
        ],
    )
    app_schema = DocumentSchema(
        "app-flat/purchase_order",
        format_name="app-flat",
        doc_type="purchase_order",
        fields=[
            FieldSpec("record.id", "str"),
            FieldSpec("record.ref", "str", required=False),
        ],
    )
    to_hub = Mapping(
        name="legacy-wire__to__broken-hub/purchase_order",
        source_format="legacy-wire",
        target_format="broken-hub",
        doc_type="purchase_order",
        rules=[
            Field("header.po_number", "po.number"),
            # B2B701: a numeric currency code where the schema says str
            Const("po.currency", 840),
            Field("summary.total", "po.amount"),
            # B2B703: float -> str narrowing without a declared transform
            Field("summary.total", "po.total_code"),
        ],
        source_schema=wire_schema,
        target_schema=hub_schema,
    )
    to_app = Mapping(
        name="broken-hub__to__app-flat/purchase_order",
        source_format="broken-hub",
        target_format="app-flat",
        doc_type="purchase_order",
        rules=[
            Field("po.number", "record.id"),
            # B2B704 on this route: the upstream mapping never writes it
            Field("po.reference", "record.ref", required=False),
        ],
        source_schema=hub_schema_v2,
        target_schema=app_schema,
    )
    ack_out = Mapping(
        name="broken-hub__to__legacy-wire/po_ack",
        source_format="broken-hub",
        target_format="legacy-wire",
        doc_type="po_ack",
        rules=[Field("po.number", "header.po_number")],
    )
    registry = TransformationRegistry(hub_format="broken-hub")
    registry.register(to_hub)
    registry.register(to_app)
    registry.register(ack_out)

    workflow = (
        WorkflowBuilder("dataflow-seller")
        .activity("receive", "receive_po", outputs={"document": "document"})
        .activity("store", "store_po")
        .link("receive", "store")
        .meta(doc_types=["purchase_order"])
        .build()
    )
    model = IntegrationModel("dataflow-broken-demo")
    model.transforms = registry
    model.add_private_process(workflow)
    definition = seller_request_reply(
        "dataflow-public", protocol="rosettanet", wire_format="legacy-wire"
    )
    model.public_processes[definition.name] = definition
    binding = Binding(
        name="dataflow-binding",
        public_process=definition.name,
        private_process=workflow.name,
        inbound=[
            BindingStep("to_hub", "transform", target_format="broken-hub"),
            BindingStep("to_app", "transform", target_format="app-flat"),
        ],
        outbound=[
            BindingStep("to_wire", "transform", target_format="legacy-wire"),
        ],
    )
    model.bindings[binding.name] = binding
    return model


def build_deadlock_model():
    """A deliberately deadlocking agreement for demonstrating ``--deep``.

    The buyer sends the purchase order and then waits for the invoice;
    the seller holds the invoice back until it also receives shipping
    terms the buyer never sends.  ``add_protocol`` would reject the pair
    as non-complementary (that mirror check is exactly why deployed
    protocols cannot do this), so the definitions are inserted into the
    model directly — the situation the conversation checker exists for:
    two *independently authored* public processes that each look fine
    alone but cannot finish a conversation together.

    Deep verification reports B2B501 (deadlock) with the message-sequence
    chart of the shortest run into the stuck state.
    """
    from repro.core.integration import IntegrationModel
    from repro.core.public_process import PublicProcessDefinition, PublicStep

    buyer = PublicProcessDefinition(
        name="deadlock-buyer",
        protocol="deadlock-handshake",
        role="buyer",
        wire_format="rosettanet-xml",
        steps=[
            PublicStep("send_po", "send", doc_type="purchase_order"),
            PublicStep("receive_invoice", "receive", doc_type="invoice"),
            PublicStep("store_invoice", "to_binding", doc_type="invoice"),
        ],
    )
    seller = PublicProcessDefinition(
        name="deadlock-seller",
        protocol="deadlock-handshake",
        role="seller",
        wire_format="rosettanet-xml",
        steps=[
            PublicStep("receive_po", "receive", doc_type="purchase_order"),
            PublicStep("receive_terms", "receive", doc_type="shipping_terms"),
            PublicStep("fetch_invoice", "from_binding", doc_type="invoice"),
            PublicStep("send_invoice", "send", doc_type="invoice"),
        ],
    )
    model = IntegrationModel("deadlock-demo")
    model.public_processes[buyer.name] = buyer
    model.public_processes[seller.name] = seller
    return model
