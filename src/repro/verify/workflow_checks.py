"""Graph and expression checks over a :class:`WorkflowType` (B2B1xx/B2B2xx).

The workflow constructor already rejects structural nonsense (cycles,
unknown steps, bad otherwise arcs); these checks find models that are
*valid but wrong* — steps no token can reach, XOR fan-outs that can strand
a token, conditions that constant-fold to a fixed truth value, and
expressions referencing variables or document fields that do not exist.

Reachability is computed over the **live** graph: transitions whose
condition constant-folds to ``False`` are removed first, so a step that is
only reachable through a dead edge is correctly reported as unreachable.
"""

from __future__ import annotations

from repro.documents.schema import DocumentSchema
from repro.errors import ReproError
from repro.verify.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
)
from repro.workflow.definitions import LoopStep, Transition, WorkflowType
from repro.workflow.expressions import Expression

__all__ = ["verify_workflow"]


def verify_workflow(
    workflow: WorkflowType,
    schemas: dict[str, DocumentSchema] | None = None,
    location_prefix: str = "",
    deep: bool = False,
) -> list[Diagnostic]:
    """Statically lint ``workflow``; returns the diagnostics found.

    :param schemas: optional map of *variable name* -> the document schema
        its value is expected to satisfy; dotted paths rooted at these
        variables are checked against the schema (B2B202).  When omitted,
        schemas are derived from the workflow's ``doc_types`` metadata for
        the conventional document variables (``document``, ``ack``, ...).
    :param location_prefix: prepended to every diagnostic location (used
        by :func:`repro.verify.verify_model` to point into the model).
    :param deep: also run the AND-parallel race analysis (B2B6xx, see
        :mod:`repro.verify.race_checks`).
    """
    prefix = location_prefix or f"workflow:{workflow.name}"
    diagnostics: list[Diagnostic] = []
    dead, always_true = _fold_transitions(workflow, prefix, diagnostics)
    _check_reachability(workflow, dead, prefix, diagnostics)
    _check_fanouts(workflow, dead, always_true, prefix, diagnostics)
    _check_expressions(workflow, schemas, prefix, diagnostics)
    if deep:
        from repro.verify.race_checks import verify_workflow_races

        diagnostics.extend(verify_workflow_races(workflow, location_prefix=prefix))
    return diagnostics


# ---------------------------------------------------------------------------
# B2B104 / B2B105: constant conditions
# ---------------------------------------------------------------------------


def _fold_transitions(
    workflow: WorkflowType, prefix: str, diagnostics: list[Diagnostic]
) -> tuple[set[int], set[int]]:
    """Constant-fold every transition condition.

    Returns the index sets of dead (always-False) and always-True arcs,
    appending B2B104/B2B105 diagnostics along the way.
    """
    dead: set[int] = set()
    always_true: set[int] = set()
    for index, arc in enumerate(workflow.transitions):
        if arc.condition is None:
            continue
        folded = Expression(arc.condition).fold_constant()
        if folded is None:
            continue
        location = f"{prefix}/transition[{index}]"
        label = f"{arc.source} -> {arc.target}"
        if not folded[0]:
            dead.add(index)
            diagnostics.append(
                Diagnostic(
                    "B2B104",
                    SEVERITY_ERROR,
                    location,
                    f"condition {arc.condition!r} on {label} constant-folds "
                    "to False: the transition can never fire",
                    hint="remove the dead transition or fix its condition",
                )
            )
        else:
            always_true.add(index)
            siblings = [
                other
                for other in workflow.outgoing(arc.source)
                if other is not arc and (other.condition is not None or other.otherwise)
            ]
            shadow = (
                "; the otherwise/conditioned siblings it shadows can decide nothing"
                if siblings
                else ""
            )
            diagnostics.append(
                Diagnostic(
                    "B2B105",
                    SEVERITY_WARNING,
                    location,
                    f"condition {arc.condition!r} on {label} constant-folds "
                    f"to True{shadow}",
                    hint="make the transition unconditional or fix the condition",
                )
            )
    return dead, always_true


# ---------------------------------------------------------------------------
# B2B101 / B2B102: reachability over the live graph
# ---------------------------------------------------------------------------


def _live_outgoing(
    workflow: WorkflowType, dead: set[int]
) -> dict[str, list[Transition]]:
    dead_arcs = {id(workflow.transitions[index]) for index in dead}
    return {
        step_id: [arc for arc in workflow.outgoing(step_id) if id(arc) not in dead_arcs]
        for step_id in workflow.steps
    }


def _check_reachability(
    workflow: WorkflowType,
    dead: set[int],
    prefix: str,
    diagnostics: list[Diagnostic],
) -> None:
    live = _live_outgoing(workflow, dead)
    reachable: set[str] = set()
    frontier = [step.step_id for step in workflow.start_steps()]
    while frontier:
        step_id = frontier.pop()
        if step_id in reachable:
            continue
        reachable.add(step_id)
        frontier.extend(arc.target for arc in live[step_id])
    for step_id in workflow.steps:
        if step_id not in reachable:
            diagnostics.append(
                Diagnostic(
                    "B2B101",
                    SEVERITY_ERROR,
                    f"{prefix}/step:{step_id}",
                    "step is unreachable from every start step "
                    "(over the graph with dead edges removed)",
                    hint="add a live transition into the step or delete it",
                )
            )
    # A step whose outgoing arcs all died became an unintended sink: the
    # token stalls there instead of continuing to a real terminal step.
    for step_id in workflow.steps:
        if workflow.outgoing(step_id) and not live[step_id]:
            diagnostics.append(
                Diagnostic(
                    "B2B102",
                    SEVERITY_ERROR,
                    f"{prefix}/step:{step_id}",
                    "every outgoing transition is dead: the flow has no "
                    "path from this step to a terminal step",
                    hint="fix or remove the constant-False conditions downstream",
                )
            )


# ---------------------------------------------------------------------------
# B2B103: XOR fan-outs that cannot be proven exhaustive
# ---------------------------------------------------------------------------


def _check_fanouts(
    workflow: WorkflowType,
    dead: set[int],
    always_true: set[int],
    prefix: str,
    diagnostics: list[Diagnostic],
) -> None:
    true_arcs = {id(workflow.transitions[index]) for index in always_true}
    dead_arcs = {id(workflow.transitions[index]) for index in dead}
    for step_id in workflow.steps:
        arcs = workflow.outgoing(step_id)
        conditioned = [
            arc
            for arc in arcs
            if arc.condition is not None and id(arc) not in dead_arcs
        ]
        if not conditioned:
            continue
        has_otherwise = any(arc.otherwise for arc in arcs)
        has_unconditional = any(
            arc.condition is None and not arc.otherwise for arc in arcs
        )
        provably_exhaustive = any(id(arc) in true_arcs for arc in conditioned)
        if has_otherwise or has_unconditional or provably_exhaustive:
            continue
        conditions = ", ".join(repr(arc.condition) for arc in conditioned)
        diagnostics.append(
            Diagnostic(
                "B2B103",
                SEVERITY_WARNING,
                f"{prefix}/step:{step_id}",
                f"XOR fan-out ({conditions}) cannot be proven exhaustive "
                "and has no otherwise transition: a token may strand here",
                hint="add an otherwise transition as the default branch",
            )
        )


# ---------------------------------------------------------------------------
# B2B201 / B2B202: expression references
# ---------------------------------------------------------------------------

# Variables that conventionally hold normalized documents in the private
# processes (see core.private_process); used to derive schemas when the
# caller supplies none.
_DOCUMENT_VARIABLES = ("document", "ack", "invoice", "rfq", "quote", "asn")


def _declared_variables(workflow: WorkflowType) -> set[str]:
    declared = set(workflow.variables)
    for step in workflow.steps.values():
        declared.update(getattr(step, "outputs", {}))
    return declared


def _default_schemas(workflow: WorkflowType) -> dict[str, list[DocumentSchema]]:
    doc_types = workflow.metadata.get("doc_types") or []
    if not doc_types:
        return {}
    from repro.documents.normalized import schema_for

    schemas: list[DocumentSchema] = []
    for doc_type in doc_types:
        try:
            schemas.append(schema_for(doc_type))
        except ReproError:
            continue
    if not schemas:
        return {}
    return {variable: schemas for variable in _DOCUMENT_VARIABLES}


def _expression_sites(workflow: WorkflowType) -> list[tuple[str, Expression]]:
    sites: list[tuple[str, Expression]] = []
    prefix_steps = [(f"step:{step.step_id}", step) for step in workflow.steps.values()]
    for location, step in prefix_steps:
        for input_name, text in getattr(step, "inputs", {}).items():
            sites.append((f"{location}/input:{input_name}", Expression(text)))
        if isinstance(step, LoopStep):
            sites.append((f"{location}/condition", Expression(step.condition)))
    for index, arc in enumerate(workflow.transitions):
        if arc.condition is not None:
            sites.append((f"transition[{index}]", Expression(arc.condition)))
    return sites


def _path_in_schema(path: str, schema: DocumentSchema) -> bool:
    """Whether a dotted path (relative to the document root) can resolve
    against ``schema``, honouring the expression evaluator's access rules:
    the ``amount`` alias and the bare-key -> ``header.<key>`` fallback."""
    candidates = [path]
    head, _, rest = path.partition(".")
    if head == "amount" and not rest:
        candidates += ["summary.total_amount", "summary.accepted_amount"]
    candidates.append(f"header.{path}")
    declared = {spec.path: spec for spec in schema.fields}
    for candidate in candidates:
        for declared_path, spec in declared.items():
            if candidate == declared_path:
                return True
            # accessing below a declared dict/list container is fine
            if candidate.startswith(declared_path + ".") and spec.type_name in (
                "dict",
                "list",
            ):
                return True
            if candidate.startswith(declared_path + "[") and spec.type_name == "list":
                return True
            # accessing a declared path's ancestor (a sub-document) is fine
            if declared_path.startswith(candidate + "."):
                return True
    return False


def _check_expressions(
    workflow: WorkflowType,
    schemas: dict[str, DocumentSchema] | None,
    prefix: str,
    diagnostics: list[Diagnostic],
) -> None:
    declared = _declared_variables(workflow)
    if schemas is None:
        schema_map: dict[str, list[DocumentSchema]] = _default_schemas(workflow)
    else:
        schema_map = {name: [schema] for name, schema in schemas.items()}
    for location, expression in _expression_sites(workflow):
        for name in sorted(expression.names() - declared):
            diagnostics.append(
                Diagnostic(
                    "B2B201",
                    SEVERITY_ERROR,
                    f"{prefix}/{location}",
                    f"expression {expression.text!r} references variable "
                    f"{name!r}, which is neither declared via "
                    "WorkflowBuilder.variable() nor bound as a step output",
                    hint="declare the variable or bind it as an output first",
                )
            )
        for dotted in sorted(expression.paths()):
            root, _, rest = dotted.partition(".")
            if not rest or root not in schema_map:
                continue
            rest = rest.split("[", 1)[0]  # schemas do not constrain indexes
            if any(_path_in_schema(rest, schema) for schema in schema_map[root]):
                continue
            names = ", ".join(schema.name for schema in schema_map[root])
            diagnostics.append(
                Diagnostic(
                    "B2B202",
                    SEVERITY_WARNING,
                    f"{prefix}/{location}",
                    f"document path {dotted!r} is absent from the relevant "
                    f"schema(s): {names}",
                    hint="fix the path or extend the document schema",
                )
            )
