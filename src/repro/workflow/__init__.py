"""Workflow management substrate (the paper's WFMS, Section 2.1).

A complete, self-contained workflow system in the WfMC style the paper
assumes: workflow **types** (steps, control flow with conditions and joins,
data flow, subworkflows) interpreted by a workflow **engine** that loads
and stores workflow **instances** in a workflow **database** on every state
advance — exactly the engine/database architecture of Figure 4, including
the subworkflow execution semantics ("subworkflows cannot return control
without being finished", Section 3.1) that the paper's argument against
naive message-exchange encodings hinges on.

:mod:`repro.workflow.distributed` adds the Section 2 distribution
mechanisms: instance migration, automatic type migration (Figure 6),
master/slave subworkflow distribution and write-through replication.
"""

from repro.workflow.expressions import Expression
from repro.workflow.definitions import (
    ActivityStep,
    LoopStep,
    RemoteSubworkflowStep,
    SubworkflowStep,
    Transition,
    WorkflowBuilder,
    WorkflowType,
)
from repro.workflow.instance import WorkflowInstance
from repro.workflow.database import WorkflowDatabase
from repro.workflow.activities import ActivityContext, ActivityRegistry, Waiting
from repro.workflow.worklist import Worklist, WorkItem
from repro.workflow.engine import WorkflowEngine

__all__ = [
    "Expression",
    "ActivityStep",
    "SubworkflowStep",
    "RemoteSubworkflowStep",
    "LoopStep",
    "Transition",
    "WorkflowBuilder",
    "WorkflowType",
    "WorkflowInstance",
    "WorkflowDatabase",
    "ActivityRegistry",
    "ActivityContext",
    "Waiting",
    "Worklist",
    "WorkItem",
    "WorkflowEngine",
]
