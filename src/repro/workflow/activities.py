"""Activity implementations: the code behind elementary workflow steps.

An *activity* is a named Python callable the engine invokes when an
:class:`~repro.workflow.definitions.ActivityStep` becomes ready.  It
receives an :class:`ActivityContext` and either returns its outputs (a
dict) or returns a :class:`Waiting` marker to park the step until an
external event — an arriving message, a human approval — completes it via
``engine.complete_waiting_step``.

Activities reach infrastructure (bindings, back ends, work lists) through
``context.services``, a dict the engine's host injects; workflow types
themselves stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import ActivityError

__all__ = ["Waiting", "ActivityContext", "ActivityRegistry", "built_in_registry"]


@dataclass(frozen=True)
class Waiting:
    """Returned by an activity to park its step on an external event.

    :param wait_key: key the external completion must present (defaults to
        ``"<instance_id>/<step_id>"`` when empty); lets message correlation
        find the parked step.
    """

    wait_key: str = ""


@dataclass
class ActivityContext:
    """Everything an activity implementation may see.

    :param instance_id / step_id: where the invocation happens.
    :param inputs: evaluated input expressions (read-only by convention).
    :param params: the step's static configuration.
    :param variables: snapshot of instance variables (mutations are
        ignored — data flows back only through returned outputs).
    :param services: host-injected infrastructure (messaging, worklist,
        back ends, rule engine ...).
    :param now: logical time of the invocation.
    :param engine_name: the executing engine (distribution experiments).
    """

    instance_id: str
    step_id: str
    inputs: dict[str, Any] = field(default_factory=dict)
    params: dict[str, Any] = field(default_factory=dict)
    variables: dict[str, Any] = field(default_factory=dict)
    services: dict[str, Any] = field(default_factory=dict)
    now: float = 0.0
    engine_name: str = ""

    def service(self, name: str) -> Any:
        """Return the injected service ``name`` (raises when absent)."""
        try:
            return self.services[name]
        except KeyError:
            raise ActivityError(
                f"activity at {self.instance_id}/{self.step_id} needs service "
                f"{name!r}, which the engine host did not inject"
            ) from None

    def default_wait_key(self) -> str:
        """The wait key used when an activity returns ``Waiting("")``."""
        return f"{self.instance_id}/{self.step_id}"


ActivityFn = Callable[[ActivityContext], "Mapping[str, Any] | Waiting | None"]


class ActivityRegistry:
    """Name -> implementation table, one per engine."""

    def __init__(self):
        self._activities: dict[str, ActivityFn] = {}

    def register(self, name: str, fn: ActivityFn, replace: bool = False) -> None:
        """Register ``fn`` under ``name``."""
        if not name:
            raise ActivityError("activity name must be non-empty")
        if name in self._activities and not replace:
            raise ActivityError(f"activity {name!r} already registered")
        self._activities[name] = fn

    def register_many(self, activities: Mapping[str, ActivityFn]) -> None:
        """Register several activities at once."""
        for name, fn in activities.items():
            self.register(name, fn)

    def get(self, name: str) -> ActivityFn:
        """Return the implementation for ``name``."""
        try:
            return self._activities[name]
        except KeyError:
            raise ActivityError(f"no activity implementation named {name!r}") from None

    def has(self, name: str) -> bool:
        """True when ``name`` is registered."""
        return name in self._activities

    def names(self) -> list[str]:
        """All registered activity names."""
        return sorted(self._activities)

    def invoke(self, name: str, context: ActivityContext) -> Mapping[str, Any] | Waiting:
        """Invoke the activity; normalizes ``None`` to ``{}``.

        Exceptions from the implementation are wrapped in
        :class:`ActivityError` with the invocation site attached.
        """
        fn = self.get(name)
        try:
            result = fn(context)
        except ActivityError:
            raise
        except Exception as exc:
            raise ActivityError(
                f"activity {name!r} failed at "
                f"{context.instance_id}/{context.step_id}: {exc!r}"
            ) from exc
        if result is None:
            return {}
        if isinstance(result, Waiting):
            return result
        if not isinstance(result, Mapping):
            raise ActivityError(
                f"activity {name!r} returned {type(result).__name__}; "
                "expected a mapping, Waiting, or None"
            )
        return dict(result)


# ---------------------------------------------------------------------------
# Built-in activities
# ---------------------------------------------------------------------------


def _noop(context: ActivityContext) -> dict[str, Any]:
    """Do nothing (placeholders, structural tests)."""
    return {}


def _set_variables(context: ActivityContext) -> dict[str, Any]:
    """Return the evaluated inputs as outputs (pure data-flow step)."""
    return dict(context.inputs)


def _wait_for_event(context: ActivityContext) -> Waiting:
    """Park the step until an external event completes it.

    ``params["wait_key"]`` overrides the default wait key.
    """
    return Waiting(context.params.get("wait_key", ""))


def _fail(context: ActivityContext) -> dict[str, Any]:
    """Raise deliberately (failure-injection tests)."""
    raise ActivityError(context.params.get("message", "injected failure"))


def built_in_registry() -> ActivityRegistry:
    """Return a registry preloaded with the generic activities."""
    registry = ActivityRegistry()
    registry.register_many(
        {
            "noop": _noop,
            "set_variables": _set_variables,
            "wait_for_event": _wait_for_event,
            "fail": _fail,
        }
    )
    return registry
