"""The workflow database of Figure 4: types and instances, persisted.

Every state advance follows the paper's cycle — "the workflow engine
retrieves the state of the workflow instance in question, advances the
workflow instance and stores the advanced state ... back into the
database".  To make that boundary real (and measurable, experiment F4),
loads and stores pass through dict snapshots: an engine never holds live
references into the database, and the ``loads``/``stores`` counters expose
the persistence traffic.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.errors import PersistenceError
from repro.workflow.definitions import WorkflowType
from repro.workflow.instance import WorkflowInstance

__all__ = ["WorkflowDatabase", "ReplicatedDatabase"]


class WorkflowDatabase:
    """In-memory workflow database with snapshot persistence semantics."""

    def __init__(self, name: str = "workflow-db"):
        self.name = name
        self._types: dict[tuple[str, str], dict[str, Any]] = {}
        self._instances: dict[str, dict[str, Any]] = {}
        self.type_stores = 0
        self.type_loads = 0
        self.instance_stores = 0
        self.instance_loads = 0

    # -- workflow types ----------------------------------------------------------

    def store_type(self, workflow_type: WorkflowType) -> None:
        """Persist (or overwrite) a workflow type definition."""
        self._types[(workflow_type.name, workflow_type.version)] = workflow_type.to_dict()
        self.type_stores += 1

    def has_type(self, name: str, version: str = "") -> bool:
        """True when the type (any version if ``version`` empty) is stored."""
        if version:
            return (name, version) in self._types
        return any(stored_name == name for stored_name, _ in self._types)

    def load_type(self, name: str, version: str = "") -> WorkflowType:
        """Load a type; empty ``version`` resolves to the highest version."""
        self.type_loads += 1
        if version:
            payload = self._types.get((name, version))
            if payload is None:
                raise PersistenceError(
                    f"{self.name}: no workflow type {name!r} version {version!r}"
                )
            return WorkflowType.from_dict(payload)
        candidates = [key for key in self._types if key[0] == name]
        if not candidates:
            raise PersistenceError(f"{self.name}: no workflow type {name!r}")
        latest = max(candidates, key=lambda key: _version_sort_key(key[1]))
        return WorkflowType.from_dict(self._types[latest])

    def delete_type(self, name: str, version: str) -> None:
        """Remove a stored type version."""
        try:
            del self._types[(name, version)]
        except KeyError:
            raise PersistenceError(
                f"{self.name}: no workflow type {name!r} version {version!r}"
            ) from None

    def list_types(self) -> list[WorkflowType]:
        """All stored type definitions (used by the exposure metric)."""
        return [WorkflowType.from_dict(payload) for payload in self._types.values()]

    def type_keys(self) -> list[tuple[str, str]]:
        """All stored (name, version) pairs."""
        return sorted(self._types)

    # -- workflow instances ---------------------------------------------------------

    def store_instance(self, instance: WorkflowInstance) -> None:
        """Persist the instance snapshot."""
        self._instances[instance.instance_id] = instance.to_dict()
        self.instance_stores += 1

    def has_instance(self, instance_id: str) -> bool:
        """True when an instance with this id is stored."""
        return instance_id in self._instances

    def load_instance(self, instance_id: str) -> WorkflowInstance:
        """Load an instance snapshot."""
        self.instance_loads += 1
        payload = self._instances.get(instance_id)
        if payload is None:
            raise PersistenceError(f"{self.name}: no workflow instance {instance_id!r}")
        return WorkflowInstance.from_dict(payload)

    def delete_instance(self, instance_id: str) -> None:
        """Remove a stored instance."""
        try:
            del self._instances[instance_id]
        except KeyError:
            raise PersistenceError(
                f"{self.name}: no workflow instance {instance_id!r}"
            ) from None

    def list_instances(self, status: str | None = None) -> list[WorkflowInstance]:
        """All instances, optionally filtered by lifecycle status."""
        instances = [
            WorkflowInstance.from_dict(payload) for payload in self._instances.values()
        ]
        if status is not None:
            instances = [instance for instance in instances if instance.status == status]
        return instances

    def instance_count(self) -> int:
        """Number of stored instances."""
        return len(self._instances)

    # -- durability --------------------------------------------------------------------

    def snapshot(self) -> str:
        """Serialize the whole database to a JSON string."""
        return json.dumps(
            {
                "name": self.name,
                "types": [
                    {"name": name, "version": version, "definition": payload}
                    for (name, version), payload in sorted(self._types.items())
                ],
                "instances": sorted(self._instances.values(), key=lambda p: p["instance_id"]),
            }
        )

    @classmethod
    def restore(cls, snapshot: str) -> "WorkflowDatabase":
        """Rebuild a database from :meth:`snapshot` output."""
        try:
            payload = json.loads(snapshot)
            database = cls(payload["name"])
            for entry in payload["types"]:
                database._types[(entry["name"], entry["version"])] = entry["definition"]
            for entry in payload["instances"]:
                database._instances[entry["instance_id"]] = entry
        except (KeyError, TypeError, json.JSONDecodeError) as exc:
            raise PersistenceError(f"corrupt database snapshot: {exc}") from exc
        return database


def _version_sort_key(version: str) -> tuple[int, Any]:
    """Sort numeric versions numerically, others lexicographically."""
    try:
        return (1, int(version))
    except ValueError:
        return (0, version)


class ReplicatedDatabase(WorkflowDatabase):
    """Write-through replication across replica databases (Section 2.1's
    *workflow instance replication*: "any change in one workflow engine is
    automatically, consistently and immediately reflected in all the other
    workflow engine databases").
    """

    def __init__(self, name: str, replicas: list[WorkflowDatabase]):
        super().__init__(name)
        self.replicas = list(replicas)

    def store_type(self, workflow_type: WorkflowType) -> None:
        super().store_type(workflow_type)
        for replica in self.replicas:
            replica.store_type(workflow_type)

    def store_instance(self, instance: WorkflowInstance) -> None:
        super().store_instance(instance)
        for replica in self.replicas:
            replica.store_instance(instance)

    def delete_instance(self, instance_id: str) -> None:
        super().delete_instance(instance_id)
        for replica in self.replicas:
            if replica.has_instance(instance_id):
                replica.delete_instance(instance_id)


def apply_to_all(databases: list[WorkflowDatabase], action: Callable[[WorkflowDatabase], None]) -> None:
    """Apply ``action`` to every database (administration helper)."""
    for database in databases:
        action(database)
