"""Workflow types: steps, control flow, data flow, subworkflows.

A :class:`WorkflowType` is the static definition the paper's Section 2.1
describes: a directed acyclic graph of steps connected by
:class:`Transition` arcs (conditions for XOR branches, parallel fan-out via
multiple unconditioned arcs, AND/XOR joins), with instance **variables** as
the data-flow medium — activity inputs are expressions over variables,
activity outputs are written back to variables.

Step kinds:

* :class:`ActivityStep` — an elementary workflow step executing a named
  activity implementation;
* :class:`SubworkflowStep` — a workflow step that is a workflow in itself
  (the paper's subworkflow, with its strict "return control only when
  finished" semantics);
* :class:`RemoteSubworkflowStep` — a subworkflow executed on another
  engine (workflow instance *distribution*, Figure 5(b));
* :class:`LoopStep` — structured iteration over a body subworkflow
  (while/until), keeping the step graph itself acyclic.

Cycles in the transition graph are rejected at validation time; iteration
is expressed with :class:`LoopStep`.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import DefinitionError
from repro.workflow.expressions import Expression

__all__ = [
    "JOIN_AND",
    "JOIN_XOR",
    "ActivityStep",
    "SubworkflowStep",
    "RemoteSubworkflowStep",
    "LoopStep",
    "Transition",
    "WorkflowType",
    "WorkflowBuilder",
]

JOIN_AND = "AND"
JOIN_XOR = "XOR"


@dataclass
class _BaseStep:
    """Fields shared by every step kind."""

    step_id: str
    label: str = ""
    join: str = JOIN_AND
    tags: tuple[str, ...] = ()

    def _validate_base(self) -> None:
        if not self.step_id:
            raise DefinitionError("step_id must be non-empty")
        if self.join not in (JOIN_AND, JOIN_XOR):
            raise DefinitionError(
                f"step {self.step_id!r}: join must be AND or XOR, got {self.join!r}"
            )


@dataclass
class ActivityStep(_BaseStep):
    """An elementary step executing the activity named ``activity``.

    :param inputs: activity input name -> expression over instance variables.
    :param outputs: instance variable name -> activity output key.
    :param params: static configuration passed verbatim to the activity.
    """

    activity: str = ""
    inputs: dict[str, str] = field(default_factory=dict)
    outputs: dict[str, str] = field(default_factory=dict)
    params: dict[str, Any] = field(default_factory=dict)

    kind = "activity"

    def validate(self) -> None:
        self._validate_base()
        if not self.activity:
            raise DefinitionError(f"step {self.step_id!r}: activity name missing")
        for expression_text in self.inputs.values():
            Expression.shared(expression_text)


@dataclass
class SubworkflowStep(_BaseStep):
    """A step whose implementation is another workflow type.

    :param subworkflow: child workflow type name.
    :param version: child type version ("" = latest at instantiation,
        i.e. late binding; a pinned version is the paper's "fully resolved"
        alternative).
    :param inputs: child variable name -> expression over parent variables.
    :param outputs: parent variable name -> child variable name.
    """

    subworkflow: str = ""
    version: str = ""
    inputs: dict[str, str] = field(default_factory=dict)
    outputs: dict[str, str] = field(default_factory=dict)

    kind = "subworkflow"

    def validate(self) -> None:
        self._validate_base()
        if not self.subworkflow:
            raise DefinitionError(f"step {self.step_id!r}: subworkflow name missing")
        for expression_text in self.inputs.values():
            Expression.shared(expression_text)


@dataclass
class RemoteSubworkflowStep(_BaseStep):
    """A subworkflow executed by a *different* engine (Figure 5(b)).

    The master engine only needs the child's interface (inputs/outputs);
    the remote engine must hold the child's definition — exactly the
    knowledge split Section 2.1 describes.
    """

    subworkflow: str = ""
    engine: str = ""
    version: str = ""
    inputs: dict[str, str] = field(default_factory=dict)
    outputs: dict[str, str] = field(default_factory=dict)

    kind = "remote_subworkflow"

    def validate(self) -> None:
        self._validate_base()
        if not self.subworkflow:
            raise DefinitionError(f"step {self.step_id!r}: subworkflow name missing")
        if not self.engine:
            raise DefinitionError(f"step {self.step_id!r}: remote engine missing")
        for expression_text in self.inputs.values():
            Expression.shared(expression_text)


@dataclass
class LoopStep(_BaseStep):
    """Structured iteration over a ``body`` subworkflow.

    ``mode="while"`` evaluates ``condition`` *before* each iteration and
    runs the body while it holds; ``mode="until"`` runs the body first and
    repeats until the condition holds.  ``max_iterations`` is a mandatory
    runaway guard (endless loops are one of the change-management hazards
    Section 2.3 lists).
    """

    body: str = ""
    condition: str = "False"
    mode: str = "while"
    max_iterations: int = 100
    inputs: dict[str, str] = field(default_factory=dict)
    outputs: dict[str, str] = field(default_factory=dict)

    kind = "loop"

    def validate(self) -> None:
        self._validate_base()
        if not self.body:
            raise DefinitionError(f"step {self.step_id!r}: loop body missing")
        if self.mode not in ("while", "until"):
            raise DefinitionError(
                f"step {self.step_id!r}: mode must be 'while' or 'until'"
            )
        if self.max_iterations < 1:
            raise DefinitionError(
                f"step {self.step_id!r}: max_iterations must be >= 1"
            )
        Expression.shared(self.condition)
        for expression_text in self.inputs.values():
            Expression.shared(expression_text)


Step = ActivityStep | SubworkflowStep | RemoteSubworkflowStep | LoopStep

_STEP_CLASSES: dict[str, type] = {
    "activity": ActivityStep,
    "subworkflow": SubworkflowStep,
    "remote_subworkflow": RemoteSubworkflowStep,
    "loop": LoopStep,
}


@dataclass(frozen=True)
class Transition:
    """A control-flow arc from ``source`` to ``target``.

    ``condition`` is an expression over instance variables (``None`` means
    unconditionally true).  ``otherwise=True`` marks the default arc of an
    XOR split: it fires iff every conditioned sibling arc evaluated false.
    """

    source: str
    target: str
    condition: str | None = None
    otherwise: bool = False

    def __post_init__(self) -> None:
        if self.condition is not None and self.otherwise:
            raise DefinitionError(
                f"transition {self.source}->{self.target}: a condition and "
                "otherwise are mutually exclusive"
            )
        if self.condition is not None:
            Expression.shared(self.condition)


class WorkflowType:
    """A validated workflow definition.

    :param name: type name, unique within a workflow database.
    :param steps: the step list (ids unique).
    :param transitions: control-flow arcs between step ids.
    :param variables: instance variable defaults.
    :param version: definition version; engines resolve ("name", "version").
    :param owner: the enterprise that authored this type — the knowledge-
        exposure metric (Figure 7 experiment) counts foreign-owned types
        holding business rules.
    :param metadata: free-form annotations (e.g. ``{"private": True}``).
    """

    def __init__(
        self,
        name: str,
        steps: Iterable[Step],
        transitions: Iterable[Transition] = (),
        variables: dict[str, Any] | None = None,
        version: str = "1",
        owner: str = "",
        metadata: dict[str, Any] | None = None,
    ):
        if not name:
            raise DefinitionError("workflow type name must be non-empty")
        self.name = name
        self.version = version
        self.owner = owner
        self.steps: dict[str, Step] = {}
        for step in steps:
            step.validate()
            if step.step_id in self.steps:
                raise DefinitionError(
                    f"workflow {name!r}: duplicate step id {step.step_id!r}"
                )
            self.steps[step.step_id] = step
        if not self.steps:
            raise DefinitionError(f"workflow {name!r} has no steps")
        self.transitions: list[Transition] = list(transitions)
        self.variables: dict[str, Any] = dict(variables or {})
        self.metadata: dict[str, Any] = dict(metadata or {})
        self._incoming: dict[str, list[Transition]] = {sid: [] for sid in self.steps}
        self._outgoing: dict[str, list[Transition]] = {sid: [] for sid in self.steps}
        for transition in self.transitions:
            for end in (transition.source, transition.target):
                if end not in self.steps:
                    raise DefinitionError(
                        f"workflow {name!r}: transition references unknown step {end!r}"
                    )
            self._outgoing[transition.source].append(transition)
            self._incoming[transition.target].append(transition)
        self._validate_otherwise()
        self._validate_acyclic()

    # -- validation -------------------------------------------------------------

    def _validate_otherwise(self) -> None:
        for step_id, arcs in self._outgoing.items():
            otherwise_arcs = [arc for arc in arcs if arc.otherwise]
            conditioned = [arc for arc in arcs if arc.condition is not None]
            if len(otherwise_arcs) > 1:
                raise DefinitionError(
                    f"workflow {self.name!r}: step {step_id!r} has multiple "
                    "otherwise transitions"
                )
            if otherwise_arcs and not conditioned:
                raise DefinitionError(
                    f"workflow {self.name!r}: step {step_id!r} has an otherwise "
                    "transition but no conditioned siblings"
                )

    def _validate_acyclic(self) -> None:
        state: dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(step_id: str, stack: list[str]) -> None:
            marker = state.get(step_id)
            if marker == 1:
                return
            if marker == 0:
                cycle = " -> ".join([*stack, step_id])
                raise DefinitionError(
                    f"workflow {self.name!r} has a control-flow cycle: {cycle}; "
                    "use a LoopStep for iteration"
                )
            state[step_id] = 0
            for transition in self._outgoing[step_id]:
                visit(transition.target, [*stack, step_id])
            state[step_id] = 1

        for step_id in self.steps:
            visit(step_id, [])
        if not self.start_steps():
            raise DefinitionError(f"workflow {self.name!r} has no start step")

    # -- topology queries ----------------------------------------------------------

    def step(self, step_id: str) -> Step:
        """Return the step with ``step_id``."""
        try:
            return self.steps[step_id]
        except KeyError:
            raise DefinitionError(
                f"workflow {self.name!r} has no step {step_id!r}"
            ) from None

    def start_steps(self) -> list[Step]:
        """Steps with no incoming transitions (initial tokens)."""
        return [step for sid, step in self.steps.items() if not self._incoming[sid]]

    def incoming(self, step_id: str) -> list[Transition]:
        """Incoming transitions of ``step_id``."""
        return list(self._incoming[step_id])

    def outgoing(self, step_id: str) -> list[Transition]:
        """Outgoing transitions of ``step_id``."""
        return list(self._outgoing[step_id])

    # -- complexity measures (experiments F9/F10) ------------------------------------

    def step_count(self) -> int:
        """Number of steps."""
        return len(self.steps)

    def transition_count(self) -> int:
        """Number of control-flow arcs."""
        return len(self.transitions)

    def condition_count(self) -> int:
        """Number of conditioned arcs (XOR decision surface)."""
        return sum(1 for arc in self.transitions if arc.condition is not None)

    def steps_tagged(self, tag: str) -> list[Step]:
        """Steps annotated with ``tag`` (e.g. 'transformation', 'business-rule')."""
        return [step for step in self.steps.values() if tag in step.tags]

    # -- serialization (type migration, Figure 6) ------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-compatible definition for storage or migration."""
        steps = []
        for step in self.steps.values():
            entry: dict[str, Any] = {"kind": step.kind, "step_id": step.step_id,
                                     "label": step.label, "join": step.join,
                                     "tags": list(step.tags)}
            for attribute in ("activity", "subworkflow", "engine", "version",
                              "body", "condition", "mode", "max_iterations",
                              "inputs", "outputs", "params"):
                if hasattr(step, attribute):
                    entry[attribute] = _copy.deepcopy(getattr(step, attribute))
            steps.append(entry)
        return {
            "name": self.name,
            "version": self.version,
            "owner": self.owner,
            "steps": steps,
            "transitions": [
                {
                    "source": arc.source,
                    "target": arc.target,
                    "condition": arc.condition,
                    "otherwise": arc.otherwise,
                }
                for arc in self.transitions
            ],
            "variables": _copy.deepcopy(self.variables),
            "metadata": _copy.deepcopy(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "WorkflowType":
        """Rebuild a type serialized with :meth:`to_dict`."""
        steps: list[Step] = []
        for entry in payload["steps"]:
            entry = dict(entry)
            kind = entry.pop("kind")
            try:
                step_class = _STEP_CLASSES[kind]
            except KeyError:
                raise DefinitionError(f"unknown step kind {kind!r}") from None
            entry["tags"] = tuple(entry.get("tags", ()))
            steps.append(step_class(**entry))
        transitions = [Transition(**entry) for entry in payload["transitions"]]
        return cls(
            payload["name"],
            steps,
            transitions,
            variables=payload.get("variables"),
            version=payload.get("version", "1"),
            owner=payload.get("owner", ""),
            metadata=payload.get("metadata"),
        )

    def __repr__(self) -> str:
        return (
            f"WorkflowType({self.name!r} v{self.version}, "
            f"{self.step_count()} steps, {self.transition_count()} transitions)"
        )


class WorkflowBuilder:
    """Fluent construction of workflow types.

    >>> builder = WorkflowBuilder("demo")
    >>> _ = builder.activity("a", "noop")
    >>> _ = builder.activity("b", "noop")
    >>> _ = builder.link("a", "b")
    >>> builder.build().step_count()
    2
    """

    def __init__(self, name: str, version: str = "1", owner: str = ""):
        self.name = name
        self.version = version
        self.owner = owner
        self._steps: list[Step] = []
        self._transitions: list[Transition] = []
        self._variables: dict[str, Any] = {}
        self._metadata: dict[str, Any] = {}
        self._last_step: str | None = None

    def activity(
        self,
        step_id: str,
        activity: str,
        inputs: dict[str, str] | None = None,
        outputs: dict[str, str] | None = None,
        params: dict[str, Any] | None = None,
        join: str = JOIN_AND,
        tags: Iterable[str] = (),
        label: str = "",
        after: str | None = None,
        condition: str | None = None,
    ) -> "WorkflowBuilder":
        """Add an activity step; ``after`` chains from a previous step
        (default: the previously added step when ``after`` is ``"<prev>"``)."""
        step = ActivityStep(
            step_id=step_id,
            label=label or step_id,
            join=join,
            tags=tuple(tags),
            activity=activity,
            inputs=dict(inputs or {}),
            outputs=dict(outputs or {}),
            params=dict(params or {}),
        )
        self._add_step(step, after, condition)
        return self

    def subworkflow(
        self,
        step_id: str,
        subworkflow: str,
        inputs: dict[str, str] | None = None,
        outputs: dict[str, str] | None = None,
        version: str = "",
        join: str = JOIN_AND,
        tags: Iterable[str] = (),
        after: str | None = None,
        condition: str | None = None,
    ) -> "WorkflowBuilder":
        """Add a subworkflow step."""
        step = SubworkflowStep(
            step_id=step_id,
            label=step_id,
            join=join,
            tags=tuple(tags),
            subworkflow=subworkflow,
            version=version,
            inputs=dict(inputs or {}),
            outputs=dict(outputs or {}),
        )
        self._add_step(step, after, condition)
        return self

    def loop(
        self,
        step_id: str,
        body: str,
        condition: str,
        mode: str = "while",
        max_iterations: int = 100,
        inputs: dict[str, str] | None = None,
        outputs: dict[str, str] | None = None,
        after: str | None = None,
    ) -> "WorkflowBuilder":
        """Add a loop step."""
        step = LoopStep(
            step_id=step_id,
            label=step_id,
            body=body,
            condition=condition,
            mode=mode,
            max_iterations=max_iterations,
            inputs=dict(inputs or {}),
            outputs=dict(outputs or {}),
        )
        self._add_step(step, after, None)
        return self

    def _add_step(self, step: Step, after: str | None, condition: str | None) -> None:
        self._steps.append(step)
        if after == "<prev>":
            after = self._last_step
        if after is not None:
            self._transitions.append(Transition(after, step.step_id, condition))
        self._last_step = step.step_id

    def link(
        self,
        source: str,
        target: str,
        condition: str | None = None,
        otherwise: bool = False,
    ) -> "WorkflowBuilder":
        """Add an explicit transition."""
        self._transitions.append(Transition(source, target, condition, otherwise))
        return self

    def variable(self, name: str, default: Any = None) -> "WorkflowBuilder":
        """Declare an instance variable with a default."""
        self._variables[name] = default
        return self

    def meta(self, **entries: Any) -> "WorkflowBuilder":
        """Attach metadata entries."""
        self._metadata.update(entries)
        return self

    def build(self) -> WorkflowType:
        """Validate and return the workflow type."""
        return WorkflowType(
            self.name,
            self._steps,
            self._transitions,
            variables=self._variables,
            version=self.version,
            owner=self.owner,
            metadata=self._metadata,
        )
