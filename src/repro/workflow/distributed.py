"""Distributed workflow management (Section 2.1, Figures 5 and 6).

Three mechanisms, exactly as the paper defines them:

* **Workflow instance migration** (Figure 5(a)): an instance moves between
  engines — "stored in two different workflow engine databases at two
  different points in time".  :func:`migrate_instance` implements the
  automatic **type migration** protocol of Figure 6 (check whether the
  target has the type; send it if not; then migrate the instance) and
  reports the exchanges, so the coupling cost is measurable.

* **Workflow instance distribution** (Figure 5(b)): a subworkflow runs on a
  different engine while its parent waits — implemented by
  :class:`~repro.workflow.definitions.RemoteSubworkflowStep` plus the
  :class:`EngineDirectory` here.  Only the child's *interface* crosses the
  boundary; its definition lives solely on the remote engine.

* **Workflow instance replication**:
  :class:`~repro.workflow.database.ReplicatedDatabase` write-through (the
  paper notes this variant and sets it aside; so do we).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MigrationError
from repro.workflow.definitions import LoopStep, SubworkflowStep, WorkflowType
from repro.workflow.engine import WorkflowEngine
from repro.workflow.instance import (
    INSTANCE_MIGRATED,
    STEP_WAITING,
    WorkflowInstance,
)

__all__ = ["EngineDirectory", "MigrationReport", "migrate_instance", "type_closure"]


class EngineDirectory:
    """Name -> engine lookup for cross-engine operations.

    Inject it as the ``engine_directory`` service so
    :class:`RemoteSubworkflowStep` steps can reach their remote engines.
    """

    def __init__(self):
        self._engines: dict[str, WorkflowEngine] = {}

    def register(self, engine: WorkflowEngine) -> WorkflowEngine:
        """Add ``engine`` and wire the directory into its services."""
        if engine.name in self._engines:
            raise MigrationError(f"engine {engine.name!r} already registered")
        self._engines[engine.name] = engine
        engine.services.setdefault("engine_directory", self)
        return engine

    def get(self, name: str) -> WorkflowEngine:
        """Return the engine named ``name``."""
        try:
            return self._engines[name]
        except KeyError:
            raise MigrationError(f"no engine named {name!r} in directory") from None

    def names(self) -> list[str]:
        """All registered engine names."""
        return sorted(self._engines)


@dataclass
class MigrationReport:
    """What one migration cost — the coupling evidence for Section 2.3.

    :param type_checks: "does the target have this type?" round trips
        (step 1 in Figure 6).
    :param types_sent: workflow type definitions copied to the target
        (step 2) — each one is proprietary knowledge leaving its owner.
    :param instances_sent: instance snapshots moved (step 3); children of
        subworkflow steps migrate with their parents.
    :param wait_keys_moved: parked external-event keys re-registered on
        the target engine.
    """

    type_checks: int = 0
    types_sent: int = 0
    instances_sent: int = 0
    wait_keys_moved: int = 0
    migrated_types: list[str] = field(default_factory=list)

    @property
    def messages_exchanged(self) -> int:
        """Total inter-engine exchanges for this migration."""
        return self.type_checks + self.types_sent + self.instances_sent


def type_closure(engine: WorkflowEngine, name: str, version: str = "") -> list[WorkflowType]:
    """Return the type and every (sub)workflow type it references.

    A migrating instance needs its whole definition closure on the target
    (Section 2.1: the workflow type "must either be fully resolved ... or
    the parts of the definition have to be available ... as consistent
    copies").  Remote subworkflows are excluded — their definitions stay on
    their own engines by design.
    """
    closure: list[WorkflowType] = []
    seen: set[tuple[str, str]] = set()
    frontier = [(name, version)]
    while frontier:
        type_name, type_version = frontier.pop()
        workflow_type = engine.database.load_type(type_name, type_version)
        key = (workflow_type.name, workflow_type.version)
        if key in seen:
            continue
        seen.add(key)
        closure.append(workflow_type)
        for step in workflow_type.steps.values():
            if isinstance(step, SubworkflowStep):
                frontier.append((step.subworkflow, step.version))
            elif isinstance(step, LoopStep):
                frontier.append((step.body, ""))
    return closure


def migrate_instance(
    source: WorkflowEngine,
    target: WorkflowEngine,
    instance_id: str,
    report: MigrationReport | None = None,
) -> MigrationReport:
    """Move ``instance_id`` (and its running children) from ``source`` to
    ``target``, migrating missing workflow types first (Figure 6).

    The source keeps a tombstone snapshot in status ``migrated`` — the
    instance existed there at an earlier point in time, which is precisely
    the paper's definition of migration.
    """
    report = report or MigrationReport()
    instance = source.database.load_instance(instance_id)
    if instance.status == INSTANCE_MIGRATED:
        raise MigrationError(f"instance {instance_id} was already migrated away")

    # Step 1 + 2 of Figure 6: ensure the type closure exists on the target.
    for workflow_type in type_closure(source, instance.type_name, instance.type_version):
        report.type_checks += 1
        if not target.database.has_type(workflow_type.name, workflow_type.version):
            target.database.store_type(workflow_type)
            report.types_sent += 1
            report.migrated_types.append(
                f"{workflow_type.name}@{workflow_type.version}"
            )

    # Step 3: move the instance state (children first, so the parent's
    # child references resolve on the target).
    for state in instance.steps.values():
        if state.status == STEP_WAITING and state.child_instance_id:
            if source.database.has_instance(state.child_instance_id):
                migrate_instance(source, target, state.child_instance_id, report)

    _transfer(source, target, instance, report)
    return report


def _transfer(
    source: WorkflowEngine,
    target: WorkflowEngine,
    instance: WorkflowInstance,
    report: MigrationReport,
) -> None:
    snapshot = instance.to_dict()
    target.database.store_instance(WorkflowInstance.from_dict(snapshot))
    report.instances_sent += 1

    # Re-home parked external-event keys so completions reach the target.
    for state in instance.steps.values():
        if state.status == STEP_WAITING and state.wait_key:
            source._wait_index.pop(state.wait_key, None)
            target._wait_index[state.wait_key] = (instance.instance_id, state.step_id)
            report.wait_keys_moved += 1

    tombstone = WorkflowInstance.from_dict(snapshot)
    tombstone.status = INSTANCE_MIGRATED
    tombstone.record(source.clock.now(), "migrated", detail=f"to {target.name}")
    source.database.store_instance(tombstone)
