"""The workflow engine: the interpreter of Figure 4.

Execution follows the paper's engine/database contract: for every state
advance the engine **loads** the instance from the workflow database,
advances it by one step, and **stores** it back — the instance is never
resident in the engine between advances.  Control-flow semantics:

* a step becomes *ready* when all its incoming transition signals are
  known and its join is satisfied (AND: all true; XOR: any true);
* when a step completes, each outgoing transition's condition is evaluated
  against the instance variables and the resulting truth value propagates
  (dead-path elimination: a false arc eventually *skips* downstream steps,
  and skipped steps propagate false further);
* subworkflow steps instantiate their child type and park until the child
  finishes — the child "cannot return control without being finished"
  (Section 3.1), which is precisely why subworkflows cannot encapsulate a
  receive...send message exchange;
* loop steps re-run a body subworkflow while/until a condition holds;
* activities may park their step (``Waiting``) until an external event —
  an arriving message, an approval — completes it via
  :meth:`WorkflowEngine.complete_waiting_step`.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ActivityError, DefinitionError, InstanceError, WorkflowError
from repro.messaging.envelope import IdGenerator
from repro.runtime import (
    InstanceCancelled,
    InstanceCompleted,
    InstanceCreated,
    InstanceFailed,
    InstanceStarted,
    Kernel,
    Runtime,
    RuntimeEvent,
    StepCompleted,
    StepFailed,
    StepSkipped,
    StepStarted,
    StepWaiting,
)
from repro.sim import Clock
from repro.workflow.activities import ActivityContext, ActivityRegistry, Waiting, built_in_registry
from repro.workflow.database import WorkflowDatabase
from repro.workflow.definitions import (
    ActivityStep,
    JOIN_AND,
    LoopStep,
    RemoteSubworkflowStep,
    SubworkflowStep,
    Transition,
    WorkflowType,
)
from repro.workflow.expressions import Expression
from repro.workflow.instance import (
    INSTANCE_CANCELLED,
    INSTANCE_COMPLETED,
    INSTANCE_CREATED,
    INSTANCE_FAILED,
    INSTANCE_RUNNING,
    INSTANCE_WAITING,
    STEP_COMPLETED,
    STEP_FAILED,
    STEP_PENDING,
    STEP_READY,
    STEP_SKIPPED,
    STEP_WAITING,
    WorkflowInstance,
)

__all__ = ["WorkflowEngine"]


class WorkflowEngine:
    """A workflow engine bound to one workflow database.

    :param name: engine id (unique within an engine directory).
    :param database: the engine's workflow database (Figure 4).
    :param activities: activity implementations; defaults to the built-ins.
    :param clock: logical clock for timestamps (shared with the network
        scheduler in full-system runs).
    :param services: infrastructure injected into activity contexts.
    :param raise_on_failure: raise the underlying :class:`ActivityError`
        when a step fails (default); when False the instance is marked
        failed and execution returns normally (failure-injection tests).
    :param persistence: ``"per_step"`` (default) stores the instance after
        every advanced step — the paper's Figure 4 contract, maximally
        durable; ``"per_quiescence"`` stores only when the instance parks
        or terminates — the classic engine-implementation shortcut the
        paper alludes to ("sometimes the workflow instance carries the
        workflow type information with it avoiding repeated access"),
        faster but losing in-flight steps on a crash.  The ablation bench
        quantifies the trade.
    :param runtime: the runtime kernel this engine schedules on and emits
        lifecycle events to; engines in the same simulation share one
        kernel so all architectures produce a single event stream.  When
        omitted the engine gets a private :class:`~repro.runtime.Kernel`
        on its own clock.
    """

    PERSIST_PER_STEP = "per_step"
    PERSIST_PER_QUIESCENCE = "per_quiescence"

    def __init__(
        self,
        name: str,
        database: WorkflowDatabase | None = None,
        activities: ActivityRegistry | None = None,
        clock: Clock | None = None,
        services: dict[str, Any] | None = None,
        raise_on_failure: bool = True,
        persistence: str = PERSIST_PER_STEP,
        runtime: Runtime | None = None,
    ):
        if persistence not in (self.PERSIST_PER_STEP, self.PERSIST_PER_QUIESCENCE):
            raise WorkflowError(f"unknown persistence policy {persistence!r}")
        self.persistence = persistence
        self.name = name
        self.database = database or WorkflowDatabase(f"{name}-db")
        self.activities = activities or built_in_registry()
        if runtime is not None:
            self.runtime = runtime
            self.clock = clock or runtime.clock
        else:
            self.clock = clock or Clock()
            self.runtime = Kernel(clock=self.clock)
        self.services = dict(services or {})
        self.raise_on_failure = raise_on_failure
        self._ids = IdGenerator(f"WF-{name}")
        self._wait_index: dict[str, tuple[str, str]] = {}
        # Shard affinity: instance id -> partner key, captured at creation
        # so every advance of one partner's instance lands on one shard.
        self._affinity: dict[str, str] = {}
        # Children started on this engine for masters elsewhere:
        # child instance id -> (master engine, parent instance, parent step).
        self._remote_parents: dict[str, tuple["WorkflowEngine", str, str]] = {}
        self._expression_cache: dict[str, Expression] = {}

    @property
    def steps_executed(self) -> int:
        """Steps this engine executed (view over the kernel metrics)."""
        return self.runtime.metrics.count(StepStarted, source=self.name)

    @property
    def instances_completed(self) -> int:
        """Instances this engine completed (view over the kernel metrics)."""
        return self.runtime.metrics.count(InstanceCompleted, source=self.name)

    def _emit(self, event_cls: type[RuntimeEvent], **fields: Any) -> None:
        self.runtime.emit(event_cls, self.name, **fields)

    # ------------------------------------------------------------------ deploy

    def deploy(self, workflow_type: WorkflowType) -> None:
        """Store a workflow type in this engine's database."""
        self.database.store_type(workflow_type)

    def deploy_all(self, workflow_types: list[WorkflowType]) -> None:
        """Deploy several types."""
        for workflow_type in workflow_types:
            self.deploy(workflow_type)

    # ----------------------------------------------------------------- lifecycle

    def create_instance(
        self,
        type_name: str,
        version: str = "",
        variables: Mapping[str, Any] | None = None,
        parent_instance_id: str = "",
        parent_step_id: str = "",
    ) -> str:
        """Create (and persist) a new instance; returns its id."""
        workflow_type = self.database.load_type(type_name, version)
        merged = dict(workflow_type.variables)
        merged.update(variables or {})
        instance = WorkflowInstance(
            instance_id=self._ids.next(),
            type_name=workflow_type.name,
            type_version=workflow_type.version,
            step_ids=list(workflow_type.steps),
            variables=merged,
            parent_instance_id=parent_instance_id,
            parent_step_id=parent_step_id,
            created_at=self.clock.now(),
        )
        instance.record(self.clock.now(), "created")
        self.database.store_instance(instance)
        partner = merged.get("partner_id") or merged.get("source")
        if isinstance(partner, str) and partner:
            self._affinity[instance.instance_id] = partner
        self._emit(
            InstanceCreated,
            instance_id=instance.instance_id,
            type_name=workflow_type.name,
        )
        return instance.instance_id

    def start(self, instance_id: str) -> WorkflowInstance:
        """Mark the start steps ready and advance until quiescent."""
        instance = self.database.load_instance(instance_id)
        if instance.status != INSTANCE_CREATED:
            raise InstanceError(
                f"instance {instance_id} is {instance.status}; only created "
                "instances can be started"
            )
        workflow_type = self._type_of(instance)
        instance.status = INSTANCE_RUNNING
        for step in workflow_type.start_steps():
            instance.step_state(step.step_id).status = STEP_READY
        instance.record(self.clock.now(), "started")
        self.database.store_instance(instance)
        self._emit(
            InstanceStarted, instance_id=instance_id, type_name=instance.type_name
        )
        return self._advance(instance_id)

    def run(
        self,
        type_name: str,
        variables: Mapping[str, Any] | None = None,
        version: str = "",
    ) -> WorkflowInstance:
        """Create and start an instance in one call."""
        return self.start(self.create_instance(type_name, version, variables))

    def get_instance(self, instance_id: str) -> WorkflowInstance:
        """Load the current snapshot of an instance."""
        return self.database.load_instance(instance_id)

    # ------------------------------------------------------------ waiting steps

    def complete_waiting_step(
        self, wait_key: str, outputs: Mapping[str, Any] | None = None
    ) -> WorkflowInstance:
        """Complete the step parked under ``wait_key`` and advance."""
        try:
            instance_id, step_id = self._wait_index.pop(wait_key)
        except KeyError:
            raise InstanceError(f"no step waiting under key {wait_key!r}") from None
        instance = self.database.load_instance(instance_id)
        state = instance.step_state(step_id)
        if state.status != STEP_WAITING:
            raise InstanceError(
                f"step {step_id} of {instance_id} is {state.status}, not waiting"
            )
        workflow_type = self._type_of(instance)
        self._finish_step(instance, workflow_type, step_id, dict(outputs or {}))
        self.database.store_instance(instance)
        return self._advance(instance_id)

    def cancel_waiting_step(self, wait_key: str, reason: str) -> WorkflowInstance:
        """Fail the step parked under ``wait_key`` (e.g. a reply timeout).

        The instance transitions to ``failed`` and the reason is recorded;
        unlike activity failures this never raises — cancellation is a
        deliberate host decision, not a bug.
        """
        try:
            instance_id, step_id = self._wait_index.pop(wait_key)
        except KeyError:
            raise InstanceError(f"no step waiting under key {wait_key!r}") from None
        instance = self.database.load_instance(instance_id)
        self._fail_step(instance, step_id, WorkflowError(reason))
        self.database.store_instance(instance)
        return instance

    def waiting_keys(self) -> list[str]:
        """All wait keys with a parked step (diagnostics)."""
        return sorted(self._wait_index)

    # ----------------------------------------------------------- operations

    def cancel_instance(self, instance_id: str, reason: str = "") -> WorkflowInstance:
        """Cancel a non-terminal instance (and its running children).

        Parked wait keys are released; the instance transitions to
        ``cancelled`` with the reason recorded.
        """
        instance = self.database.load_instance(instance_id)
        if instance.is_terminal():
            raise InstanceError(
                f"instance {instance_id} is already {instance.status}"
            )
        for state in instance.steps.values():
            if state.status == STEP_WAITING:
                if state.wait_key:
                    self._wait_index.pop(state.wait_key, None)
                if state.child_instance_id and self.database.has_instance(
                    state.child_instance_id
                ):
                    child = self.database.load_instance(state.child_instance_id)
                    if not child.is_terminal():
                        self.cancel_instance(
                            state.child_instance_id, f"parent {instance_id} cancelled"
                        )
        instance.status = INSTANCE_CANCELLED
        instance.error = reason
        instance.record(self.clock.now(), "cancelled", detail=reason)
        self.database.store_instance(instance)
        self._emit(
            InstanceCancelled,
            instance_id=instance_id,
            type_name=instance.type_name,
            reason=reason,
        )
        return instance

    def retry_failed_step(self, instance_id: str) -> WorkflowInstance:
        """Re-run the failed step of a failed instance.

        The step returns to ``ready``, the instance to ``running``, and
        execution advances — the standard operator recovery move after the
        underlying fault (an unreachable back end, a missing rule) has been
        repaired.
        """
        instance = self.database.load_instance(instance_id)
        if instance.status != INSTANCE_FAILED:
            raise InstanceError(
                f"instance {instance_id} is {instance.status}, not failed"
            )
        failed = instance.steps_in_status(STEP_FAILED)
        if not failed:
            raise InstanceError(f"instance {instance_id} has no failed step")
        for state in failed:
            state.status = STEP_READY
            state.error = ""
        instance.status = INSTANCE_RUNNING
        instance.error = ""
        instance.record(self.clock.now(), "retrying", failed[0].step_id)
        self.database.store_instance(instance)
        return self._advance(instance_id)

    def recover(self) -> int:
        """Rebuild the in-memory wait index from the database.

        Call after an engine restart: the database survives (Figure 4),
        the engine process does not.  Returns the number of parked steps
        re-registered.
        """
        recovered = 0
        for instance in self.database.list_instances(INSTANCE_WAITING):
            for state in instance.steps.values():
                if state.status == STEP_WAITING and state.wait_key:
                    self._wait_index[state.wait_key] = (
                        instance.instance_id,
                        state.step_id,
                    )
                    recovered += 1
        return recovered

    def has_waiting(self, wait_key: str) -> bool:
        """True when a step is parked under ``wait_key``."""
        return wait_key in self._wait_index

    # -------------------------------------------------------------- the interpreter

    def _type_of(self, instance: WorkflowInstance) -> WorkflowType:
        return self.database.load_type(instance.type_name, instance.type_version)

    def _advance(self, instance_id: str) -> WorkflowInstance:
        """Queue an advance task on the runtime kernel and drain it.

        All instance advancement — API calls, child completions, message
        deliveries — goes through the kernel's run queue, so one external
        stimulus runs every affected instance to quiescence in a single
        batch.  When called from inside a running task (a parent starting
        a child synchronously) the nested drain consumes the shared queue,
        preserving the synchronous-subtree semantics of Section 3.1.

        The instance's partner affinity (captured at creation from the
        ``partner_id``/``source`` variables) rides along as the sharding
        key, so on a sharded runtime one partner's instances always
        advance on one shard; the single-queue kernel ignores it.
        """
        self.runtime.submit(
            lambda: self._advance_instance(instance_id),
            label=f"{self.name}:advance:{instance_id}",
            partner_key=self._affinity.get(instance_id),
        )
        self.runtime.drain()
        return self.database.load_instance(instance_id)

    def _advance_instance(self, instance_id: str) -> None:
        """Advance one instance until quiescent (runs as a kernel task).

        Under ``per_step`` persistence every iteration is a full
        load-advance-store cycle against the database (Figure 4); under
        ``per_quiescence`` the instance stays in the engine workspace and
        is stored only when it parks, terminates or fails.
        """
        per_step = self.persistence == self.PERSIST_PER_STEP
        instance = self.database.load_instance(instance_id)
        while True:
            if per_step:
                instance = self.database.load_instance(instance_id)
            if instance.is_terminal():
                return
            workflow_type = self._type_of(instance)
            ready = instance.steps_in_status(STEP_READY)
            if not ready:
                self._settle(instance, workflow_type)
                self.database.store_instance(instance)
                if instance.status == INSTANCE_COMPLETED:
                    self._notify_parent(instance)
                return
            state = ready[0]
            try:
                self._execute_step(instance, workflow_type, state.step_id)
            except ActivityError as exc:
                self._fail_step(instance, state.step_id, exc)
                self.database.store_instance(instance)
                if self.raise_on_failure:
                    raise
                return
            if per_step:
                self.database.store_instance(instance)

    def _settle(self, instance: WorkflowInstance, workflow_type: WorkflowType) -> None:
        """Decide the lifecycle status when no step is ready."""
        if instance.steps_in_status(STEP_FAILED):
            instance.status = INSTANCE_FAILED
        elif instance.all_steps_terminal():
            instance.status = INSTANCE_COMPLETED
            instance.completed_at = self.clock.now()
            instance.record(self.clock.now(), "completed")
            self._emit(
                InstanceCompleted,
                instance_id=instance.instance_id,
                type_name=instance.type_name,
                duration=instance.completed_at - instance.created_at,
            )
        elif instance.steps_in_status(STEP_WAITING):
            instance.status = INSTANCE_WAITING
        else:
            pending = [state.step_id for state in instance.steps_in_status(STEP_PENDING)]
            raise WorkflowError(
                f"instance {instance.instance_id} of {workflow_type.name!r} is "
                f"stuck: steps {pending} can never become ready "
                "(disconnected or contradictory control flow)"
            )

    # -- step execution --------------------------------------------------------

    def _execute_step(
        self, instance: WorkflowInstance, workflow_type: WorkflowType, step_id: str
    ) -> None:
        step = workflow_type.step(step_id)
        self._emit(StepStarted, instance_id=instance.instance_id, step_id=step_id)
        instance.record(self.clock.now(), "step_started", step_id)
        if isinstance(step, ActivityStep):
            self._execute_activity(instance, workflow_type, step)
        elif isinstance(step, RemoteSubworkflowStep):
            self._execute_remote_subworkflow(instance, step)
        elif isinstance(step, SubworkflowStep):
            self._execute_subworkflow(instance, step)
        elif isinstance(step, LoopStep):
            self._execute_loop(instance, step, first=True)
        else:  # pragma: no cover - definitions validates kinds
            raise DefinitionError(f"unknown step kind for {step_id!r}")

    def _execute_activity(
        self,
        instance: WorkflowInstance,
        workflow_type: WorkflowType,
        step: ActivityStep,
    ) -> None:
        inputs = {
            name: self._expression(text).evaluate(instance.variables)
            for name, text in step.inputs.items()
        }
        context = ActivityContext(
            instance_id=instance.instance_id,
            step_id=step.step_id,
            inputs=inputs,
            params=dict(step.params),
            variables=dict(instance.variables),
            services=self.services,
            now=self.clock.now(),
            engine_name=self.name,
        )
        result = self.activities.invoke(step.activity, context)
        if isinstance(result, Waiting):
            wait_key = result.wait_key or context.default_wait_key()
            if wait_key in self._wait_index:
                raise ActivityError(
                    f"wait key {wait_key!r} already in use by "
                    f"{self._wait_index[wait_key]}"
                )
            state = instance.step_state(step.step_id)
            state.status = STEP_WAITING
            state.wait_key = wait_key
            self._wait_index[wait_key] = (instance.instance_id, step.step_id)
            instance.record(self.clock.now(), "step_waiting", step.step_id, wait_key)
            self._emit(
                StepWaiting,
                instance_id=instance.instance_id,
                step_id=step.step_id,
                wait_key=wait_key,
            )
            return
        self._finish_step(instance, workflow_type, step.step_id, dict(result))

    def _execute_subworkflow(
        self, instance: WorkflowInstance, step: SubworkflowStep
    ) -> None:
        child_variables = {
            name: self._expression(text).evaluate(instance.variables)
            for name, text in step.inputs.items()
        }
        child_id = self.create_instance(
            step.subworkflow,
            step.version,
            child_variables,
            parent_instance_id=instance.instance_id,
            parent_step_id=step.step_id,
        )
        # Children advance on the parent's shard unless they carry their
        # own partner variables.
        if instance.instance_id in self._affinity:
            self._affinity.setdefault(
                child_id, self._affinity[instance.instance_id]
            )
        state = instance.step_state(step.step_id)
        state.status = STEP_WAITING
        state.child_instance_id = child_id
        instance.record(self.clock.now(), "subworkflow_started", step.step_id, child_id)
        # Persist the parent before the child runs: the child may complete
        # synchronously and its completion hook reloads the parent.
        self.database.store_instance(instance)
        self.start(child_id)
        # Reflect any parent progress made by the completion hook.
        refreshed = self.database.load_instance(instance.instance_id)
        instance.steps = refreshed.steps
        instance.signals = refreshed.signals
        instance.variables = refreshed.variables
        instance.history = refreshed.history
        instance.status = refreshed.status

    def _execute_remote_subworkflow(
        self, instance: WorkflowInstance, step: RemoteSubworkflowStep
    ) -> None:
        directory = self.services.get("engine_directory")
        if directory is None:
            raise ActivityError(
                f"step {step.step_id!r} needs the 'engine_directory' service "
                "for remote subworkflow execution"
            )
        remote = directory.get(step.engine)
        child_variables = {
            name: self._expression(text).evaluate(instance.variables)
            for name, text in step.inputs.items()
        }
        state = instance.step_state(step.step_id)
        state.status = STEP_WAITING
        self.database.store_instance(instance)
        child_id = remote.create_instance(step.subworkflow, step.version, child_variables)
        if instance.instance_id in self._affinity:
            remote._affinity.setdefault(
                child_id, self._affinity[instance.instance_id]
            )
        state.child_instance_id = child_id
        instance.record(
            self.clock.now(), "remote_subworkflow_started", step.step_id,
            f"{step.engine}:{child_id}",
        )
        self.database.store_instance(instance)
        remote._remote_parents[child_id] = (self, instance.instance_id, step.step_id)
        remote.start(child_id)
        refreshed = self.database.load_instance(instance.instance_id)
        instance.steps = refreshed.steps
        instance.signals = refreshed.signals
        instance.variables = refreshed.variables
        instance.history = refreshed.history
        instance.status = refreshed.status

    def _execute_loop(
        self, instance: WorkflowInstance, step: LoopStep, first: bool
    ) -> None:
        state = instance.step_state(step.step_id)
        if step.mode == "while" and not self._loop_condition(instance, step):
            self._finish_step(instance, self._type_of(instance), step.step_id, {})
            return
        if state.iterations >= step.max_iterations:
            raise ActivityError(
                f"loop {step.step_id!r} exceeded max_iterations="
                f"{step.max_iterations}"
            )
        child_variables = {
            name: self._expression(text).evaluate(instance.variables)
            for name, text in step.inputs.items()
        }
        child_id = self.create_instance(
            step.body,
            variables=child_variables,
            parent_instance_id=instance.instance_id,
            parent_step_id=step.step_id,
        )
        state.status = STEP_WAITING
        state.child_instance_id = child_id
        instance.record(
            self.clock.now(), "loop_iteration_started", step.step_id,
            f"iteration {state.iterations + 1}",
        )
        self.database.store_instance(instance)
        self.start(child_id)
        refreshed = self.database.load_instance(instance.instance_id)
        instance.steps = refreshed.steps
        instance.signals = refreshed.signals
        instance.variables = refreshed.variables
        instance.history = refreshed.history
        instance.status = refreshed.status

    def _loop_condition(self, instance: WorkflowInstance, step: LoopStep) -> bool:
        return bool(self._condition(step.condition)(instance.variables))

    # -- child completion -----------------------------------------------------------

    def _notify_parent(self, child: WorkflowInstance) -> None:
        """Route a completed child's outputs to its parent step."""
        remote = self._remote_parents.pop(child.instance_id, None)
        if remote is not None:
            master_engine, parent_instance_id, parent_step_id = remote
            master_engine._on_child_completed(parent_instance_id, parent_step_id, child)
            return
        if child.parent_instance_id:
            self._on_child_completed(
                child.parent_instance_id, child.parent_step_id, child
            )

    def _on_child_completed(
        self, parent_instance_id: str, parent_step_id: str, child: WorkflowInstance
    ) -> None:
        parent = self.database.load_instance(parent_instance_id)
        workflow_type = self._type_of(parent)
        step = workflow_type.step(parent_step_id)
        state = parent.step_state(parent_step_id)
        if state.status != STEP_WAITING or state.child_instance_id != child.instance_id:
            raise InstanceError(
                f"child {child.instance_id} completed but parent step "
                f"{parent_step_id} of {parent_instance_id} is not waiting on it"
            )
        outputs = {
            parent_variable: child.variables.get(child_variable)
            for parent_variable, child_variable in step.outputs.items()
        }
        if isinstance(step, LoopStep):
            self._continue_loop(parent, workflow_type, step, outputs)
        else:
            self._finish_step(parent, workflow_type, parent_step_id, outputs)
        self.database.store_instance(parent)
        self._advance(parent_instance_id)

    def _continue_loop(
        self,
        parent: WorkflowInstance,
        workflow_type: WorkflowType,
        step: LoopStep,
        outputs: dict[str, Any],
    ) -> None:
        state = parent.step_state(step.step_id)
        state.iterations += 1
        state.child_instance_id = ""
        parent.variables.update(outputs)
        condition = self._loop_condition(parent, step)
        repeat = condition if step.mode == "while" else not condition
        if repeat:
            self._execute_loop(parent, step, first=False)
        else:
            self._finish_step(parent, workflow_type, step.step_id, {})

    # -- completion & propagation -------------------------------------------------------

    def _finish_step(
        self,
        instance: WorkflowInstance,
        workflow_type: WorkflowType,
        step_id: str,
        outputs: dict[str, Any],
    ) -> None:
        step = workflow_type.step(step_id)
        state = instance.step_state(step_id)
        state.status = STEP_COMPLETED
        state.outputs = outputs
        state.wait_key = ""
        if isinstance(step, ActivityStep):
            for variable, output_key in step.outputs.items():
                if output_key not in outputs:
                    raise ActivityError(
                        f"step {step_id!r} promised output {output_key!r} "
                        f"but the activity returned {sorted(outputs)}"
                    )
                instance.variables[variable] = outputs[output_key]
        else:
            instance.variables.update(outputs)
        instance.record(self.clock.now(), "step_completed", step_id)
        self._emit(StepCompleted, instance_id=instance.instance_id, step_id=step_id)
        self._propagate(instance, workflow_type, step_id, completed=True)

    def _fail_step(
        self, instance: WorkflowInstance, step_id: str, error: Exception
    ) -> None:
        state = instance.step_state(step_id)
        state.status = STEP_FAILED
        state.error = str(error)
        instance.status = INSTANCE_FAILED
        instance.error = str(error)
        instance.record(self.clock.now(), "step_failed", step_id, str(error))
        self._emit(
            StepFailed,
            instance_id=instance.instance_id,
            step_id=step_id,
            error=str(error),
        )
        self._emit(
            InstanceFailed,
            instance_id=instance.instance_id,
            type_name=instance.type_name,
            error=str(error),
        )

    def _propagate(
        self,
        instance: WorkflowInstance,
        workflow_type: WorkflowType,
        step_id: str,
        completed: bool,
    ) -> None:
        """Evaluate outgoing arcs and wake/skip downstream steps."""
        arcs = workflow_type.outgoing(step_id)
        values = self._arc_values(instance, arcs, completed)
        for arc, value in values:
            instance.set_signal(arc.source, arc.target, value)
        for arc, _ in values:
            self._maybe_ready(instance, workflow_type, arc.target)

    def _arc_values(
        self,
        instance: WorkflowInstance,
        arcs: list[Transition],
        completed: bool,
    ) -> list[tuple[Transition, bool]]:
        if not completed:
            return [(arc, False) for arc in arcs]
        values: list[tuple[Transition, bool]] = []
        any_condition_true = False
        for arc in arcs:
            if arc.condition is None and not arc.otherwise:
                values.append((arc, True))
            elif arc.condition is not None:
                truth = bool(self._condition(arc.condition)(instance.variables))
                any_condition_true = any_condition_true or truth
                values.append((arc, truth))
        for arc in arcs:
            if arc.otherwise:
                values.append((arc, not any_condition_true))
        return values

    def _maybe_ready(
        self, instance: WorkflowInstance, workflow_type: WorkflowType, step_id: str
    ) -> None:
        state = instance.step_state(step_id)
        if state.status != STEP_PENDING:
            return
        incoming = workflow_type.incoming(step_id)
        signals = [instance.signal(arc.source, arc.target) for arc in incoming]
        if any(signal is None for signal in signals):
            return
        step = workflow_type.step(step_id)
        if step.join == JOIN_AND:
            fire = all(signals)
        else:  # XOR
            fire = any(signals)
        if fire:
            state.status = STEP_READY
        else:
            state.status = STEP_SKIPPED
            instance.record(self.clock.now(), "step_skipped", step_id)
            self._emit(StepSkipped, instance_id=instance.instance_id, step_id=step_id)
            self._propagate(instance, workflow_type, step_id, completed=False)

    # -- helpers ---------------------------------------------------------------------

    def _expression(self, text: str) -> Expression:
        expression = self._expression_cache.get(text)
        if expression is None:
            # Expression.shared: definitions already validated (and parsed)
            # the same text at deployment, so reuse that instance.
            expression = Expression.shared(text)
            self._expression_cache[text] = expression
        return expression

    def _condition(self, text: str):
        """The compiled ``variables -> value`` callable for a condition.

        Conditions are evaluated once per transition per advanced step —
        the engine's hottest expression site — so they run through
        :meth:`Expression.compile`'s closure tree, cached per text.
        """
        return self._expression(text).compile()
