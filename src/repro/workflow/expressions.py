"""Safe condition/data expression language for workflow types.

Transition conditions like the paper's ``PO.amount > 10000`` (Figure 1) or
``PO.amount >= 55000 and source == 'TP1'`` (Figure 9) are written in a
restricted Python-expression subset, compiled once per workflow type and
evaluated against the instance's variables.

Supported grammar: literals, variable names, dotted attribute access into
dicts and :class:`~repro.documents.model.Document` values, subscripts
(constant int/str keys or any supported sub-expression, e.g. ``items[i]``;
slices are rejected), arithmetic (``+ - * / % //``), comparisons (including
chained), ``and/or/not``, membership tests, and the ``len``/``min``/``max``/
``abs``/``round`` builtins.  Everything else — calls, lambdas,
comprehensions, attribute access on arbitrary objects — is rejected at
**compile** time, so a workflow type containing a malicious or malformed
condition fails at deployment, not mid-instance.

Two evaluation paths exist and must stay behaviourally identical (the
equivalence is property-tested):

* :meth:`Expression.evaluate` — the reference interpreter, re-dispatching
  on AST node types per evaluation;
* :meth:`Expression.compile` — lowers the validated AST once into a closure
  tree (one Python callable per node) and returns a ``variables -> value``
  callable.  This is the per-message hot path the workflow engine and rule
  engine use.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Mapping

from repro.documents.model import Document, DocumentPath
from repro.errors import DocumentPathError, ExpressionError

__all__ = ["Expression"]

_MARKER = object()

# Precompiled fallback paths for the paper's ``PO.amount`` convention.
_AMOUNT_PATHS = (
    DocumentPath("summary.total_amount"),
    DocumentPath("summary.accepted_amount"),
)

_ALLOWED_FUNCTIONS: dict[str, Any] = {
    "len": len,
    "min": min,
    "max": max,
    "abs": abs,
    "round": round,
}

_BIN_OPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.Div: lambda a, b: a / b,
    ast.Mod: lambda a, b: a % b,
    ast.FloorDiv: lambda a, b: a // b,
}

_COMPARE_OPS = {
    ast.Eq: lambda a, b: a == b,
    ast.NotEq: lambda a, b: a != b,
    ast.Lt: lambda a, b: a < b,
    ast.LtE: lambda a, b: a <= b,
    ast.Gt: lambda a, b: a > b,
    ast.GtE: lambda a, b: a >= b,
    ast.In: lambda a, b: a in b,
    ast.NotIn: lambda a, b: a not in b,
    ast.Is: lambda a, b: a is b,
    ast.IsNot: lambda a, b: a is not b,
}


# Cache behind Expression.shared(); cleared wholesale at the limit rather
# than LRU-evicted — model builds re-prime it in one pass.
_SHARED: dict[str, "Expression"] = {}
_SHARED_LIMIT = 4096


class Expression:
    """A compiled, reusable expression.

    >>> Expression("PO.amount > 10000").evaluate({"PO": {"amount": 20000}})
    True
    """

    __slots__ = ("text", "_tree", "_compiled")

    def __init__(self, text: str):
        if not isinstance(text, str) or not text.strip():
            raise ExpressionError(
                f"empty expression: {text!r}",
                expression=text if isinstance(text, str) else "",
            )
        self.text = text
        try:
            tree = ast.parse(text, mode="eval")
        except SyntaxError as exc:
            raise ExpressionError(
                f"syntax error in {text!r}: {exc.msg}", expression=text
            ) from None
        self._check(tree.body)
        self._tree = tree.body
        self._compiled: Callable[[Mapping[str, Any]], Any] | None = None

    @classmethod
    def shared(cls, text: str) -> "Expression":
        """A process-wide shared instance for ``text`` (bounded cache).

        Expressions are immutable after construction, so callers that
        repeatedly build the same source — definition validation on every
        model build, rule engines, generated naive topologies — can share
        one parsed/compiled instance instead of re-parsing.
        """
        expression = _SHARED.get(text)
        if expression is None:
            if len(_SHARED) >= _SHARED_LIMIT:
                _SHARED.clear()  # generated sweeps can produce unbounded text
            expression = _SHARED[text] = cls(text)
        return expression

    # -- compile-time whitelist ------------------------------------------------

    def _check(self, node: ast.AST) -> None:
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, (int, float, str, bool, type(None))):
                raise ExpressionError(
                    f"{self.text!r}: unsupported literal {node.value!r}",
                    expression=self.text,
                )
            return
        if isinstance(node, ast.Name):
            return
        if isinstance(node, ast.Attribute):
            self._check(node.value)
            return
        if isinstance(node, ast.Subscript):
            self._check(node.value)
            if isinstance(node.slice, ast.Slice):
                raise ExpressionError(
                    f"{self.text!r}: slice subscripts are not allowed",
                    expression=self.text,
                )
            if isinstance(node.slice, ast.Constant):
                if not isinstance(node.slice.value, (int, str)):
                    raise ExpressionError(
                        f"{self.text!r}: only int/str constant subscripts allowed",
                        expression=self.text,
                    )
                return
            # Non-constant subscripts (``items[i]``, ``row[col]``) are any
            # supported sub-expression, evaluated at runtime.
            self._check(node.slice)
            return
        if isinstance(node, ast.UnaryOp):
            if not isinstance(node.op, (ast.Not, ast.USub, ast.UAdd)):
                raise ExpressionError(
                    f"{self.text!r}: unsupported unary operator",
                    expression=self.text,
                )
            self._check(node.operand)
            return
        if isinstance(node, ast.BinOp):
            if type(node.op) not in _BIN_OPS:
                raise ExpressionError(
                    f"{self.text!r}: unsupported binary operator",
                    expression=self.text,
                )
            self._check(node.left)
            self._check(node.right)
            return
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._check(value)
            return
        if isinstance(node, ast.Compare):
            self._check(node.left)
            for op, comparator in zip(node.ops, node.comparators):
                if type(op) not in _COMPARE_OPS:
                    raise ExpressionError(
                        f"{self.text!r}: unsupported comparison",
                        expression=self.text,
                    )
                self._check(comparator)
            return
        if isinstance(node, ast.Call):
            if (
                not isinstance(node.func, ast.Name)
                or node.func.id not in _ALLOWED_FUNCTIONS
                or node.keywords
            ):
                raise ExpressionError(
                    f"{self.text!r}: only {sorted(_ALLOWED_FUNCTIONS)} may be called",
                    expression=self.text,
                )
            for argument in node.args:
                self._check(argument)
            return
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self._check(element)
            return
        raise ExpressionError(
            f"{self.text!r}: construct {type(node).__name__} not allowed",
            expression=self.text,
        )

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, variables: Mapping[str, Any]) -> Any:
        """Evaluate against ``variables``; raises :class:`ExpressionError`."""
        try:
            return self._eval(self._tree, variables)
        except ExpressionError:
            raise
        except Exception as exc:
            raise ExpressionError(
                f"evaluating {self.text!r}: {exc!r}", expression=self.text
            ) from exc

    def evaluate_bool(self, variables: Mapping[str, Any]) -> bool:
        """Evaluate as a condition (result coerced with ``bool``)."""
        return bool(self.evaluate(variables))

    # -- compiled evaluation -------------------------------------------------------

    def compile(self) -> Callable[[Mapping[str, Any]], Any]:
        """Lower the AST into a closure tree and return ``variables -> value``.

        The closure tree is built once (per :class:`Expression`) and cached;
        evaluating it performs no AST dispatch, only direct Python calls.
        The compiled callable raises exactly the :class:`ExpressionError`\\ s
        the interpreted :meth:`evaluate` path raises — the two paths are
        interchangeable and property-tested as such.
        """
        compiled = self._compiled
        if compiled is None:
            program = self._lower(self._tree)
            text = self.text

            def run(variables: Mapping[str, Any]) -> Any:
                try:
                    return program(variables)
                except ExpressionError:
                    raise
                except Exception as exc:
                    raise ExpressionError(
                        f"evaluating {text!r}: {exc!r}", expression=text
                    ) from exc

            self._compiled = compiled = run
        return compiled

    def _lower(self, node: ast.AST) -> Callable[[Mapping[str, Any]], Any]:
        """Build the closure for one AST node (called once per node)."""
        text = self.text
        if isinstance(node, ast.Constant):
            value = node.value
            return lambda variables: value
        if isinstance(node, ast.Name):
            name = node.id

            def load_name(variables: Mapping[str, Any]) -> Any:
                try:
                    return variables[name]
                except KeyError:
                    raise ExpressionError(
                        f"{text!r}: unknown variable {name!r}", expression=text
                    ) from None

            return load_name
        if isinstance(node, ast.Attribute):
            inner = self._lower(node.value)
            accessor = self._make_accessor(node.attr)
            return lambda variables: accessor(inner(variables))
        if isinstance(node, ast.Subscript):
            inner = self._lower(node.value)
            if isinstance(node.slice, ast.Constant):
                accessor = self._make_accessor(node.slice.value)
                return lambda variables: accessor(inner(variables))
            access = self._access
            key_fn = self._lower(node.slice)
            return lambda variables: access(inner(variables), key_fn(variables))
        if isinstance(node, ast.UnaryOp):
            operand = self._lower(node.operand)
            if isinstance(node.op, ast.Not):
                return lambda variables: not operand(variables)
            if isinstance(node.op, ast.USub):
                return lambda variables: -operand(variables)
            return lambda variables: +operand(variables)
        if isinstance(node, ast.BinOp):
            operator = _BIN_OPS[type(node.op)]
            if isinstance(node.right, ast.Constant):
                left = self._lower(node.left)
                right_value = node.right.value
                return lambda variables: operator(left(variables), right_value)
            if isinstance(node.left, ast.Constant):
                left_value = node.left.value
                right = self._lower(node.right)
                return lambda variables: operator(left_value, right(variables))
            left = self._lower(node.left)
            right = self._lower(node.right)
            return lambda variables: operator(left(variables), right(variables))
        if isinstance(node, ast.BoolOp):
            parts = tuple(self._lower(value) for value in node.values)
            if isinstance(node.op, ast.And):

                def all_of(variables: Mapping[str, Any]) -> Any:
                    result: Any = True
                    for part in parts:
                        result = part(variables)
                        if not result:
                            return result
                    return result

                return all_of

            def any_of(variables: Mapping[str, Any]) -> Any:
                result: Any = False
                for part in parts:
                    result = part(variables)
                    if result:
                        return result
                return result

            return any_of
        if isinstance(node, ast.Compare):
            first = self._lower(node.left)
            pairs = tuple(
                (_COMPARE_OPS[type(op)], self._lower(comparator))
                for op, comparator in zip(node.ops, node.comparators)
            )
            if len(pairs) == 1:
                operator, second = pairs[0]
                if isinstance(node.comparators[0], ast.Constant):
                    constant = node.comparators[0].value
                    return lambda variables: bool(operator(first(variables), constant))
                return lambda variables: bool(
                    operator(first(variables), second(variables))
                )

            def chain(variables: Mapping[str, Any]) -> bool:
                left_value = first(variables)
                for operator, comparator in pairs:
                    right_value = comparator(variables)
                    if not operator(left_value, right_value):
                        return False
                    left_value = right_value
                return True

            return chain
        if isinstance(node, ast.Call):
            function = _ALLOWED_FUNCTIONS[node.func.id]  # type: ignore[attr-defined]
            arguments = tuple(self._lower(argument) for argument in node.args)
            return lambda variables: function(
                *(argument(variables) for argument in arguments)
            )
        if isinstance(node, (ast.Tuple, ast.List)):
            elements = tuple(self._lower(element) for element in node.elts)
            if isinstance(node, ast.Tuple):
                return lambda variables: tuple(
                    element(variables) for element in elements
                )
            return lambda variables: [element(variables) for element in elements]
        raise ExpressionError(  # pragma: no cover - compile check prevents this
            f"{self.text!r}: construct {type(node).__name__} not allowed",
            expression=self.text,
        )

    def _make_accessor(self, key: Any) -> Callable[[Any], Any]:
        """Build a specialized accessor for a key known at compile time.

        For string keys the document paths (``key``, ``header.key`` and the
        ``amount`` convention) are pre-compiled, so evaluating against a
        :class:`Document` performs no path parsing.  Semantics — including
        every error message — match :meth:`_access` exactly; anything not
        fast-pathed delegates to it.
        """
        text = self.text
        access = self._access
        if not isinstance(key, str):
            return lambda value: access(value, key)
        try:
            direct = DocumentPath(key)
            header = DocumentPath(f"header.{key}")
        except DocumentPathError:
            # Not a valid path segment (odd constant string subscript):
            # the generic accessor reproduces the interpreted behaviour.
            return lambda value: access(value, key)
        amount_paths = _AMOUNT_PATHS if key == "amount" else None

        def access_str(value: Any) -> Any:
            if isinstance(value, Document):
                if amount_paths is not None:
                    for candidate in amount_paths:
                        found = value.get(candidate, default=_MARKER)
                        if found is not _MARKER:
                            return found
                found = value.get(direct, default=_MARKER)
                if found is not _MARKER:
                    return found
                found = value.get(header, default=_MARKER)
                if found is not _MARKER:
                    return found
                raise ExpressionError(
                    f"{text!r}: document has no field {key!r}",
                    expression=text,
                )
            if isinstance(value, Mapping):
                if key in value:
                    return value[key]
                raise ExpressionError(
                    f"{text!r}: no key {key!r}", expression=text
                )
            return access(value, key)

        return access_str

    def _eval(self, node: ast.AST, variables: Mapping[str, Any]) -> Any:
        if isinstance(node, ast.Constant):
            return node.value
        if isinstance(node, ast.Name):
            if node.id not in variables:
                raise ExpressionError(
                    f"{self.text!r}: unknown variable {node.id!r}",
                    expression=self.text,
                )
            return variables[node.id]
        if isinstance(node, ast.Attribute):
            value = self._eval(node.value, variables)
            return self._access(value, node.attr)
        if isinstance(node, ast.Subscript):
            value = self._eval(node.value, variables)
            if isinstance(node.slice, ast.Constant):
                key = node.slice.value
            else:
                key = self._eval(node.slice, variables)
            return self._access(value, key)
        if isinstance(node, ast.UnaryOp):
            operand = self._eval(node.operand, variables)
            if isinstance(node.op, ast.Not):
                return not operand
            if isinstance(node.op, ast.USub):
                return -operand
            return +operand
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, variables)
            right = self._eval(node.right, variables)
            return _BIN_OPS[type(node.op)](left, right)
        if isinstance(node, ast.BoolOp):
            if isinstance(node.op, ast.And):
                result: Any = True
                for value in node.values:
                    result = self._eval(value, variables)
                    if not result:
                        return result
                return result
            for value in node.values:
                result = self._eval(value, variables)
                if result:
                    return result
            return result
        if isinstance(node, ast.Compare):
            left = self._eval(node.left, variables)
            for op, comparator in zip(node.ops, node.comparators):
                right = self._eval(comparator, variables)
                if not _COMPARE_OPS[type(op)](left, right):
                    return False
                left = right
            return True
        if isinstance(node, ast.Call):
            function = _ALLOWED_FUNCTIONS[node.func.id]  # type: ignore[attr-defined]
            return function(*(self._eval(argument, variables) for argument in node.args))
        if isinstance(node, (ast.Tuple, ast.List)):
            values = [self._eval(element, variables) for element in node.elts]
            return tuple(values) if isinstance(node, ast.Tuple) else values
        raise ExpressionError(
            f"{self.text!r}: construct {type(node).__name__} not allowed",
            expression=self.text,
        )  # pragma: no cover - compile check prevents this

    def _access(self, value: Any, key: Any) -> Any:
        """Resolve attribute/subscript access into containers and documents.

        The paper writes ``PO.amount``; when ``PO`` is a normalized
        purchase-order document, ``amount`` resolves to the computed
        ``summary.total_amount``.
        """
        if isinstance(value, Document):
            if key == "amount":
                for candidate in ("summary.total_amount", "summary.accepted_amount"):
                    if value.has(candidate):
                        return value.get(candidate)
            if isinstance(key, str) and value.has(key):
                return value.get(key)
            if isinstance(key, str) and value.has(f"header.{key}"):
                return value.get(f"header.{key}")
            raise ExpressionError(
                f"{self.text!r}: document has no field {key!r}",
                expression=self.text,
            )
        if isinstance(value, Mapping):
            if key in value:
                return value[key]
            raise ExpressionError(
                f"{self.text!r}: no key {key!r}", expression=self.text
            )
        if isinstance(value, (list, tuple)) and isinstance(key, int):
            try:
                return value[key]
            except IndexError:
                raise ExpressionError(
                    f"{self.text!r}: index {key} out of range",
                    expression=self.text,
                ) from None
        raise ExpressionError(
            f"{self.text!r}: cannot access {key!r} on {type(value).__name__}",
            expression=self.text,
        )

    def variables_used(self) -> set[str]:
        """Return the top-level variable names this expression reads."""
        return {
            node.id
            for node in ast.walk(self._tree)
            if isinstance(node, ast.Name) and node.id not in _ALLOWED_FUNCTIONS
        }

    # -- static analysis (repro.verify) -------------------------------------------

    def names(self) -> set[str]:
        """Referenced variable names (the :mod:`repro.verify` spelling of
        :meth:`variables_used`)."""
        return self.variables_used()

    def paths(self) -> set[str]:
        """Dotted document paths referenced by this expression.

        ``PO.amount > 10000 and PO.header.currency == 'USD'`` yields
        ``{"PO.amount", "PO.header.currency"}``.  Only maximal access
        chains rooted at a variable are returned; constant string
        subscripts count as path segments, constant int subscripts as
        ``[i]`` list indexes.
        """
        found: set[str] = set()
        self._collect_paths(self._tree, found)
        return found

    def _collect_paths(self, node: ast.AST, found: set[str]) -> None:
        if isinstance(node, (ast.Attribute, ast.Subscript)):
            dotted = self._dotted(node)
            if dotted is not None:
                found.add(dotted)
                return
        for child in ast.iter_child_nodes(node):
            self._collect_paths(child, found)

    def _dotted(self, node: ast.AST) -> str | None:
        """Render an access chain as a dotted path, or ``None`` when the
        chain does not bottom out at a plain variable name."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            base = self._dotted(node.value)
            return None if base is None else f"{base}.{node.attr}"
        if isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Constant):
            base = self._dotted(node.value)
            if base is None:
                return None
            key = node.slice.value
            return f"{base}[{key}]" if isinstance(key, int) else f"{base}.{key}"
        return None

    def fold_constant(self) -> tuple[Any] | None:
        """Constant-fold the expression.

        Returns a 1-tuple ``(value,)`` when the expression references no
        variables and evaluates cleanly, else ``None``.  The tuple wrapper
        distinguishes a folded ``None``/``False`` from "not constant" —
        the dead-edge/shadowed-branch checks of :mod:`repro.verify` rely
        on this.
        """
        if self.variables_used():
            return None
        try:
            return (self.evaluate({}),)
        except ExpressionError:
            return None

    def __repr__(self) -> str:
        return f"Expression({self.text!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Expression) and self.text == other.text

    def __hash__(self) -> int:
        return hash(self.text)
