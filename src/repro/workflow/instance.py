"""Workflow instances: the runtime state the engine advances and persists.

Per Section 2.1, "at any point in time a workflow instance is either
persisted in the database or in state transition in the workflow engine".
A :class:`WorkflowInstance` is the persistable object: variables, per-step
states, lifecycle status, hierarchy links (parent instance/step for
subworkflows), and an append-only history of execution events.
"""

from __future__ import annotations

import copy as _copy
from dataclasses import dataclass, field
from typing import Any

from repro.errors import InstanceError

__all__ = [
    "StepState",
    "WorkflowInstance",
    # step statuses
    "STEP_PENDING",
    "STEP_READY",
    "STEP_WAITING",
    "STEP_COMPLETED",
    "STEP_SKIPPED",
    "STEP_FAILED",
    # instance statuses
    "INSTANCE_CREATED",
    "INSTANCE_RUNNING",
    "INSTANCE_WAITING",
    "INSTANCE_COMPLETED",
    "INSTANCE_FAILED",
    "INSTANCE_CANCELLED",
    "INSTANCE_MIGRATED",
]

STEP_PENDING = "pending"        # join not yet satisfied
STEP_READY = "ready"            # eligible for execution
STEP_WAITING = "waiting"        # started, parked on an external event
STEP_COMPLETED = "completed"
STEP_SKIPPED = "skipped"        # dead path (all incoming signals false)
STEP_FAILED = "failed"

TERMINAL_STEP_STATUSES = (STEP_COMPLETED, STEP_SKIPPED, STEP_FAILED)

INSTANCE_CREATED = "created"
INSTANCE_RUNNING = "running"
INSTANCE_WAITING = "waiting"
INSTANCE_COMPLETED = "completed"
INSTANCE_FAILED = "failed"
INSTANCE_CANCELLED = "cancelled"
INSTANCE_MIGRATED = "migrated"  # moved to another engine (Figure 5(a))

TERMINAL_INSTANCE_STATUSES = (
    INSTANCE_COMPLETED,
    INSTANCE_FAILED,
    INSTANCE_CANCELLED,
    INSTANCE_MIGRATED,
)


@dataclass
class StepState:
    """Runtime state of one step within one instance."""

    step_id: str
    status: str = STEP_PENDING
    outputs: dict[str, Any] = field(default_factory=dict)
    iterations: int = 0            # loop steps: completed body runs
    child_instance_id: str = ""    # subworkflow steps: the running child
    wait_key: str = ""             # waiting steps: the event key that resumes
    error: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "step_id": self.step_id,
            "status": self.status,
            # outputs may carry documents (e.g. an extracted POA)
            "outputs": _encode_variables(self.outputs),
            "iterations": self.iterations,
            "child_instance_id": self.child_instance_id,
            "wait_key": self.wait_key,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "StepState":
        payload = dict(payload)
        payload["outputs"] = _decode_variables(payload.get("outputs", {}))
        return cls(**payload)


class WorkflowInstance:
    """One execution of a workflow type.

    Transition *signals* implement dead-path elimination: every control-flow
    arc eventually carries ``True`` (taken) or ``False`` (dead); a step's
    join fires or skips once all its incoming signals are present.
    """

    def __init__(
        self,
        instance_id: str,
        type_name: str,
        type_version: str,
        step_ids: list[str],
        variables: dict[str, Any] | None = None,
        parent_instance_id: str = "",
        parent_step_id: str = "",
        created_at: float = 0.0,
    ):
        if not instance_id:
            raise InstanceError("instance_id must be non-empty")
        self.instance_id = instance_id
        self.type_name = type_name
        self.type_version = type_version
        self.variables: dict[str, Any] = dict(variables or {})
        self.steps: dict[str, StepState] = {
            step_id: StepState(step_id) for step_id in step_ids
        }
        self.signals: dict[tuple[str, str], bool] = {}
        self.status = INSTANCE_CREATED
        self.parent_instance_id = parent_instance_id
        self.parent_step_id = parent_step_id
        self.created_at = created_at
        self.completed_at: float | None = None
        self.history: list[dict[str, Any]] = []
        self.error: str = ""

    # -- step state access ---------------------------------------------------

    def step_state(self, step_id: str) -> StepState:
        """Return the state record for ``step_id``."""
        try:
            return self.steps[step_id]
        except KeyError:
            raise InstanceError(
                f"instance {self.instance_id} has no step {step_id!r}"
            ) from None

    def steps_in_status(self, status: str) -> list[StepState]:
        """All step states currently in ``status``."""
        return [state for state in self.steps.values() if state.status == status]

    def all_steps_terminal(self) -> bool:
        """True when every step reached a terminal status."""
        return all(
            state.status in TERMINAL_STEP_STATUSES for state in self.steps.values()
        )

    def is_terminal(self) -> bool:
        """True when the instance reached a terminal lifecycle status."""
        return self.status in TERMINAL_INSTANCE_STATUSES

    # -- signals -----------------------------------------------------------------

    def set_signal(self, source: str, target: str, value: bool) -> None:
        """Record the truth value carried by arc ``source -> target``."""
        self.signals[(source, target)] = value

    def signal(self, source: str, target: str) -> bool | None:
        """Return the arc's signal, or ``None`` when not yet determined."""
        return self.signals.get((source, target))

    # -- history -------------------------------------------------------------------

    def record(self, at: float, event: str, step_id: str = "", detail: str = "") -> None:
        """Append an execution event to the audit history."""
        self.history.append(
            {"at": at, "event": event, "step_id": step_id, "detail": detail}
        )

    def events(self, event: str) -> list[dict[str, Any]]:
        """Return history entries with the given event name."""
        return [entry for entry in self.history if entry["event"] == event]

    # -- persistence -----------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible snapshot (documents in variables are enveloped)."""
        return {
            "instance_id": self.instance_id,
            "type_name": self.type_name,
            "type_version": self.type_version,
            "variables": _encode_variables(self.variables),
            "steps": [state.to_dict() for state in self.steps.values()],
            "signals": [
                {"source": source, "target": target, "value": value}
                for (source, target), value in self.signals.items()
            ],
            "status": self.status,
            "parent_instance_id": self.parent_instance_id,
            "parent_step_id": self.parent_step_id,
            "created_at": self.created_at,
            "completed_at": self.completed_at,
            "history": _copy.deepcopy(self.history),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "WorkflowInstance":
        """Rebuild an instance snapshot."""
        instance = cls(
            payload["instance_id"],
            payload["type_name"],
            payload["type_version"],
            step_ids=[],
            variables=_decode_variables(payload["variables"]),
            parent_instance_id=payload.get("parent_instance_id", ""),
            parent_step_id=payload.get("parent_step_id", ""),
            created_at=payload.get("created_at", 0.0),
        )
        instance.steps = {
            entry["step_id"]: StepState.from_dict(entry) for entry in payload["steps"]
        }
        instance.signals = {
            (entry["source"], entry["target"]): entry["value"]
            for entry in payload.get("signals", [])
        }
        instance.status = payload["status"]
        instance.completed_at = payload.get("completed_at")
        instance.history = list(payload.get("history", []))
        instance.error = payload.get("error", "")
        return instance

    def __repr__(self) -> str:
        return (
            f"WorkflowInstance({self.instance_id!r} of {self.type_name!r}, "
            f"status={self.status})"
        )


def _encode_variables(variables: dict[str, Any]) -> dict[str, Any]:
    from repro.documents.model import Document  # local import to avoid cycle

    encoded: dict[str, Any] = {}
    for name, value in variables.items():
        if isinstance(value, Document):
            encoded[name] = {"__document__": value.to_dict()}
        else:
            encoded[name] = _copy.deepcopy(value)
    return encoded


def _decode_variables(variables: dict[str, Any]) -> dict[str, Any]:
    from repro.documents.model import Document  # local import to avoid cycle

    decoded: dict[str, Any] = {}
    for name, value in variables.items():
        if isinstance(value, dict) and "__document__" in value:
            decoded[name] = Document.from_dict(value["__document__"])
        else:
            decoded[name] = _copy.deepcopy(value)
    return decoded
