"""Work lists: human tasks (the paper's "Approve PO" steps), simulated.

Figure 1's approval steps are human decisions behind business rules.  The
reproduction keeps the workflow semantics — the step parks, a work item
appears on a role's work list, a decision completes the step — but replaces
the person with a scripted :func:`auto-approver <Worklist.set_auto_policy>`
so runs stay deterministic (see the substitution table in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import WorklistError
from repro.messaging.envelope import IdGenerator

__all__ = ["WorkItem", "Worklist"]

ITEM_OPEN = "open"
ITEM_CLAIMED = "claimed"
ITEM_COMPLETED = "completed"

CompletionCallback = Callable[["WorkItem"], None]
AutoPolicy = Callable[["WorkItem"], "dict[str, Any] | None"]


@dataclass
class WorkItem:
    """One pending human decision.

    :param payload: what the approver sees (e.g. the normalized PO data).
    :param role: who may claim it (e.g. ``"purchasing-manager"``).
    :param decision: outputs recorded on completion (e.g.
        ``{"approved": True}``).
    """

    item_id: str
    instance_id: str
    step_id: str
    subject: str
    role: str = "approver"
    payload: dict[str, Any] = field(default_factory=dict)
    status: str = ITEM_OPEN
    claimed_by: str = ""
    decision: dict[str, Any] = field(default_factory=dict)
    created_at: float = 0.0
    completed_at: float | None = None


class Worklist:
    """The work-item store of one enterprise's WFMS."""

    def __init__(self, name: str = "worklist"):
        self.name = name
        self._items: dict[str, WorkItem] = {}
        self._ids = IdGenerator(f"WI-{name}")
        self._completion_callback: CompletionCallback | None = None
        self._auto_policy: AutoPolicy | None = None

    # -- wiring ------------------------------------------------------------------

    def on_completion(self, callback: CompletionCallback | None) -> None:
        """Register the engine callback fired when an item completes."""
        self._completion_callback = callback

    def set_auto_policy(self, policy: AutoPolicy | None) -> None:
        """Install a scripted approver.

        The policy sees each newly added item; returning a decision dict
        completes the item immediately, returning ``None`` leaves it open
        for a manual :meth:`complete` call.
        """
        self._auto_policy = policy

    # -- lifecycle -----------------------------------------------------------------

    def add(
        self,
        instance_id: str,
        step_id: str,
        subject: str,
        payload: dict[str, Any] | None = None,
        role: str = "approver",
        now: float = 0.0,
    ) -> WorkItem:
        """Create a work item for a parked workflow step."""
        item = WorkItem(
            item_id=self._ids.next(),
            instance_id=instance_id,
            step_id=step_id,
            subject=subject,
            role=role,
            payload=dict(payload or {}),
            created_at=now,
        )
        self._items[item.item_id] = item
        if self._auto_policy is not None:
            decision = self._auto_policy(item)
            if decision is not None:
                self.complete(item.item_id, decision, completed_by="auto-policy", now=now)
        return item

    def claim(self, item_id: str, user: str) -> WorkItem:
        """Claim an open item for ``user``."""
        item = self._get(item_id)
        if item.status != ITEM_OPEN:
            raise WorklistError(f"work item {item_id} is {item.status}, not open")
        item.status = ITEM_CLAIMED
        item.claimed_by = user
        return item

    def complete(
        self,
        item_id: str,
        decision: dict[str, Any],
        completed_by: str = "",
        now: float = 0.0,
    ) -> WorkItem:
        """Record the decision and notify the engine."""
        item = self._get(item_id)
        if item.status == ITEM_COMPLETED:
            raise WorklistError(f"work item {item_id} is already completed")
        if item.status == ITEM_CLAIMED and completed_by and item.claimed_by != completed_by:
            raise WorklistError(
                f"work item {item_id} is claimed by {item.claimed_by!r}, "
                f"not {completed_by!r}"
            )
        item.status = ITEM_COMPLETED
        item.decision = dict(decision)
        item.completed_at = now
        if completed_by:
            item.claimed_by = completed_by
        if self._completion_callback is not None:
            self._completion_callback(item)
        return item

    # -- queries ---------------------------------------------------------------------

    def _get(self, item_id: str) -> WorkItem:
        try:
            return self._items[item_id]
        except KeyError:
            raise WorklistError(f"no work item {item_id!r}") from None

    def get(self, item_id: str) -> WorkItem:
        """Return the item with ``item_id``."""
        return self._get(item_id)

    def open_items(self, role: str | None = None) -> list[WorkItem]:
        """Open items, optionally filtered by role."""
        items = [item for item in self._items.values() if item.status == ITEM_OPEN]
        if role is not None:
            items = [item for item in items if item.role == role]
        return items

    def items_for_instance(self, instance_id: str) -> list[WorkItem]:
        """All items raised by one workflow instance."""
        return [
            item for item in self._items.values() if item.instance_id == instance_id
        ]

    def completed_count(self) -> int:
        """Number of completed items (experiment counters)."""
        return sum(1 for item in self._items.values() if item.status == ITEM_COMPLETED)
