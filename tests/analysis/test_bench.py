"""Tests for the hot-path benchmark driver and the ``repro bench`` CLI.

Timings here use tiny ``min_time`` values — the tests verify the driver's
mechanics (selection, JSON shape, the regression gate's verdicts), not the
performance numbers themselves; the enforced speedup floors live in the
benchmark suite and CI gate.
"""

import json

import pytest

from repro.analysis.bench import (
    BENCHMARKS,
    TRACKED,
    check_against_baseline,
    run_benchmarks,
)
from repro.cli import main


def _payload(**overrides):
    payload = run_benchmarks(
        ["expression_eval_interpreted", "expression_eval_compiled"],
        min_time=0.02,
    )
    payload.update(overrides)
    return payload


class TestDriver:
    def test_tracked_benchmarks_exist(self):
        assert set(TRACKED) <= set(BENCHMARKS)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            run_benchmarks(["warp_drive"], min_time=0.01)

    def test_payload_shape(self):
        payload = _payload()
        assert payload["schema"] == "repro-bench/1"
        for entry in payload["benchmarks"].values():
            assert entry["ops_per_sec"] > 0
            assert entry["normalized"] > 0
            assert entry["runs"] > 0
        assert "expression_compile_speedup" in payload["derived"]

    def test_every_benchmark_builds_and_runs(self):
        # fig14_roundtrip excluded: ~26ms/op is too slow for a unit test
        names = [name for name in BENCHMARKS if name != "fig14_roundtrip"]
        payload = run_benchmarks(names, min_time=0.01)
        assert set(payload["benchmarks"]) == set(names)
        assert payload["derived"]["statespace_states_per_sec"] > 0


class TestRegressionGate:
    def test_identical_run_passes(self):
        payload = _payload()
        assert check_against_baseline(payload, payload) == []

    def test_large_drop_fails(self):
        baseline = _payload()
        current = json.loads(json.dumps(baseline))
        name = "expression_eval_compiled"
        current["benchmarks"][name]["normalized"] = (
            baseline["benchmarks"][name]["normalized"] * 0.5
        )
        problems = check_against_baseline(current, baseline)
        assert any(name in problem for problem in problems)

    def test_small_drift_tolerated(self):
        baseline = _payload()
        current = json.loads(json.dumps(baseline))
        for entry in current["benchmarks"].values():
            entry["normalized"] *= 0.9  # within the 25% tolerance
        assert check_against_baseline(current, baseline) == []

    def test_speedup_floor_enforced(self):
        payload = _payload()
        payload["derived"]["expression_compile_speedup"] = 1.1
        problems = check_against_baseline(payload, payload)
        assert any("expression_compile_speedup" in problem for problem in problems)

    def test_missing_benchmarks_ignored(self):
        # a baseline predating a new benchmark must not crash the gate
        payload = _payload()
        assert check_against_baseline(payload, {"benchmarks": {}}) == []


class TestCli:
    def test_bench_filter_and_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = main([
            "bench", "--filter", "expression", "--min-time", "0.02",
            "--json", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert set(payload["benchmarks"]) == {
            "expression_eval_interpreted", "expression_eval_compiled",
        }
        assert "expression_eval_compiled" in capsys.readouterr().out

    def test_bench_bad_filter_exits_nonzero(self, capsys):
        assert main(["bench", "--filter", "warp_drive"]) == 2

    def test_bench_check_passes_against_own_output(self, tmp_path, capsys):
        out = tmp_path / "base.json"
        assert main([
            "bench", "--filter", "expression_eval_compiled",
            "--min-time", "0.05", "--json", str(out),
        ]) == 0
        assert main([
            "bench", "--filter", "expression_eval_compiled",
            "--min-time", "0.05", "--check", str(out),
        ]) == 0
        assert "regression gate OK" in capsys.readouterr().out
