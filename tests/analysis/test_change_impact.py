"""Tests for the Section 4.5 change catalogue."""

import pytest

from repro.analysis.change_impact import CHANGE_SCENARIOS, change_table


@pytest.fixture(scope="module")
def table():
    return {row["scenario"]: row for row in change_table()}


class TestCatalogue:
    def test_nine_scenarios(self):
        assert len(CHANGE_SCENARIOS) == 9

    def test_every_scenario_has_both_measurements(self, table):
        for row in table.values():
            assert row["advanced_impact"] >= 0
            assert row["naive_impact"] >= 0


class TestPaperLocalityClaims:
    def test_advanced_locality_matches_paper(self, table):
        for row in table.values():
            assert row["advanced_locality"] == row["expected_advanced_locality"], (
                row["scenario"]
            )

    def test_audit_step_is_local_both_sides(self, table):
        row = table["add_audit_step"]
        assert row["advanced_locality"] == "local"
        assert row["advanced_impact"] == 1  # exactly the private process

    def test_transport_acks_touch_only_public(self, table):
        row = table["model_transport_acks"]
        report = row["advanced_report"]
        assert report.kinds_touched() == {"public"}

    def test_document_field_is_nonlocal_everywhere(self, table):
        row = table["add_document_field"]
        assert row["advanced_locality"] == "non-local"
        assert len(row["advanced_report"].kinds_touched()) >= 3


class TestSection46Claims:
    """'Adding a new trading partner only requires to add business rules.'"""

    def test_partner_same_protocol_modifies_nothing_advanced(self, table):
        row = table["add_partner_same_protocol"]
        assert row["advanced_modified"] == 0
        report = row["advanced_report"]
        assert {key.split(":", 1)[0] for key in report.added} == {
            "partner", "agreement", "rule",
        }

    def test_partner_same_protocol_modifies_naive_type(self, table):
        row = table["add_partner_same_protocol"]
        assert row["naive_modified"] > 0  # conditions + routing table change

    def test_new_protocol_is_additive_advanced(self, table):
        row = table["add_partner_new_protocol"]
        assert row["advanced_modified"] == 0
        kinds = {key.split(":", 1)[0] for key in row["advanced_report"].added}
        assert "public" in kinds and "binding" in kinds

    def test_new_protocol_rewrites_naive_graph(self, table):
        row = table["add_partner_new_protocol"]
        assert row["naive_impact"] > row["advanced_impact"]
        assert row["naive_modified"] > 0

    def test_backend_is_additive_advanced(self, table):
        row = table["add_backend"]
        assert row["advanced_modified"] == 0

    def test_backend_explodes_naive(self, table):
        row = table["add_backend"]
        assert row["naive_impact"] > 3 * row["advanced_impact"]

    def test_threshold_change_is_one_rule(self, table):
        row = table["change_rule_threshold"]
        assert row["advanced_impact"] == 1
        assert row["advanced_report"].modified[0].startswith("rule:")

    def test_partner_removal_is_subtractive_advanced(self, table):
        row = table["remove_partner"]
        report = row["advanced_report"]
        assert report.modified == []
        assert report.removed

    def test_new_private_process_tiny_advanced_huge_naive(self, table):
        row = table["add_private_process"]
        assert row["advanced_impact"] == 1
        assert row["naive_impact"] >= 40  # a whole second monolithic type
