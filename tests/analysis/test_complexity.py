"""Tests for the growth-curve experiments (F9/F10, Section 4.6)."""

import pytest

from repro.analysis.complexity import (
    advanced_metrics,
    figure9_to_figure10_change,
    growth_rows,
    naive_metrics,
)


class TestGrowthShapes:
    """The paper's qualitative claims as monotone/shape assertions."""

    def test_naive_grows_multiplicatively_in_backends(self):
        totals = [naive_metrics(2, 2, b).total_elements for b in (1, 2, 4, 8)]
        assert totals == sorted(totals)
        # superlinear: doubling B more than doubles the increments
        increments = [b - a for a, b in zip(totals, totals[1:])]
        assert increments[-1] > increments[0]

    def test_advanced_grows_additively_in_backends(self):
        totals = [advanced_metrics(2, 2, b).total_elements for b in (1, 2, 4, 8)]
        increments = [b - a for a, b in zip(totals, totals[1:])]
        # per-step growth stays flat (one binding + rules per backend)
        per_backend = [inc / step for inc, step in zip(increments, (1, 2, 4))]
        assert max(per_backend) <= min(per_backend) * 1.5

    def test_naive_exceeds_advanced_at_scale(self):
        """The crossover claim: the advanced model costs more at toy scale
        but wins as any dimension grows."""
        assert naive_metrics(1, 1, 1).total_elements < advanced_metrics(1, 1, 1).total_elements
        assert naive_metrics(4, 4, 4).total_elements > advanced_metrics(4, 4, 4).total_elements
        assert naive_metrics(6, 6, 2).total_elements > advanced_metrics(6, 6, 2).total_elements

    def test_advanced_private_process_is_constant(self):
        """Section 4.6: the private process is untouched by growth."""
        steps = [
            advanced_metrics(p, t, b).workflow_steps
            for p, t, b in [(1, 1, 1), (3, 5, 2), (4, 8, 4)]
        ]
        assert len(set(steps)) == 1

    def test_naive_monotone_in_every_dimension(self):
        base = naive_metrics(2, 2, 2).total_elements
        assert naive_metrics(3, 2, 2).total_elements > base
        assert naive_metrics(2, 3, 2).total_elements > base
        assert naive_metrics(2, 2, 3).total_elements > base


class TestGrowthRows:
    def test_rows_have_both_series(self):
        rows = growth_rows("partners", [2, 4])
        assert len(rows) == 2
        for row in rows:
            assert row["naive_total"] > 0
            assert row["advanced_total"] > 0
            assert row["dimension"] == "partners"

    def test_protocol_sweep_keeps_partners_coherent(self):
        rows = growth_rows("protocols", [4])
        assert rows[0]["topology"] == (4, 4, 2)

    def test_unknown_dimension_rejected(self):
        with pytest.raises(KeyError):
            growth_rows("universes", [1])


class TestFigure9To10:
    @pytest.fixture(scope="class")
    def change(self):
        return figure9_to_figure10_change()

    def test_naive_significant_change(self, change):
        """'The workflow type has to be changed significantly' — new steps
        appear AND existing elements are modified."""
        assert change["naive_steps_after"] > change["naive_steps_before"]
        assert change["naive_elements_modified"] > 0
        assert change["naive_elements_touched"] > 15

    def test_naive_figure_sizes(self, change):
        # steps = 2 + 3P + 3B + 2PB
        assert change["naive_steps_before"] == 22   # Figure 9: P=2, B=2
        assert change["naive_steps_after"] == 29    # Figure 10: P=3, B=2

    def test_advanced_grows_but_private_untouched(self, change):
        assert change["advanced_total_after"] > change["advanced_total_before"]
        assert (
            change["advanced_private_steps_after"]
            == change["advanced_private_steps_before"]
        )

    def test_naive_modifications_are_the_rules_and_routing(self, change):
        modified = change["naive_report"].modified
        assert any("determine_target" in key for key in modified)
