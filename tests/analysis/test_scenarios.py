"""Tests for the canned scenario builders."""

import pytest

from repro.analysis.scenarios import (
    advanced_synthetic_model,
    build_fig15_community,
    build_two_enterprise_pair,
    synthetic_protocol,
)
from repro.core.enterprise import run_community

LINES = [{"sku": "X", "quantity": 1, "unit_price": 500.0}]


class TestTwoEnterprisePair:
    @pytest.mark.parametrize("protocol", ["edi-van", "rosettanet", "oagis-http"])
    def test_pair_runs_a_round_trip(self, protocol):
        pair = build_two_enterprise_pair(protocol, seller_delay=0.0)
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-S1", LINES)
        run_community(pair.enterprises())
        assert pair.buyer.instance(instance_id).status == "completed"
        assert pair.seller.backends["Oracle"].has_order("PO-S1")

    def test_custom_names_and_thresholds(self):
        pair = build_two_enterprise_pair(
            "rosettanet", buyer_name="NORTH", seller_name="SOUTH",
            buyer_threshold=1, seller_delay=0.0, auto_approve=False,
        )
        pair.buyer.submit_order("SAP", "SOUTH", "PO-S2", LINES)
        # threshold 1 forces a buyer-side approval work item
        assert len(pair.buyer.worklist.open_items()) == 1


class TestFig15Community:
    @pytest.fixture(scope="class")
    def community(self):
        community = build_fig15_community(seller_delay=0.0)
        for partner_id, buyer in community.buyers.items():
            buyer.submit_order("SAP", "ACME", f"PO-{partner_id}", LINES)
        run_community(community.enterprises())
        return community

    def test_three_partners_three_protocols(self, community):
        protocols = {
            agreement.protocol
            for agreement in community.seller.model.partners.agreements()
        }
        assert protocols == {"edi-van", "rosettanet", "oagis-http"}

    def test_all_orders_land_in_routed_backends(self, community):
        seller = community.seller
        assert seller.backends["SAP"].has_order("PO-TP1")
        assert seller.backends["Oracle"].has_order("PO-TP2")
        assert seller.backends["SAP"].has_order("PO-TP3")

    def test_every_buyer_got_its_ack(self, community):
        for partner_id, buyer in community.buyers.items():
            assert f"PO-{partner_id}" in buyer.backends["SAP"].stored_acks

    def test_single_private_process_served_all(self, community):
        instances = community.seller.wfms.database.list_instances()
        assert len(instances) == 3
        assert {i.type_name for i in instances} == {"private-po-seller"}
        assert all(i.status == "completed" for i in instances)


class TestSyntheticModels:
    def test_synthetic_protocol_is_structural_only(self):
        protocol = synthetic_protocol("proto-9", "wire-9")
        assert protocol.public_process("buyer").wire_format == "wire-9"
        with pytest.raises(Exception):
            protocol.codec.to_wire(None)

    def test_real_protocols_used_first(self):
        model = advanced_synthetic_model(3, 3, 2)
        assert set(model.protocols) == {"edi-van", "rosettanet", "oagis-http"}
        assert set(model.applications) == {"SAP", "Oracle"}

    def test_synthetic_extension_beyond_reals(self):
        model = advanced_synthetic_model(5, 4, 3)
        assert "proto-4" in model.protocols
        assert "app-3" in model.applications
        # synthetic formats got mappings registered
        assert model.transforms.find("wire-4", "normalized", "purchase_order")

    def test_rules_scale_with_partners_and_backends(self):
        model = advanced_synthetic_model(2, 3, 2)
        approval = model.rules.get("check_need_for_approval")
        assert len(approval.rules) == 3 * 2
        routing = model.rules.get("select_target_application")
        assert len(routing.rules) == 3
