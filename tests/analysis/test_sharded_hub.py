"""Structure tests for the sharded-hub benchmark harness (small scale)."""

from repro.analysis.bench import run_benchmarks
from repro.analysis.sharded_hub import deterministic_trace, run_hub_benchmark


class TestRunHubBenchmark:
    def test_payload_shape_and_invariance(self):
        result = run_hub_benchmark(
            messages_per_config=2_000,
            shard_counts=(1, 2),
            partners=8,
            commit_wait=0.0,
            chunk=500,
        )
        assert result["total_messages"] >= 4_000
        assert set(result["parallel"]) == {"1", "2"}
        for entry in result["parallel"].values():
            assert entry["processed"] >= entry["messages"]
            assert entry["msgs_per_sec"] > 0
        assert result["scaling"]["1"] == 1.0
        assert result["scaling_4x"] is None  # 4 not in shard_counts
        assert result["deterministic_trace_invariant"] is True
        links = result["inter_shard_network"]["links"]
        assert any(key.startswith("shard:") for key in links)

    def test_deterministic_trace_ignores_shard_count(self):
        assert deterministic_trace(1) == deterministic_trace(3)
        assert deterministic_trace(1) != ""


class TestBenchIntegration:
    def test_sharded_hub_rides_the_bench_payload(self):
        payload = run_benchmarks(
            [], min_time=0.05, sharded_hub=True, sharded_hub_messages=2_000
        )
        assert "sharded_hub" in payload
        assert "sharded_hub_scaling_4x" in payload["derived"]
        assert payload["sharded_hub"]["deterministic_trace_invariant"] is True
