"""Structure tests for the transformation benchmark harness (small scale)."""

from repro.analysis.bench import SPEEDUP_FLOORS, run_benchmarks
from repro.analysis.transform_bench import (
    BATCH_SPEEDUP_FLOOR,
    CACHE_HIT_RATE_FLOOR,
    measure_cache_hit_rate,
    transform_hub_trace,
)


class TestCacheHitRate:
    def test_zipf_stream_hits_after_cold_pass(self):
        result = measure_cache_hit_rate(population=10, requests=300, capacity=64)
        assert result["hits"] + result["misses"] == 300
        assert result["misses"] >= 10  # at least one cold miss per document
        assert result["evictions"] == 0  # capacity covers the population
        assert 0.0 < result["transform_cache_hit_rate"] < 1.0

    def test_tiny_capacity_forces_evictions(self):
        result = measure_cache_hit_rate(population=10, requests=300, capacity=2)
        assert result["evictions"] > 0
        assert result["hits"] + result["misses"] == 300


class TestTransformHub:
    def test_batched_trace_matches_per_document(self):
        per_doc, per_doc_stats = transform_hub_trace(
            2, batched=False, messages=120, partners=6, population=10, chunk=40
        )
        batched, batched_stats = transform_hub_trace(
            2, batched=True, messages=120, partners=6, population=10, chunk=40
        )
        assert batched == per_doc
        assert batched_stats["processed"] == per_doc_stats["processed"] == 120
        assert batched_stats["batch_calls"] < per_doc_stats["batch_calls"]
        assert batched_stats["cache_hits"] == per_doc_stats["cache_hits"]
        assert batched_stats["snapshot_events"] == 1

    def test_shard_count_does_not_change_the_trace(self):
        one, _ = transform_hub_trace(
            1, batched=True, messages=90, partners=6, population=10, chunk=30
        )
        four, _ = transform_hub_trace(
            4, batched=True, messages=90, partners=6, population=10, chunk=30
        )
        assert one == four


class TestBenchIntegration:
    def test_floors_are_mirrored_in_the_bench_gate(self):
        assert SPEEDUP_FLOORS["transform_batch_speedup"] == BATCH_SPEEDUP_FLOOR
        assert SPEEDUP_FLOORS["transform_cache_hit_rate"] == CACHE_HIT_RATE_FLOOR

    def test_transform_rides_the_bench_payload(self):
        payload = run_benchmarks(
            [], min_time=0.05, transform_cache=True, transform_batch_size=20
        )
        transform = payload["transform"]
        assert transform["hub"]["trace_parity"] is True
        derived = payload["derived"]
        assert derived["transform_cache_hit_rate"] == (
            transform["transform_cache_hit_rate"]
        )
        assert derived["transform_batch_speedup"] == (
            transform["transform_batch_speedup"]
        )
