"""Tests for the B2B protocol descriptors."""

import pytest

from repro.b2b.protocol import (
    B2BProtocol,
    TRANSPORT_PLAIN,
    TRANSPORT_RELIABLE,
    TRANSPORT_VAN,
    WireCodec,
    extended_protocols,
    get_protocol,
    standard_protocols,
)
from repro.errors import ProtocolError


class TestStandardProtocols:
    def test_three_standards(self):
        protocols = standard_protocols()
        assert set(protocols) == {"edi-van", "rosettanet", "oagis-http"}

    def test_transports_match_the_paper(self):
        protocols = standard_protocols()
        assert protocols["edi-van"].transport == TRANSPORT_VAN
        assert protocols["rosettanet"].transport == TRANSPORT_RELIABLE
        assert protocols["oagis-http"].transport == TRANSPORT_PLAIN

    def test_wire_formats(self):
        protocols = standard_protocols()
        assert protocols["edi-van"].wire_format == "edi-x12"
        assert protocols["rosettanet"].wire_format == "rosettanet-xml"
        assert protocols["oagis-http"].wire_format == "oagis-bod"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ProtocolError):
            get_protocol("as2")

    def test_extended_catalogue(self):
        assert set(extended_protocols()) == {
            "edi-van", "rosettanet", "oagis-http",
            "rosettanet-ra", "edi-van-997",
            "oagis-fulfillment", "edi-fulfillment",
            "oagis-quotation",
        }

    def test_acknowledged_variants_carry_receipt_builders(self):
        assert get_protocol("rosettanet-ra").receipt_builder is not None
        assert get_protocol("edi-van-997").receipt_builder is not None
        for name in standard_protocols():
            assert get_protocol(name).receipt_builder is None

    def test_fulfillment_protocols_are_seller_initiated(self):
        for name in ("oagis-fulfillment", "edi-fulfillment"):
            protocol = get_protocol(name)
            assert protocol.public_process("seller").initiating()
            assert not protocol.public_process("buyer").initiating()

    def test_codecs_roundtrip(self, registry, sample_po):
        for protocol in standard_protocols().values():
            wire_doc = registry.transform(sample_po, protocol.wire_format)
            text = protocol.codec.to_wire(wire_doc)
            assert protocol.codec.from_wire(text) == wire_doc


class TestPublicProcessFactories:
    @pytest.mark.parametrize("name", ["edi-van", "rosettanet", "oagis-http"])
    def test_both_roles_built(self, name):
        protocol = get_protocol(name)
        buyer = protocol.public_process("buyer")
        seller = protocol.public_process("seller")
        assert buyer.role == "buyer" and seller.role == "seller"
        assert buyer.protocol == seller.protocol == name
        assert buyer.wire_format == protocol.wire_format
        # buyer initiates, seller reacts
        assert buyer.initiating()
        assert not seller.initiating()

    def test_unknown_role_rejected(self):
        with pytest.raises(ProtocolError):
            get_protocol("rosettanet").public_process("observer")

    def test_factories_build_fresh_definitions(self):
        protocol = get_protocol("rosettanet")
        assert protocol.public_process("buyer") is not protocol.public_process("buyer")


class TestDescriptorValidation:
    def test_bad_transport_rejected(self):
        codec = WireCodec("f", lambda d: "", lambda t: None)
        with pytest.raises(ProtocolError):
            B2BProtocol(
                name="x", codec=codec, transport="carrier-pigeon",
                buyer_process=lambda: None, seller_process=lambda: None,
            )

    def test_process_factories_required(self):
        codec = WireCodec("f", lambda d: "", lambda t: None)
        with pytest.raises(ProtocolError):
            B2BProtocol(name="x", codec=codec, transport=TRANSPORT_PLAIN)
