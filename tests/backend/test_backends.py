"""Tests for the SAP-like and Oracle-like ERP simulators."""

import pytest

from repro.backend import OracleSimulator, SapSimulator
from repro.backend.base import accept_all, partial_backorder, reject_over
from repro.errors import BackendError
from repro.sim import EventScheduler

LINES = [
    {"sku": "LAPTOP", "quantity": 2, "unit_price": 1000.0},
    {"sku": "MOUSE", "quantity": 10, "unit_price": 20.0},
]


@pytest.fixture(params=["sap", "oracle"])
def erp(request):
    if request.param == "sap":
        return SapSimulator("SAP")
    return OracleSimulator("Oracle")


def _native_po(erp, po_number="PO-1"):
    """An inbound native PO produced by a second simulator of the same kind."""
    feeder = type(erp)("feeder")
    return feeder.enter_order(po_number, "TP1", "ACME", LINES)


class TestOrderEntry:
    def test_enter_order_queues_outbound_po(self, erp):
        erp.enter_order("PO-1", "BUYER", "SELLER", LINES)
        documents = erp.extract_documents("purchase_order")
        assert len(documents) == 1
        assert documents[0].format_name == erp.format_name
        po_number, total, lines = erp._po_fields(documents[0])
        assert po_number == "PO-1"
        assert total == pytest.approx(2200.0)
        assert len(lines) == 2

    def test_enter_order_requires_lines(self, erp):
        with pytest.raises(BackendError):
            erp.enter_order("PO-1", "B", "S", [])

    def test_extract_document_for_by_number(self, erp):
        erp.enter_order("PO-1", "B", "S", LINES)
        erp.enter_order("PO-2", "B", "S", LINES)
        document = erp.extract_document_for("PO-2", "purchase_order")
        assert erp._po_fields(document)[0] == "PO-2"
        assert erp.pending_outbound() == 1


class TestOrderProcessing:
    def test_store_po_books_order_and_acks(self, erp):
        erp.store_document(_native_po(erp))
        record = erp.order("PO-1")
        assert record.status == "accepted"
        assert record.total_amount == pytest.approx(2200.0)
        acks = erp.extract_documents("po_ack")
        assert len(acks) == 1
        assert erp._ack_po_number(acks[0]) == "PO-1"

    def test_wrong_format_rejected(self, erp):
        other = OracleSimulator("O2") if isinstance(erp, SapSimulator) else SapSimulator("S2")
        foreign = _native_po(other)
        with pytest.raises(BackendError) as excinfo:
            erp.store_document(foreign)
        assert "binding transformation" in str(excinfo.value)

    def test_duplicate_order_rejected(self, erp):
        erp.store_document(_native_po(erp))
        with pytest.raises(BackendError):
            erp.store_document(_native_po(erp))

    def test_unknown_doc_type_rejected(self, erp):
        document = _native_po(erp)
        document.doc_type = "freight_bill"
        with pytest.raises(BackendError):
            erp.store_document(document)

    def test_store_ack_records_it(self, erp):
        erp.store_document(_native_po(erp))
        ack = erp.extract_documents("po_ack")[0]
        receiver = type(erp)("receiver")
        receiver.store_document(ack)
        assert "PO-1" in receiver.stored_acks

    def test_unknown_order_lookup_raises(self, erp):
        with pytest.raises(BackendError):
            erp.order("PO-404")


class TestPolicies:
    def test_accept_all(self):
        assert accept_all("P", 1e9, []) == ("accepted", {})

    def test_reject_over(self, erp):
        erp.acceptance_policy = reject_over(1000.0)
        erp.store_document(_native_po(erp))
        assert erp.order("PO-1").status == "rejected"
        ack = erp.extract_documents("po_ack")[0]
        # rejected acknowledgments carry zero accepted amount
        if isinstance(erp, SapSimulator):
            assert ack.get("summary.summe") == 0.0
            assert ack.get("header.action") == "REJ"
        else:
            assert ack.get("header.accepted_amount") == 0.0
            assert ack.get("header.acceptance_code") == "REJECTED"

    def test_partial_backorder(self, erp):
        erp.acceptance_policy = partial_backorder({"MOUSE"})
        erp.store_document(_native_po(erp))
        record = erp.order("PO-1")
        assert record.status == "partial"
        assert record.line_statuses == {2: "backordered"}
        ack = erp.extract_documents("po_ack")[0]
        if isinstance(erp, SapSimulator):
            assert ack.get("summary.summe") == pytest.approx(2000.0)
        else:
            assert ack.get("header.accepted_amount") == pytest.approx(2000.0)

    def test_fully_backordered_becomes_rejection(self):
        erp = SapSimulator("SAP")
        erp.acceptance_policy = partial_backorder({"LAPTOP", "MOUSE"})
        erp.store_document(_native_po(erp))
        assert erp.order("PO-1").status == "rejected"


class TestAsynchronousProcessing:
    def test_delayed_ack_appears_after_processing_delay(self):
        scheduler = EventScheduler()
        erp = SapSimulator("SAP", scheduler=scheduler, processing_delay=2.0)
        erp.store_document(_native_po(erp))
        assert erp.pending_outbound() == 0
        scheduler.run_until_idle()
        assert scheduler.clock.now() == 2.0
        assert erp.pending_outbound() == 1
        assert erp.order("PO-1").acknowledged_at == 2.0

    def test_ready_callback_fires(self):
        scheduler = EventScheduler()
        erp = OracleSimulator("Oracle", scheduler=scheduler, processing_delay=1.0)
        seen = []
        erp.on_document_ready(lambda name, doc: seen.append((name, doc.doc_type)))
        erp.store_document(_native_po(erp))
        scheduler.run_until_idle()
        assert seen == [("Oracle", "po_ack")]

    def test_delay_without_scheduler_rejected(self):
        with pytest.raises(BackendError):
            SapSimulator("SAP", processing_delay=1.0)


class TestNativeAckContent:
    def test_sap_ack_is_ordrsp_idoc(self):
        erp = SapSimulator("SAP")
        erp.store_document(_native_po(erp))
        ack = erp.extract_documents("po_ack")[0]
        assert ack.format_name == "sap-idoc"
        assert ack.get("control.message_type") == "ORDRSP"
        assert len(ack.get("items")) == 2
        assert {p["parvw"] for p in ack.get("partners")} == {"AG", "LF"}

    def test_oracle_ack_is_ack_record_set(self):
        erp = OracleSimulator("Oracle")
        erp.store_document(_native_po(erp))
        ack = erp.extract_documents("po_ack")[0]
        assert ack.format_name == "oracle-oif"
        assert ack.get("header.acceptance_code") == "FULL"
        assert ack.get("header.buyer_org") == "TP1"
        assert len(ack.get("lines")) == 2
