"""Tests for the cooperative-workflow baseline (Section 3, Figure 8)."""

import json

import pytest

from repro.backend import OracleSimulator, SapSimulator
from repro.baselines.cooperative import (
    CooperativeCommunity,
    build_cooperative_buyer_type,
    build_cooperative_seller_type,
)
from repro.messaging.network import NetworkConditions, SimulatedNetwork

LINES = [{"sku": "DESK", "quantity": 5, "unit_price": 50.0}]
BIG_LINES = [{"sku": "SRV", "quantity": 100, "unit_price": 9000.0}]


@pytest.fixture
def community(scheduler):
    network = SimulatedNetwork(scheduler, NetworkConditions.perfect(), seed=11)
    return CooperativeCommunity(
        network,
        "TP1",
        "ACME",
        SapSimulator("SAP", scheduler=scheduler),
        OracleSimulator("Oracle", scheduler=scheduler),
        protocol_name="edi-van",
        buyer_threshold=10000,
        seller_thresholds={"TP1": 550000},
    )


class TestTypeStructure:
    def test_buyer_type_embeds_everything(self):
        workflow = build_cooperative_buyer_type("edi-van", "SAP", "sap-idoc", 10000)
        text = json.dumps(workflow.to_dict())
        # the Section 3 criticisms, verified structurally:
        assert "edi-van" in text          # protocol baked in
        assert "sap-idoc" in text         # back-end format baked in
        assert "10000" in text            # threshold baked in
        assert workflow.steps_tagged("transformation")

    def test_seller_type_embeds_partner_rules(self):
        workflow = build_cooperative_seller_type(
            "edi-van", "Oracle", "oracle-oif", {"TP1": 550000}
        )
        conditions = [t.condition for t in workflow.transitions if t.condition]
        assert any("TP1" in c and "550000" in c for c in conditions)

    def test_split_adds_send_receive_ordering(self):
        """The paper: after the split, 'send PO' and 'receive POA' must be
        ordered by an explicit control-flow arc."""
        workflow = build_cooperative_buyer_type("edi-van", "SAP", "sap-idoc", 10000)
        arcs = {(t.source, t.target) for t in workflow.transitions}
        assert ("send_po", "receive_poa") in arcs


class TestRoundTrip:
    def test_full_round_trip(self, community):
        conversation_id = community.submit_order("PO-CO1", LINES)
        community.run()
        assert community.buyer_instance(conversation_id).status == "completed"
        assert community.seller_instance(conversation_id).status == "completed"
        assert community.seller.backend.has_order("PO-CO1")
        assert "PO-CO1" in community.buyer.backend.stored_acks

    def test_amount_below_thresholds_skips_approvals(self, community):
        conversation_id = community.submit_order("PO-CO2", LINES)
        community.run()
        buyer_instance = community.buyer_instance(conversation_id)
        seller_instance = community.seller_instance(conversation_id)
        assert buyer_instance.step_state("approve_po").status == "skipped"
        assert seller_instance.step_state("approve_po").status == "skipped"

    def test_big_amount_triggers_both_approvals(self, community):
        conversation_id = community.submit_order("PO-CO3", BIG_LINES)  # 900 000
        community.run()
        buyer_instance = community.buyer_instance(conversation_id)
        seller_instance = community.seller_instance(conversation_id)
        assert buyer_instance.step_state("approve_po").status == "completed"
        assert seller_instance.step_state("approve_po").status == "completed"
        assert buyer_instance.status == "completed"

    def test_multiple_concurrent_conversations(self, community):
        first = community.submit_order("PO-CO4", LINES)
        second = community.submit_order("PO-CO5", LINES)
        community.run()
        assert community.buyer_instance(first).status == "completed"
        assert community.buyer_instance(second).status == "completed"
        assert community.seller.backend.order_count() == 2

    def test_unknown_conversation_rejected(self, community):
        from repro.errors import IntegrationError

        with pytest.raises(IntegrationError):
            community.buyer_instance("COOP-9999")


class TestKnowledgeLocality:
    def test_types_stay_local(self, community):
        conversation_id = community.submit_order("PO-CO6", LINES)
        community.run()
        buyer_types = {t.name for t in community.buyer.engine.database.list_types()}
        seller_types = {t.name for t in community.seller.engine.database.list_types()}
        assert buyer_types == {"coop-buyer"}
        assert seller_types == {"coop-seller"}

    def test_no_reliability_machinery(self, community):
        """Figure 8's weakness: a lost message stalls the collaboration
        forever — there is no retry layer."""
        community.network.conditions = NetworkConditions(loss_rate=1.0)
        community.network._link_conditions.clear()
        conversation_id = community.submit_order("PO-CO7", LINES)
        community.run()
        buyer_instance = community.buyer_instance(conversation_id)
        assert buyer_instance.status == "waiting"  # stuck at receive_poa forever
