"""Tests for the distributed inter-organizational baseline (Section 2)."""

import pytest

from repro.backend import OracleSimulator, SapSimulator
from repro.baselines.distributed_interorg import (
    build_interorg_roundtrip_types,
    foreign_rule_exposure,
    make_participant_engine,
    run_distributed_roundtrip,
    run_migrating_roundtrip,
)
from repro.sim import Clock


@pytest.fixture
def setup():
    clock = Clock()
    left_erp = SapSimulator("SAP")
    right_erp = OracleSimulator("Oracle")
    left = make_participant_engine("left", left_erp, clock)
    right = make_participant_engine("right", right_erp, clock)
    left_erp.enter_order(
        "PO-D1", "BuyerCo", "SellerCo",
        [{"sku": "X", "quantity": 1, "unit_price": 20000.0}],
    )
    return left, right, left_erp, right_erp


def _types(distributed=False, remote_engine=""):
    return build_interorg_roundtrip_types(
        "BuyerCo", "SellerCo",
        "SAP", "sap-idoc", "Oracle", "oracle-oif",
        left_threshold=10000,
        right_thresholds={"BuyerCo": 550000},
        distributed=distributed,
        remote_engine=remote_engine,
    )


class TestTypeConstruction:
    def test_ownership_split(self):
        combined, left_prepare, right_process, left_finish = _types()
        assert combined.owner == left_prepare.owner == left_finish.owner == "BuyerCo"
        assert right_process.owner == "SellerCo"

    def test_figure1_thresholds_embedded(self):
        _, left_prepare, right_process, _ = _types()
        left_conditions = [t.condition for t in left_prepare.transitions if t.condition]
        right_conditions = [t.condition for t in right_process.transitions if t.condition]
        assert any("10000" in c for c in left_conditions)
        assert any("550000" in c for c in right_conditions)

    def test_distributed_variant_uses_remote_step(self):
        combined = _types(distributed=True, remote_engine="right-wfms")[0]
        step = combined.step("right_process")
        assert step.kind == "remote_subworkflow"
        assert step.engine == "right-wfms"


class TestMigrationVariant:
    def test_round_trip_completes(self, setup):
        left, right, left_erp, right_erp = setup
        result = run_migrating_roundtrip(
            left, right, _types(), "PO-D1", 20000.0, "BuyerCo"
        )
        assert result.instance.status == "completed"
        assert right_erp.has_order("PO-D1")
        assert "PO-D1" in left_erp.stored_acks

    def test_buyer_approval_ran_on_left(self, setup):
        left, right, *_ = setup
        result = run_migrating_roundtrip(
            left, right, _types(), "PO-D1", 20000.0, "BuyerCo"
        )
        # amount 20000 > 10000: the left approval fired before migration
        children = [
            i for i in left.database.list_instances()
            if i.type_name == "interorg-left-prepare"
        ]
        assert children
        assert children[0].step_state("approve_po").status == "completed"

    def test_migration_cost_measured(self, setup):
        left, right, *_ = setup
        result = run_migrating_roundtrip(
            left, right, _types(), "PO-D1", 20000.0, "BuyerCo"
        )
        assert len(result.migrations) == 2
        # first migration moves the full type closure (4 types)
        assert result.migrations[0].types_sent == 4
        # second migration finds everything already present
        assert result.migrations[1].types_sent == 0
        assert result.total_migration_messages > 0

    def test_mutual_rule_exposure(self, setup):
        """Section 2.3: with migration, each enterprise can read the
        other's business rules."""
        left, right, *_ = setup
        result = run_migrating_roundtrip(
            left, right, _types(), "PO-D1", 20000.0, "BuyerCo"
        )
        assert result.exposure_left.get("SellerCo", 0) > 0
        assert result.exposure_right.get("BuyerCo", 0) > 0


class TestDistributionVariant:
    def test_round_trip_completes(self, setup):
        left, right, left_erp, right_erp = setup
        result = run_distributed_roundtrip(
            left, right, _types(distributed=True, remote_engine="right-wfms"),
            "PO-D1", 20000.0, "BuyerCo",
        )
        assert result.instance.status == "completed"
        assert right_erp.has_order("PO-D1")
        assert "PO-D1" in left_erp.stored_acks

    def test_zero_rule_exposure(self, setup):
        """Figure 5(b): only the subworkflow interface crosses the
        boundary — neither side can read the other's rules."""
        left, right, *_ = setup
        result = run_distributed_roundtrip(
            left, right, _types(distributed=True, remote_engine="right-wfms"),
            "PO-D1", 20000.0, "BuyerCo",
        )
        assert result.exposure_left == {}
        assert result.exposure_right == {}

    def test_right_definition_stays_on_right(self, setup):
        left, right, *_ = setup
        run_distributed_roundtrip(
            left, right, _types(distributed=True, remote_engine="right-wfms"),
            "PO-D1", 20000.0, "BuyerCo",
        )
        assert not left.database.has_type("interorg-right-process")
        assert right.database.has_type("interorg-right-process")

    def test_master_controls_slave_execution(self, setup):
        """The tight coupling of Section 2.3: the child instance on the
        slave engine is parented by the master's instance."""
        left, right, *_ = setup
        result = run_distributed_roundtrip(
            left, right, _types(distributed=True, remote_engine="right-wfms"),
            "PO-D1", 20000.0, "BuyerCo",
        )
        slave_children = [
            i for i in right.database.list_instances()
            if i.type_name == "interorg-right-process"
        ]
        assert len(slave_children) == 1
        assert slave_children[0].status == "completed"


class TestExposureMetric:
    def test_counts_conditions_and_rule_steps(self, setup):
        left, right, *_ = setup
        types = _types()
        right.deploy_all(types)  # simulate full sharing
        exposure = foreign_rule_exposure(right, "SellerCo")
        # left's types: approve step (1) + 'amount > 10000' (1 term) = 2
        assert exposure["BuyerCo"] == 2

    def test_own_types_not_counted(self, setup):
        left, right, *_ = setup
        types = _types()
        right.deploy(types[2])  # its own right_process
        assert foreign_rule_exposure(right, "SellerCo") == {}
