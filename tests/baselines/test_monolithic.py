"""Tests for the naive monolithic generator (Figures 9/10) and its runtime."""

import pytest

from repro.backend import OracleSimulator, SapSimulator
from repro.baselines.monolithic import (
    NaiveClient,
    NaiveSellerRuntime,
    NaiveTopology,
    build_naive_seller_type,
    naive_element_index,
    topology_is_runnable,
)
from repro.documents import edi, rosettanet
from repro.documents.normalized import make_purchase_order
from repro.errors import ConfigurationError
from repro.messaging.network import NetworkConditions, SimulatedNetwork
from repro.transform.catalog import build_standard_registry


class TestTopology:
    def test_figure9(self):
        topology = NaiveTopology.figure9()
        assert set(topology.protocols) == {"edi-van", "rosettanet"}
        assert set(topology.backends) == {"SAP", "Oracle"}
        assert topology.thresholds == {"TP1": 55000, "TP2": 40000}
        assert topology_is_runnable(topology)

    def test_figure10_extends_figure9(self):
        topology = NaiveTopology.figure10()
        assert "oagis-http" in topology.protocols
        assert topology.thresholds["TP3"] == 10000
        assert topology.routing["TP3"] == "SAP"

    def test_synthetic_dimensions(self):
        topology = NaiveTopology.synthetic(3, 5, 2)
        assert len(topology.protocols) == 3
        assert len(topology.partner_protocol) == 5
        assert len(topology.backends) == 2
        assert not topology_is_runnable(topology)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NaiveTopology(protocols={}, backends={"a": "f"}, partner_protocol={"t": "p"})
        with pytest.raises(ConfigurationError):
            NaiveTopology(
                protocols={"p": "f"},
                backends={"a": "f"},
                partner_protocol={"t": "ghost-protocol"},
            )


class TestGeneratedStructure:
    def test_step_count_formula(self):
        """steps = 3 + 3P + 3B + 2PB (receive/target + decode/encode/send
        per protocol + store/approve/extract per back end + transforms)."""
        for protocols, partners, backends in [(1, 1, 1), (2, 2, 2), (3, 4, 2), (5, 5, 5)]:
            topology = NaiveTopology.synthetic(protocols, partners, backends)
            workflow = build_naive_seller_type(topology)
            expected = 2 + 3 * protocols + 3 * backends + 2 * protocols * backends
            assert workflow.step_count() == expected, (protocols, backends)

    def test_transform_steps_are_p_times_b_both_ways(self):
        workflow = build_naive_seller_type(NaiveTopology.synthetic(3, 2, 4))
        assert len(workflow.steps_tagged("transformation")) == 2 * 3 * 4

    def test_approval_condition_embeds_every_partner(self):
        workflow = build_naive_seller_type(NaiveTopology.figure9())
        conditions = [t.condition for t in workflow.transitions if t.condition]
        approval = [c for c in conditions if "55000" in c]
        assert approval
        for condition in approval:
            assert "TP1" in condition and "TP2" in condition

    def test_routing_table_is_hardcoded(self):
        workflow = build_naive_seller_type(NaiveTopology.figure9())
        step = workflow.step("determine_target")
        assert step.params["routing"] == {"TP1": "SAP", "TP2": "Oracle"}

    def test_element_index_granularity(self):
        workflow = build_naive_seller_type(NaiveTopology.figure9())
        index = naive_element_index(workflow)
        assert len(index) == workflow.step_count() + workflow.transition_count()
        assert any(key.startswith("step:") for key in index)
        assert any(key.startswith("transition:") for key in index)


class TestNaiveRuntime:
    """The Figure 9 type actually runs a PO round trip."""

    def _runtime(self, scheduler):
        network = SimulatedNetwork(scheduler, NetworkConditions.perfect(), seed=3)
        workflow = build_naive_seller_type(NaiveTopology.figure9())
        runtime = NaiveSellerRuntime(
            "ACME", network, workflow,
            {"SAP": SapSimulator("SAP", scheduler=scheduler),
             "Oracle": OracleSimulator("Oracle", scheduler=scheduler)},
        )
        return network, runtime

    def _po_wire(self, partner, fmt_module, format_name):
        registry = build_standard_registry()
        po = make_purchase_order(
            "PO-N1", partner, "ACME",
            [{"sku": "X", "quantity": 2, "unit_price": 100.0}],
        )
        return fmt_module.to_wire(registry.transform(po, format_name))

    def test_edi_partner_routed_to_sap(self, scheduler):
        network, runtime = self._runtime(scheduler)
        client = NaiveClient("TP1", network)
        client.send_po("ACME", "edi-van", self._po_wire("TP1", edi, edi.EDI_X12), "C1")
        scheduler.run_until_idle()
        assert runtime.backends["SAP"].has_order("PO-N1")
        assert not runtime.backends["Oracle"].has_order("PO-N1")
        assert len(client.replies) == 1
        # the reply is an 855 in the partner's own protocol
        parsed = edi.from_wire(client.replies[0].body)
        assert parsed.doc_type == "po_ack"

    def test_rosettanet_partner_routed_to_oracle(self, scheduler):
        network, runtime = self._runtime(scheduler)
        client = NaiveClient("TP2", network)
        client.send_po(
            "ACME", "rosettanet",
            self._po_wire("TP2", rosettanet, rosettanet.ROSETTANET), "C2",
        )
        scheduler.run_until_idle()
        assert runtime.backends["Oracle"].has_order("PO-N1")
        instance = runtime.engine.get_instance(runtime.instances[0])
        assert instance.status == "completed"
        # only the matching protocol branch ran
        assert instance.step_state("decode_rosettanet").status == "completed"
        assert instance.step_state("decode_edi-van").status == "skipped"

    def test_unknown_partner_fails_the_instance(self, scheduler):
        network, runtime = self._runtime(scheduler)
        runtime.engine.raise_on_failure = False
        client = NaiveClient("TP9", network)
        client.send_po("ACME", "edi-van", self._po_wire("TP9", edi, edi.EDI_X12), "C3")
        scheduler.run_until_idle()
        instance = runtime.engine.get_instance(runtime.instances[0])
        assert instance.status == "failed"
        assert "routing table" in instance.error
