"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.documents.normalized import make_po_ack, make_purchase_order
from repro.messaging.network import NetworkConditions, SimulatedNetwork
from repro.sim import EventScheduler
from repro.transform.catalog import build_standard_registry


@pytest.fixture
def scheduler() -> EventScheduler:
    """A fresh discrete-event scheduler."""
    return EventScheduler()


@pytest.fixture
def network(scheduler: EventScheduler) -> SimulatedNetwork:
    """A loss-free network on the shared scheduler."""
    return SimulatedNetwork(scheduler, NetworkConditions.perfect(), seed=7)


@pytest.fixture(scope="session")
def registry():
    """The standard mapping catalog (session-scoped: it is immutable in tests
    that use this fixture)."""
    return build_standard_registry()


@pytest.fixture
def sample_po():
    """A two-line normalized purchase order (total 12 750.00)."""
    return make_purchase_order(
        "PO-1001",
        "TP1",
        "ACME",
        [
            {"sku": "LAPTOP-15", "quantity": 10, "unit_price": 1200.0,
             "description": "15 inch laptop"},
            {"sku": "DOCK-1", "quantity": 5, "unit_price": 150.0},
        ],
        issued_at=5.0,
    )


@pytest.fixture
def sample_poa(sample_po):
    """A partial acknowledgment of :func:`sample_po` (line 2 backordered)."""
    return make_po_ack(
        sample_po, status="partial", line_statuses={2: "backordered"}, issued_at=9.0
    )
