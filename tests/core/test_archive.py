"""Tests for the enterprise document archive and the invoice-match rule."""

import pytest

from repro.core.enterprise import DocumentArchive
from repro.core.rules import invoice_match_rule_set
from repro.documents.normalized import make_invoice, make_purchase_order
from repro.errors import IntegrationError


@pytest.fixture
def po():
    return make_purchase_order(
        "PO-9", "TP1", "ACME", [{"sku": "X", "quantity": 2, "unit_price": 50.0}]
    )


class TestDocumentArchive:
    def test_store_and_get(self, po):
        archive = DocumentArchive()
        key = archive.store(po)
        assert key == "purchase_order:PO-9"
        assert archive.get("purchase_order", "PO-9") == po
        assert archive.has("purchase_order", "PO-9")

    def test_stored_copy_is_detached(self, po):
        archive = DocumentArchive()
        archive.store(po)
        po.set("header.po_number", "MUTATED")
        assert archive.get("purchase_order", "PO-9").get("header.po_number") == "PO-9"

    def test_missing_raises(self):
        with pytest.raises(IntegrationError):
            DocumentArchive().get("invoice", "nope")

    def test_count_by_kind(self, po):
        archive = DocumentArchive()
        archive.store(po)
        archive.store(make_invoice(po, "INV-1"))
        assert archive.count() == 2
        assert archive.count("invoice") == 1
        assert archive.count("ship_notice") == 0

    def test_documents_without_po_number_keyed_by_document_id(self, po):
        archive = DocumentArchive()
        document = po.copy()
        document.delete("header.po_number")
        key = archive.store(document)
        assert key == "purchase_order:PO-DOC-PO-9"

    def test_restore_overwrites(self, po):
        archive = DocumentArchive()
        archive.store(po)
        updated = po.copy()
        updated.set("header.currency", "EUR")
        archive.store(updated)
        assert archive.count() == 1
        assert archive.get("purchase_order", "PO-9").get("header.currency") == "EUR"


class TestInvoiceMatchRule:
    def _invoice(self, po, tax_rate=0.0):
        return make_invoice(po, "INV-9", tax_rate=tax_rate)

    def test_matching_invoice_passes(self, po):
        rules = invoice_match_rule_set(lambda po_number: 100.0)
        assert rules.evaluate("ACME", "", self._invoice(po)) is True

    def test_amount_off_by_more_than_tolerance_fails(self, po):
        rules = invoice_match_rule_set(lambda po_number: 90.0)
        assert rules.evaluate("ACME", "", self._invoice(po)) is False

    def test_within_tolerance_passes(self, po):
        rules = invoice_match_rule_set(lambda po_number: 100.005, tolerance=0.01)
        assert rules.evaluate("ACME", "", self._invoice(po)) is True

    def test_unknown_po_fails(self, po):
        rules = invoice_match_rule_set(lambda po_number: None)
        assert rules.evaluate("ACME", "", self._invoice(po)) is False

    def test_surprise_tax_fails(self, po):
        rules = invoice_match_rule_set(lambda po_number: 100.0)
        taxed = self._invoice(po, tax_rate=0.1)
        assert rules.evaluate("ACME", "", taxed) is False

    def test_lookup_receives_po_number(self, po):
        seen = []

        def lookup(po_number):
            seen.append(po_number)
            return 100.0

        invoice_match_rule_set(lookup).evaluate("ACME", "", self._invoice(po))
        assert seen == ["PO-9"]
