"""Tests for bindings: transformation chains, consume/produce (Section 4.2)."""

import pytest

from repro.core.binding import (
    Binding,
    BindingStep,
    make_application_binding,
    make_protocol_binding,
)
from repro.documents.model import Document
from repro.documents.normalized import make_purchase_order
from repro.errors import BindingError


class TestBindingStep:
    def test_transform_needs_target(self):
        with pytest.raises(BindingError):
            BindingStep("s", "transform")

    def test_produce_needs_producer(self):
        with pytest.raises(BindingError):
            BindingStep("s", "produce")

    def test_unknown_kind_rejected(self):
        with pytest.raises(BindingError):
            BindingStep("s", "teleport")

    def test_fingerprint_reflects_configuration(self):
        first = BindingStep("s", "transform", target_format="a")
        second = BindingStep("s", "transform", target_format="b")
        assert first.fingerprint() != second.fingerprint()


class TestBindingWiring:
    def test_exactly_one_counterpart(self):
        with pytest.raises(BindingError):
            Binding("b", "private", public_process="p", application="a")
        with pytest.raises(BindingError):
            Binding("b", "private")

    def test_requires_name(self):
        with pytest.raises(BindingError):
            Binding("", "private", public_process="p")


class TestProtocolBinding:
    def test_figure12_shape(self, registry, sample_po):
        binding = make_protocol_binding(
            "rn-binding", "rn/seller", "private", "rosettanet-xml"
        )
        assert binding.transformation_step_count() == 2
        # inbound: wire layout -> normalized
        wire_doc = registry.transform(sample_po, "rosettanet-xml")
        normalized = binding.apply_inbound(wire_doc, registry)
        assert normalized.format_name == "normalized"
        assert normalized == sample_po
        # outbound: normalized -> wire layout
        back = binding.apply_outbound(sample_po, registry)
        assert back.format_name == "rosettanet-xml"
        assert binding.inbound_runs == 1 and binding.outbound_runs == 1

    def test_context_reaches_mappings(self, registry, sample_po):
        binding = make_protocol_binding("b", "p", "private", "edi-x12")
        wire_doc = binding.apply_outbound(
            sample_po, registry, {"sender_id": "HUB", "receiver_id": "THEM"}
        )
        assert wire_doc.get("isa.sender_id") == "HUB"


class TestApplicationBinding:
    def test_inbound_means_toward_private(self, registry, sample_po):
        binding = make_application_binding("sap-b", "SAP", "private", "sap-idoc")
        native = registry.transform(sample_po, "sap-idoc")
        # extraction path: native -> normalized
        assert binding.apply_inbound(native, registry).format_name == "normalized"
        # storing path: normalized -> native
        assert binding.apply_outbound(sample_po, registry).format_name == "sap-idoc"


class TestConsumeAndProduce:
    def test_consume_swallows_document(self, registry, sample_po):
        binding = Binding(
            "b", "private", public_process="p",
            inbound=[BindingStep("drop", "consume")],
        )
        assert binding.apply_inbound(sample_po, registry) is None

    def test_produce_creates_document(self, registry):
        def receipt(context):
            return make_purchase_order(
                "GEN-1", "US", "THEM",
                [{"sku": "RCPT", "quantity": 1, "unit_price": 0.0}],
                issued_at=context.get("now", 0.0),
            )

        binding = Binding(
            "b", "private", public_process="p",
            outbound=[
                BindingStep("make", "produce", producer=receipt),
                BindingStep("to_wire", "transform", target_format="edi-x12"),
            ],
        )
        document = binding.apply_outbound(
            Document("normalized", "purchase_order", {"ignored": True}),
            registry,
            {"now": 4.0},
        )
        assert document.format_name == "edi-x12"
        assert document.get("beg.po_number") == "GEN-1"

    def test_transform_after_consume_is_an_error(self, registry, sample_po):
        binding = Binding(
            "b", "private", public_process="p",
            inbound=[
                BindingStep("drop", "consume"),
                BindingStep("then", "transform", target_format="edi-x12"),
            ],
        )
        # consume short-circuits the chain; the dangling transform is never
        # reached, and the document is swallowed
        assert binding.apply_inbound(sample_po, registry) is None


class TestChangeDetection:
    def test_to_dict_captures_chains(self):
        binding = make_protocol_binding("b", "p", "private", "edi-x12")
        payload = binding.to_dict()
        assert payload["public_process"] == "p"
        assert payload["inbound"] and payload["outbound"]

    def test_step_count(self):
        binding = make_application_binding("b", "SAP", "private", "sap-idoc")
        assert binding.step_count() == 2
