"""Binding batch chains: ``apply_inbound_batch``/``apply_outbound_batch``
are observably identical to the per-document chain methods — same output
documents, same run counters, same errors — while sharing one execution
plan (and its memoized route executors) across the whole vector.
"""

import pytest

from repro.core.binding import Binding, BindingStep, make_protocol_binding
from repro.documents.model import Document
from repro.documents.normalized import NORMALIZED, make_po_ack, make_purchase_order
from repro.errors import ValidationError
from repro.transform.catalog import build_standard_registry

CONTEXT = {"sender_id": "ACME", "receiver_id": "TP1", "now": 1.0}

LINES = [{"sku": "LAPTOP-15", "quantity": 10, "unit_price": 1200.0}]


def _key(document):
    if document is None:
        return None
    return (document.format_name, document.doc_type, document.to_dict())


@pytest.fixture
def fresh_registry():
    return build_standard_registry()


def _wire_batch(registry, count=6):
    documents = []
    for index in range(count):
        po = make_purchase_order(f"PO-{index}", "TP1", "ACME", LINES)
        documents.append(registry.transform(po, "edi-x12", CONTEXT))
    return documents


class TestInboundBatch:
    def test_matches_per_document_chain(self, fresh_registry):
        binding = make_protocol_binding("b", "p", "private", "edi-x12")
        documents = _wire_batch(fresh_registry)
        loop = [
            binding.apply_inbound(document, fresh_registry, CONTEXT)
            for document in documents
        ]
        runs_before = binding.inbound_runs
        batch = binding.apply_inbound_batch(documents, fresh_registry, CONTEXT)
        assert [_key(d) for d in batch] == [_key(d) for d in loop]
        assert binding.inbound_runs == runs_before + len(documents)

    def test_heterogeneous_doc_types_group_correctly(self, fresh_registry):
        binding = make_protocol_binding("b", "p", "private", "edi-x12")
        pos = [make_purchase_order(f"PO-{i}", "TP1", "ACME", LINES) for i in range(3)]
        documents = []
        for po in pos:
            documents.append(fresh_registry.transform(po, "edi-x12", CONTEXT))
            documents.append(
                fresh_registry.transform(make_po_ack(po), "edi-x12", CONTEXT)
            )
        loop = [
            binding.apply_inbound(document, fresh_registry, CONTEXT)
            for document in documents
        ]
        batch = binding.apply_inbound_batch(documents, fresh_registry, CONTEXT)
        assert [_key(d) for d in batch] == [_key(d) for d in loop]

    def test_empty_batch(self, fresh_registry):
        binding = make_protocol_binding("b", "p", "private", "edi-x12")
        assert binding.apply_inbound_batch([], fresh_registry, CONTEXT) == []

    def test_consume_yields_none_per_document(self, fresh_registry):
        binding = Binding(
            "b", "private", public_process="p",
            inbound=[BindingStep("drop", "consume")],
        )
        documents = _wire_batch(fresh_registry, 3)
        assert binding.apply_inbound_batch(documents, fresh_registry, CONTEXT) == [
            None, None, None,
        ]

    def test_failure_matches_sequential_error(self, fresh_registry):
        binding = make_protocol_binding("b", "p", "private", "edi-x12")
        documents = _wire_batch(fresh_registry, 3)
        broken = Document.from_dict(documents[1].to_dict())
        broken.delete("beg.po_number")
        batch = [documents[0], broken, documents[2]]
        with pytest.raises(ValidationError) as sequential:
            for document in batch:
                binding.apply_inbound(document, fresh_registry, CONTEXT)
        with pytest.raises(ValidationError) as batched:
            binding.apply_inbound_batch(batch, fresh_registry, CONTEXT)
        assert str(batched.value) == str(sequential.value)


class TestOutboundBatch:
    def test_matches_per_document_chain(self, fresh_registry):
        binding = make_protocol_binding("b", "p", "private", "rosettanet-xml")
        documents = [
            make_purchase_order(f"PO-{index}", "TP1", "ACME", LINES)
            for index in range(5)
        ]
        loop = [
            binding.apply_outbound(document, fresh_registry, CONTEXT)
            for document in documents
        ]
        batch = binding.apply_outbound_batch(documents, fresh_registry, CONTEXT)
        assert [_key(d) for d in batch] == [_key(d) for d in loop]
        assert all(d.format_name == "rosettanet-xml" for d in batch)

    def test_produce_steps_call_producer_per_document(self, fresh_registry):
        built = []

        def receipt(context):
            built.append(len(built))
            return make_purchase_order(
                f"GEN-{len(built)}", "US", "THEM",
                [{"sku": "RCPT", "quantity": 1, "unit_price": 0.0}],
            )

        binding = Binding(
            "b", "private", public_process="p",
            outbound=[
                BindingStep("make", "produce", producer=receipt),
                BindingStep("to_wire", "transform", target_format="edi-x12"),
            ],
        )
        documents = [
            Document(NORMALIZED, "purchase_order", {"ignored": index})
            for index in range(3)
        ]
        batch = binding.apply_outbound_batch(documents, fresh_registry, CONTEXT)
        assert built == [0, 1, 2]  # one producer call per document
        assert [d.get("beg.po_number") for d in batch] == ["GEN-1", "GEN-2", "GEN-3"]

    def test_transform_after_consume_is_an_error(self, fresh_registry):
        binding = Binding(
            "b", "private", public_process="p",
            inbound=[BindingStep("drop", "consume"),
                     BindingStep("then", "transform", target_format="edi-x12")],
        )
        documents = _wire_batch(fresh_registry, 2)
        # consume short-circuits before the dangling transform, per document
        assert binding.apply_inbound_batch(documents, fresh_registry, CONTEXT) == [
            None, None,
        ]


class TestBatchWithCache:
    def test_cache_and_batch_compose_through_the_binding(self, fresh_registry):
        fresh_registry.enable_cache()
        binding = make_protocol_binding("b", "p", "private", "edi-x12")
        documents = _wire_batch(fresh_registry, 4)
        batch = documents + documents  # second half should be all hits
        reference = make_protocol_binding("ref", "p", "private", "edi-x12")
        plain = build_standard_registry()
        expected = [
            reference.apply_inbound(document, plain, CONTEXT)
            for document in batch
        ]
        produced = binding.apply_inbound_batch(batch, fresh_registry, CONTEXT)
        assert [_key(d) for d in produced] == [_key(d) for d in expected]
        assert fresh_registry.cache.hits == 4
