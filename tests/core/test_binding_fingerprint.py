"""Binding.fingerprint(): stable across runs, sensitive to structure."""

from repro.core.binding import (
    Binding,
    BindingStep,
    make_application_binding,
    make_protocol_binding,
)


def _binding(name="b", target="normalized"):
    return Binding(
        name=name,
        public_process="pub",
        private_process="priv",
        inbound=[BindingStep("in", "transform", target_format=target)],
        outbound=[BindingStep("out", "transform", target_format="wire")],
    )


def test_fingerprint_is_short_stable_hex():
    fingerprint = _binding().fingerprint()
    assert len(fingerprint) == 16
    assert all(c in "0123456789abcdef" for c in fingerprint)
    assert _binding().fingerprint() == fingerprint


def test_identical_structures_share_a_fingerprint():
    assert _binding().fingerprint() == _binding().fingerprint()
    a = make_protocol_binding("pb", "pub", "priv", "rosettanet-xml")
    b = make_protocol_binding("pb", "pub", "priv", "rosettanet-xml")
    assert a.fingerprint() == b.fingerprint()


def test_structural_edits_change_the_fingerprint():
    base = _binding().fingerprint()
    assert _binding(name="other").fingerprint() != base
    assert _binding(target="edi-x12").fingerprint() != base
    extra = _binding()
    extra.inbound.append(BindingStep("extra", "consume"))
    assert extra.fingerprint() != base


def test_runtime_counters_do_not_affect_fingerprint():
    binding = make_protocol_binding("pb", "pub", "priv", "rosettanet-xml")
    before = binding.fingerprint()
    binding.inbound_runs = 12
    binding.outbound_runs = 7
    assert binding.fingerprint() == before


def test_protocol_and_application_bindings_differ():
    protocol = make_protocol_binding("same", "pub", "priv", "rosettanet-xml")
    application = make_application_binding("same", "app", "priv", "sap-idoc")
    assert protocol.fingerprint() != application.fingerprint()
