"""Binding chain plans: cached execution must equal the unplanned
interpreter, and every way a plan can go stale must invalidate it.

Staleness vectors: registering a new mapping (registry version bump),
editing the chain (snapshot mismatch), swapping the registry instance, and
the explicit ``invalidate_plans`` model-change hook.
"""

from repro.core.binding import Binding, BindingStep, make_protocol_binding
from repro.documents.model import Document
from repro.documents.normalized import NORMALIZED, make_purchase_order
from repro.transform.catalog import build_standard_registry
from repro.transform.mapping import Field, Mapping

LINES = [
    {"sku": "LAPTOP-15", "quantity": 50, "unit_price": 1200.0},
    {"sku": "DOCK-1", "quantity": 5, "unit_price": 150.0},
]

CONTEXT = {"sender_id": "ACME", "receiver_id": "TP1", "now": 1.0}


def _binding():
    return make_protocol_binding(
        "b", "public", "private", wire_format="edi-x12"
    )


def _po():
    return make_purchase_order("PO-1001", "TP1", "ACME", LINES)


class TestPlannedEqualsInterpreted:
    def test_outbound_transform(self):
        binding, registry = _binding(), build_standard_registry()
        planned = binding.apply_outbound(_po(), registry, CONTEXT)
        reference = binding._run_chain(binding.outbound, _po(), registry, CONTEXT)
        assert planned.to_dict() == reference.to_dict()

    def test_round_trip(self):
        binding, registry = _binding(), build_standard_registry()
        wire = binding.apply_outbound(_po(), registry, CONTEXT)
        back = binding.apply_inbound(wire, registry, CONTEXT)
        reference = binding._run_chain(binding.inbound, wire, registry, CONTEXT)
        assert back.format_name == NORMALIZED
        assert back.to_dict() == reference.to_dict()

    def test_consume_and_produce_steps(self):
        def producer(context):
            return Document(NORMALIZED, "receipt", {"ok": True})

        binding = Binding(
            "b2",
            private_process="private",
            public_process="public",
            inbound=[BindingStep("drop", "consume")],
            outbound=[BindingStep("make", "produce", producer=producer)],
        )
        registry = build_standard_registry()
        assert binding.apply_inbound(_po(), registry, CONTEXT) is None
        produced = binding.apply_outbound(None, registry, CONTEXT)
        assert produced.get("ok") is True
        assert produced.doc_type == "receipt"

    def test_stats_still_counted(self):
        binding, registry = _binding(), build_standard_registry()
        binding.apply_outbound(_po(), registry, CONTEXT)
        binding.apply_outbound(_po(), registry, CONTEXT)
        assert registry.stats["normalized__to__edi-x12/purchase_order"] == 2


class TestPlanReuse:
    def test_plan_reused_across_messages(self):
        binding, registry = _binding(), build_standard_registry()
        binding.apply_outbound(_po(), registry, CONTEXT)
        plan = binding._active_plans["out"]
        binding.apply_outbound(_po(), registry, CONTEXT)
        assert binding._active_plans["out"] is plan

    def test_routes_memoized_per_format(self):
        binding, registry = _binding(), build_standard_registry()
        binding.apply_outbound(_po(), registry, CONTEXT)
        plan = binding._active_plans["out"]
        assert len(plan.routes) == 1
        binding.apply_outbound(_po(), registry, CONTEXT)
        assert len(plan.routes) == 1  # second message reused the route


class TestInvalidation:
    def test_registering_a_mapping_invalidates(self):
        binding, registry = _binding(), build_standard_registry()
        binding.apply_outbound(_po(), registry, CONTEXT)
        stale = binding._active_plans["out"]
        extra = Mapping("extra", "fmt-a", "fmt-b", "purchase_order",
                        rules=[Field("x", "x")])
        registry.register(extra)
        binding.apply_outbound(_po(), registry, CONTEXT)
        assert binding._active_plans["out"] is not stale

    def test_editing_the_chain_invalidates(self):
        binding, registry = _binding(), build_standard_registry()
        binding.apply_outbound(_po(), registry, CONTEXT)
        stale = binding._active_plans["out"]
        binding.outbound[0] = BindingStep(
            "to_wire", "transform", target_format="rosettanet-xml"
        )
        result = binding.apply_outbound(_po(), registry, CONTEXT)
        assert binding._active_plans["out"] is not stale
        assert result.format_name == "rosettanet-xml"

    def test_swapping_registry_invalidates(self):
        binding = _binding()
        first, second = build_standard_registry(), build_standard_registry()
        binding.apply_outbound(_po(), first, CONTEXT)
        stale = binding._active_plans["out"]
        binding.apply_outbound(_po(), second, CONTEXT)
        assert binding._active_plans["out"] is not stale

    def test_invalidate_plans_hook(self):
        binding, registry = _binding(), build_standard_registry()
        binding.apply_outbound(_po(), registry, CONTEXT)
        assert binding._active_plans
        binding.invalidate_plans()
        assert not binding._active_plans
        assert not binding._plan_cache

    def test_reverted_chain_reuses_cached_plan(self):
        binding, registry = _binding(), build_standard_registry()
        original_step = binding.outbound[0]
        binding.apply_outbound(_po(), registry, CONTEXT)
        first_plan = binding._active_plans["out"]
        binding.outbound[0] = BindingStep(
            "to_wire", "transform", target_format="rosettanet-xml"
        )
        binding.apply_outbound(_po(), registry, CONTEXT)
        binding.outbound[0] = original_step
        binding.apply_outbound(_po(), registry, CONTEXT)
        assert binding._active_plans["out"] is first_plan  # routes preserved
