"""Tests for change-impact analysis (Section 4.5)."""

from repro.analysis.change_impact import build_fig14_model
from repro.core.change import ChangeReport, diff_indexes, diff_models


class TestDiffIndexes:
    def test_added_removed_modified(self):
        before = {"a": "1", "b": "2", "c": "3"}
        after = {"b": "2", "c": "changed", "d": "4"}
        report = diff_indexes(before, after, label="test")
        assert report.added == ["d"]
        assert report.removed == ["a"]
        assert report.modified == ["c"]
        assert report.impact_count == 3
        assert report.label == "test"

    def test_identical_indexes_have_no_impact(self):
        index = {"a": "1"}
        report = diff_indexes(index, dict(index))
        assert report.impact_count == 0
        assert report.is_local()


class TestLocality:
    def test_purely_additive_is_local(self):
        report = ChangeReport(added=["rule:f:new", "partner:TP4"])
        assert report.is_local()
        assert report.locality() == "local"

    def test_single_kind_modification_is_local(self):
        report = ChangeReport(modified=["private:p1", "private:p2"])
        assert report.is_local()

    def test_cross_kind_modification_is_non_local(self):
        report = ChangeReport(modified=["private:p1", "mapping:m1"])
        assert not report.is_local()
        assert report.locality() == "non-local"

    def test_registry_kinds_do_not_affect_locality(self):
        report = ChangeReport(modified=["partner:TP1", "agreement:TP1:x:seller",
                                        "rule:f:r1"])
        assert report.is_local()

    def test_kinds_touched(self):
        report = ChangeReport(added=["rule:f:a"], modified=["private:p"])
        assert report.kinds_touched() == {"rule", "private"}

    def test_summary_row(self):
        report = ChangeReport(label="x", added=["a:1"], modified=["b:2"])
        row = report.summary()
        assert row["label"] == "x"
        assert row["added"] == 1 and row["modified"] == 1
        assert row["impact"] == 2


class TestDiffModels:
    def test_untouched_model_diffs_empty(self):
        model = build_fig14_model()
        # comparing the model against a freshly built twin: identical
        report = diff_models(model, build_fig14_model())
        assert report.impact_count == 0

    def test_element_index_covers_all_kinds(self):
        index = build_fig14_model().element_index()
        kinds = {key.split(":", 1)[0] for key in index}
        assert kinds == {
            "mapping", "public", "binding", "private",
            "rule", "partner", "agreement", "application",
        }

    def test_index_keys_are_unique_fingerprints(self):
        index = build_fig14_model().element_index()
        assert len(index) == len(set(index))
        assert all(isinstance(value, str) and value for value in index.values())
