"""Tests for the static public-process complementarity check (Section 3's
sequencing requirement, enforced at deployment)."""

import pytest

from repro.b2b.protocol import extended_protocols
from repro.core.integration import IntegrationModel
from repro.core.private_process import seller_po_process
from repro.core.public_process import (
    PublicProcessDefinition,
    PublicStep,
    buyer_request_reply,
    check_complementary,
    seller_request_reply,
)
from repro.errors import ProtocolError


def _pair():
    return (
        buyer_request_reply("p/buyer", "proto", "fmt"),
        seller_request_reply("p/seller", "proto", "fmt"),
    )


class TestComplementaryPairs:
    def test_request_reply_templates_are_complementary(self):
        buyer, seller = _pair()
        assert check_complementary(buyer, seller) == []
        assert check_complementary(seller, buyer) == []  # symmetric

    @pytest.mark.parametrize("name", sorted(extended_protocols()))
    def test_every_shipped_protocol_is_complementary(self, name):
        protocol = extended_protocols()[name]
        assert check_complementary(
            protocol.public_process("buyer"), protocol.public_process("seller")
        ) == []


class TestMismatches:
    def test_protocol_mismatch(self):
        buyer = buyer_request_reply("a", "proto-1", "fmt")
        seller = seller_request_reply("b", "proto-2", "fmt")
        assert any("protocol mismatch" in p for p in check_complementary(buyer, seller))

    def test_wire_format_mismatch(self):
        buyer = buyer_request_reply("a", "proto", "fmt-1")
        seller = seller_request_reply("b", "proto", "fmt-2")
        assert any("wire format" in p for p in check_complementary(buyer, seller))

    def test_same_role(self):
        first = buyer_request_reply("a", "proto", "fmt")
        second = buyer_request_reply("b", "proto", "fmt")
        problems = check_complementary(first, second)
        assert any("both sides" in p for p in problems)

    def test_missing_receiver_detected(self):
        """'a message is sent but there is no corresponding receiving step'"""
        buyer, _ = _pair()
        seller = PublicProcessDefinition(
            "p/seller", "proto", "seller", "fmt",
            [
                PublicStep("receive_request", "receive", "purchase_order"),
                PublicStep("to_binding_request", "to_binding", "purchase_order"),
                # forgot to send the reply
            ],
        )
        problems = check_complementary(buyer, seller)
        assert any("wire step counts differ" in p for p in problems)

    def test_send_send_collision_detected(self):
        buyer, _ = _pair()
        seller = PublicProcessDefinition(
            "p/seller", "proto", "seller", "fmt",
            [
                PublicStep("send_1", "send", "purchase_order"),
                PublicStep("send_2", "send", "po_ack"),
            ],
        )
        problems = check_complementary(buyer, seller)
        assert any("does not" in p for p in problems)

    def test_document_kind_mismatch_detected(self):
        buyer, _ = _pair()
        seller = seller_request_reply("p/seller", "proto", "fmt",
                                      reply_doc="invoice")
        problems = check_complementary(buyer, seller)
        assert any("document kinds differ" in p for p in problems)

    def test_mutual_receive_deadlock_detected(self):
        first = PublicProcessDefinition(
            "a", "proto", "buyer", "fmt",
            [PublicStep("r", "receive", "purchase_order"),
             PublicStep("s", "send", "purchase_order")],
        )
        second = PublicProcessDefinition(
            "b", "proto", "seller", "fmt",
            [PublicStep("r", "receive", "purchase_order"),
             PublicStep("s", "send", "purchase_order")],
        )
        # kinds mirror position-by-position fails first; build a true
        # both-start-receiving shape:
        problems = check_complementary(first, second)
        assert problems  # receive/receive at position 0 is flagged

    def test_connection_steps_ignored(self):
        """Only the wire projection matters — internal connection steps may
        differ freely (that's the whole abstraction)."""
        buyer, seller = _pair()
        enriched = PublicProcessDefinition(
            seller.name, seller.protocol, seller.role, seller.wire_format,
            [
                PublicStep("receive_request", "receive", "purchase_order"),
                PublicStep("extra_1", "to_binding", "purchase_order"),
                PublicStep("extra_2", "from_binding", "po_ack"),
                PublicStep("extra_3", "to_binding"),
                PublicStep("extra_4", "from_binding"),
                PublicStep("send_reply", "send", "po_ack"),
            ],
        )
        assert check_complementary(buyer, enriched) == []


class TestDeploymentGate:
    def test_broken_protocol_refused_at_deployment(self):
        from repro.b2b.protocol import B2BProtocol, TRANSPORT_PLAIN, WireCodec

        broken = B2BProtocol(
            name="broken",
            codec=WireCodec("fmt", lambda d: "", lambda t: None),
            transport=TRANSPORT_PLAIN,
            buyer_process=lambda: buyer_request_reply("broken/buyer", "broken", "fmt"),
            seller_process=lambda: seller_request_reply(
                "broken/seller", "broken", "fmt", reply_doc="invoice"
            ),
        )
        model = IntegrationModel("test")
        model.add_private_process(seller_po_process())
        with pytest.raises(ProtocolError) as excinfo:
            model.add_protocol(broken, "private-po-seller")
        assert "not complementary" in str(excinfo.value)
        # nothing was half-deployed
        assert model.protocols == {}
        assert model.public_processes == {}
