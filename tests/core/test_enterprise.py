"""Tests for the Enterprise node and community driver."""

import pytest

from repro.analysis.scenarios import build_two_enterprise_pair
from repro.b2b.protocol import get_protocol
from repro.core.enterprise import Enterprise, run_community
from repro.core.private_process import buyer_po_process
from repro.errors import ConfigurationError, IntegrationError

LINES = [{"sku": "LAPTOP", "quantity": 2, "unit_price": 1000.0}]


class TestConfigurationGuards:
    def test_edi_requires_van(self, network):
        enterprise = Enterprise("solo", network)  # no VAN
        enterprise.deploy_private_process(buyer_po_process())
        with pytest.raises(ConfigurationError):
            enterprise.deploy_protocol(get_protocol("edi-van"), "private-po-buyer")

    def test_submit_order_requires_backend(self, network):
        enterprise = Enterprise("solo", network)
        enterprise.deploy_private_process(buyer_po_process())
        with pytest.raises(IntegrationError):
            enterprise.submit_order("SAP", "ACME", "PO-1", LINES)


class TestKnowledgeProtection:
    """Section 3: enterprises share business documents, never workflow
    types or instances."""

    def test_no_foreign_workflow_types(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
        pair.buyer.submit_order("SAP", "ACME", "PO-K1", LINES)
        run_community(pair.enterprises())
        buyer_types = {t.name for t in pair.buyer.wfms.database.list_types()}
        seller_types = {t.name for t in pair.seller.wfms.database.list_types()}
        assert buyer_types == {"private-po-buyer"}
        assert seller_types == {"private-po-seller"}

    def test_no_foreign_workflow_instances(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
        pair.buyer.submit_order("SAP", "ACME", "PO-K2", LINES)
        run_community(pair.enterprises())
        for instance in pair.buyer.wfms.database.list_instances():
            assert instance.type_name == "private-po-buyer"
        for instance in pair.seller.wfms.database.list_instances():
            assert instance.type_name == "private-po-seller"

    def test_only_wire_strings_cross_the_network(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
        captured = []
        original = pair.network.send

        def spy(message):
            captured.append(message)
            original(message)

        pair.network.send = spy
        pair.buyer.submit_order("SAP", "ACME", "PO-K3", LINES)
        run_community(pair.enterprises())
        business = [m for m in captured if m.kind == "business"]
        assert business, "expected business traffic"
        for message in business:
            assert isinstance(message.body, str)
            # no workflow state leaks into envelopes
            assert "instance" not in str(message.headers).lower()


class TestManualApproval:
    def test_order_blocks_until_human_decision(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0,
                                         auto_approve=False)
        pair.seller.worklist.set_auto_policy(lambda item: {"approved": True})
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-M1", LINES)
        run_community(pair.enterprises())
        # 2000.0 total < buyer threshold 10000: no approval needed... use a
        # bigger order to hit the worklist.
        assert pair.buyer.instance(instance_id).status == "completed"

        big = [{"sku": "SRV", "quantity": 10, "unit_price": 5000.0}]
        blocked_id = pair.buyer.submit_order("SAP", "ACME", "PO-M2", big)
        run_community(pair.enterprises())
        assert pair.buyer.instance(blocked_id).status == "waiting"
        items = pair.buyer.worklist.open_items()
        assert len(items) == 1
        pair.buyer.complete_work_item(items[0].item_id, approved=True)
        run_community(pair.enterprises())
        assert pair.buyer.instance(blocked_id).status == "completed"

    def test_denied_approval_cancels_order(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0,
                                         auto_approve=False)
        big = [{"sku": "SRV", "quantity": 10, "unit_price": 5000.0}]
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-M3", big)
        item = pair.buyer.worklist.open_items()[0]
        pair.buyer.complete_work_item(item.item_id, approved=False)
        run_community(pair.enterprises())
        instance = pair.buyer.instance(instance_id)
        assert instance.status == "completed"
        assert instance.step_state("cancel_order").status == "completed"
        assert instance.step_state("send_po").status == "skipped"
        # nothing crossed the network
        assert pair.seller.b2b.conversations == {}


class TestRunCommunity:
    def test_returns_round_count(self):
        pair = build_two_enterprise_pair("edi-van", seller_delay=0.0)
        pair.buyer.submit_order("SAP", "ACME", "PO-R1", LINES)
        rounds = run_community(pair.enterprises())
        assert rounds >= 2  # VAN polling needs at least one extra round

    def test_empty_community(self):
        assert run_community([]) == 0

    def test_livelock_guard(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)

        class Forever:
            def poll_van(self):
                return 1  # pretends there is always more VAN work

            @property
            def b2b(self):
                return pair.buyer.b2b

            scheduler = pair.scheduler

        with pytest.raises(IntegrationError):
            run_community([pair.buyer, Forever()], max_rounds=5)  # type: ignore[list-item]
