"""Tests for the integration model and B2B engine wiring."""

import pytest

from repro.analysis.scenarios import build_two_enterprise_pair
from repro.b2b.protocol import get_protocol
from repro.core.enterprise import run_community
from repro.core.integration import IntegrationModel
from repro.core.private_process import seller_po_process
from repro.errors import IntegrationError
from repro.messaging.envelope import Message

LINES = [{"sku": "LAPTOP", "quantity": 2, "unit_price": 1000.0}]


class TestIntegrationModel:
    @pytest.fixture
    def model(self):
        model = IntegrationModel("ACME")
        model.add_private_process(seller_po_process())
        return model

    def test_requires_name(self):
        with pytest.raises(IntegrationError):
            IntegrationModel("")

    def test_add_protocol_creates_routes_and_bindings(self, model):
        model.add_protocol(get_protocol("rosettanet"), "private-po-seller")
        route = model.route("rosettanet", "seller")
        assert route.public_process == "rosettanet/3a4/seller"
        assert route.binding == "rosettanet/seller-binding"
        assert route.private_process == "private-po-seller"
        assert len(model.public_processes) == 2
        assert len(model.bindings) == 2

    def test_protocol_needs_registered_private_process(self, model):
        with pytest.raises(IntegrationError):
            model.add_protocol(get_protocol("rosettanet"), "ghost-process")

    def test_duplicate_protocol_rejected(self, model):
        model.add_protocol(get_protocol("rosettanet"), "private-po-seller")
        with pytest.raises(IntegrationError):
            model.add_protocol(get_protocol("rosettanet"), "private-po-seller")

    def test_remove_protocol_cleans_up(self, model):
        model.add_protocol(get_protocol("rosettanet"), "private-po-seller")
        model.remove_protocol("rosettanet")
        assert model.public_processes == {}
        assert model.bindings == {}
        with pytest.raises(IntegrationError):
            model.route("rosettanet", "seller")

    def test_add_application_creates_binding(self, model):
        model.add_application("SAP", "sap-idoc", "private-po-seller")
        binding = model.app_binding("SAP")
        assert binding.application == "SAP"
        assert model.applications == {"SAP": "sap-idoc"}

    def test_duplicate_application_rejected(self, model):
        model.add_application("SAP", "sap-idoc", "private-po-seller")
        with pytest.raises(IntegrationError):
            model.add_application("SAP", "sap-idoc", "private-po-seller")

    def test_missing_route_raises(self, model):
        with pytest.raises(IntegrationError):
            model.route("rosettanet", "buyer")

    def test_duplicate_private_process_rejected(self, model):
        with pytest.raises(IntegrationError):
            model.add_private_process(seller_po_process())


class TestB2BEngineGuards:
    """Fault handling: malformed, unauthorized and unknown traffic."""

    @pytest.fixture
    def pair(self):
        return build_two_enterprise_pair("rosettanet", seller_delay=0.0)

    def _wire_po(self, pair):
        from repro.documents.normalized import make_purchase_order
        from repro.documents import rosettanet

        po = make_purchase_order("PO-X", "TP1", "ACME", LINES)
        return rosettanet.to_wire(pair.buyer.model.transforms.transform(po, "rosettanet-xml"))

    def test_garbage_body_recorded_as_fault(self, pair):
        message = Message(
            message_id="M-bad", sender="TP1", receiver="ACME",
            protocol="rosettanet", doc_type="purchase_order",
            body="<notxml", conversation_id="C-bad",
        )
        pair.seller.b2b.handle_message(message)
        assert len(pair.seller.b2b.faults) == 1
        assert pair.seller.b2b.conversations == {}

    def test_unknown_sender_recorded_as_fault(self, pair):
        message = Message(
            message_id="M-stranger", sender="MALLORY", receiver="ACME",
            protocol="rosettanet", doc_type="purchase_order",
            body=self._wire_po(pair), conversation_id="C-s",
        )
        pair.seller.b2b.handle_message(message)
        assert len(pair.seller.b2b.faults) == 1

    def test_undeployed_protocol_recorded_as_fault(self, pair):
        message = Message(
            message_id="M-proto", sender="TP1", receiver="ACME",
            protocol="oagis-http", doc_type="purchase_order",
            body="<ProcessPurchaseOrder/>", conversation_id="C-p",
        )
        pair.seller.b2b.handle_message(message)
        assert len(pair.seller.b2b.faults) == 1

    def test_no_agreement_recorded_as_fault(self, pair):
        # TP1 is known to the seller only as a *seller-side* counterparty;
        # suspend the agreement and the PO must be refused.
        pair.seller.model.partners.find_agreement("TP1").suspend()
        message = Message(
            message_id="M-agr", sender="TP1", receiver="ACME",
            protocol="rosettanet", doc_type="purchase_order",
            body=self._wire_po(pair), conversation_id="C-a",
        )
        pair.seller.b2b.handle_message(message)
        assert len(pair.seller.b2b.faults) == 1

    def test_acks_ignored_by_engine(self, pair):
        ack = Message(
            message_id="A1", sender="TP1", receiver="ACME",
            kind="ack", correlation_id="M1",
        )
        pair.seller.b2b.handle_message(ack)
        assert pair.seller.b2b.messages_received == 0

    def test_unknown_conversation_dispatch_rejected(self, pair):
        from repro.documents.normalized import make_purchase_order

        po = make_purchase_order("PO-X", "TP1", "ACME", LINES)
        with pytest.raises(IntegrationError):
            pair.buyer.b2b.dispatch_outbound("CONV-ghost", po)

    def test_start_conversation_requires_agreement(self, pair):
        from repro.documents.normalized import make_purchase_order
        from repro.errors import AgreementError

        po = make_purchase_order("PO-X", "ACME", "TP1", LINES)
        with pytest.raises(AgreementError):
            pair.seller.b2b.start_conversation("TP1", po)  # seller has no buyer role


class TestConversationLifecycle:
    def test_conversation_ids_flow_end_to_end(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
        pair.buyer.submit_order("SAP", "ACME", "PO-C1", LINES)
        run_community(pair.enterprises())
        buyer_convs = list(pair.buyer.b2b.conversations.values())
        seller_convs = list(pair.seller.b2b.conversations.values())
        assert len(buyer_convs) == len(seller_convs) == 1
        assert buyer_convs[0].conversation_id == seller_convs[0].conversation_id
        assert buyer_convs[0].role == "buyer"
        assert seller_convs[0].role == "seller"
        assert buyer_convs[0].status == seller_convs[0].status == "completed"

    def test_conversation_document_trace(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
        pair.buyer.submit_order("SAP", "ACME", "PO-C2", LINES)
        run_community(pair.enterprises())
        buyer_conv = next(iter(pair.buyer.b2b.conversations.values()))
        assert buyer_conv.documents == ["sent:purchase_order", "received:po_ack"]
        seller_conv = next(iter(pair.seller.b2b.conversations.values()))
        assert seller_conv.documents == ["received:purchase_order", "sent:po_ack"]

    def test_open_conversations_query(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=5.0)
        pair.buyer.submit_order("SAP", "ACME", "PO-C3", LINES)
        # before the community runs, the buyer conversation is open
        assert len(pair.buyer.b2b.open_conversations()) == 1
        run_community(pair.enterprises())
        assert pair.buyer.b2b.open_conversations() == []
