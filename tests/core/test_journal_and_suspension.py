"""Tests for the B2B audit journal and agreement suspension end to end."""

import pytest

from repro.analysis.scenarios import build_two_enterprise_pair
from repro.core.enterprise import run_community

LINES = [{"sku": "X", "quantity": 2, "unit_price": 100.0}]


class TestAuditJournal:
    @pytest.fixture
    def pair(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.5)
        pair.buyer.submit_order("SAP", "ACME", "PO-J1", LINES)
        run_community(pair.enterprises())
        return pair

    def test_every_boundary_crossing_recorded(self, pair):
        buyer_journal = pair.buyer.b2b.journal
        assert [(e["direction"], e["doc_type"]) for e in buyer_journal] == [
            ("out", "purchase_order"),
            ("in", "po_ack"),
        ]
        seller_journal = pair.seller.b2b.journal
        assert [(e["direction"], e["doc_type"]) for e in seller_journal] == [
            ("in", "purchase_order"),
            ("out", "po_ack"),
        ]

    def test_entries_carry_context(self, pair):
        entry = pair.buyer.b2b.journal[0]
        assert entry["partner"] == "ACME"
        assert entry["protocol"] == "rosettanet"
        assert entry["conversation"].startswith("CONV-TP1")
        assert entry["bytes"] > 100  # outbound entries record wire size

    def test_timestamps_monotone(self, pair):
        times = [entry["at"] for entry in pair.seller.b2b.journal]
        assert times == sorted(times)
        # the acknowledgment left after the ERP's 0.5 processing delay
        assert times[-1] >= times[0] + 0.5

    def test_journal_query(self, pair):
        assert len(pair.buyer.b2b.journal_for(partner_id="ACME")) == 2
        assert len(pair.buyer.b2b.journal_for(doc_type="po_ack")) == 1
        assert pair.buyer.b2b.journal_for(partner_id="GHOST") == []

    def test_receipt_acks_are_journaled_too(self):
        pair = build_two_enterprise_pair("rosettanet-ra", seller_delay=0.0)
        pair.buyer.submit_order("SAP", "ACME", "PO-J2", LINES)
        run_community(pair.enterprises())
        kinds = [e["doc_type"] for e in pair.buyer.b2b.journal]
        assert kinds.count("receipt_ack") == 2  # one in, one out


class TestAgreementSuspension:
    def test_suspended_partner_cannot_order(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
        pair.seller.model.partners.find_agreement("TP1").suspend()
        pair.buyer.wfms.raise_on_failure = False
        pair.buyer.submit_order("SAP", "ACME", "PO-S1", LINES)
        run_community(pair.enterprises())
        # the seller refused the exchange...
        assert len(pair.seller.b2b.faults) == 1
        assert not pair.seller.backends["Oracle"].has_order("PO-S1")
        # ...and booked nothing into a private process
        assert pair.seller.wfms.database.list_instances() == []

    def test_reactivated_agreement_admits_traffic_again(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
        agreement = pair.seller.model.partners.find_agreement("TP1")
        agreement.suspend()
        agreement.reactivate()
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-S2", LINES)
        run_community(pair.enterprises())
        assert pair.buyer.instance(instance_id).status == "completed"
        assert pair.seller.backends["Oracle"].has_order("PO-S2")
