"""Tests for the model-complexity metrics."""

from repro.analysis.change_impact import build_fig14_model
from repro.baselines.monolithic import NaiveTopology, build_naive_seller_type
from repro.core.metrics import (
    ModelMetrics,
    comparison_terms,
    measure_model,
    measure_workflow_type,
)
from repro.workflow.definitions import WorkflowBuilder


class TestComparisonTerms:
    def test_single_comparison(self):
        assert comparison_terms("amount > 10") == 1

    def test_figure9_condition_has_four_terms(self):
        condition = (
            "amount >= 55000 and source == 'TP1' "
            "or amount >= 40000 and source == 'TP2'"
        )
        assert comparison_terms(condition) == 4

    def test_chained_comparison_counts_each_op(self):
        assert comparison_terms("1 < x < 10") == 2

    def test_no_comparison(self):
        assert comparison_terms("a and b") == 0


class TestWorkflowTypeMetrics:
    def test_counts_steps_and_conditions(self):
        builder = WorkflowBuilder("wf")
        builder.variable("amount", 0).variable("source", "")
        builder.activity("a", "noop")
        builder.activity("t", "noop", tags=("transformation",))
        builder.activity("b", "noop")
        builder.link("a", "t", condition="amount > 5 and source == 'TP1'")
        builder.link("a", "b", otherwise=True)
        builder.link("t", "b")
        metrics = measure_workflow_type(builder.build())
        assert metrics.workflow_steps == 3
        assert metrics.transitions == 3
        assert metrics.conditions == 1
        assert metrics.condition_terms == 2
        assert metrics.inline_transform_steps == 1
        assert metrics.inline_rule_terms == 2  # mentions `source`

    def test_addition(self):
        first = ModelMetrics(workflow_steps=2, mappings=1)
        second = ModelMetrics(workflow_steps=3, business_rules=4)
        combined = first + second
        assert combined.workflow_steps == 5
        assert combined.mappings == 1
        assert combined.business_rules == 4

    def test_as_dict_contains_derived_series(self):
        row = ModelMetrics(workflow_steps=1, transitions=1).as_dict()
        assert row["total_elements"] == 2
        assert "decision_surface" in row


class TestNaiveGrowth:
    def test_figure9_topology_size(self):
        metrics = measure_workflow_type(build_naive_seller_type(NaiveTopology.figure9()))
        # 2 protocols, 2 partners, 2 back ends:
        # receive + 2 decode + target + 4 transforms + 2 store + 2 approve
        # + 2 extract + 4 poa transforms + 2 encode + 2 send = 22 steps
        assert metrics.workflow_steps == 22
        assert metrics.inline_transform_steps == 8
        # the approval condition (4 terms) duplicated on both back-end paths
        assert metrics.inline_rule_terms == 8

    def test_transform_steps_grow_multiplicatively(self):
        small = measure_workflow_type(
            build_naive_seller_type(NaiveTopology.synthetic(2, 2, 2))
        )
        bigger = measure_workflow_type(
            build_naive_seller_type(NaiveTopology.synthetic(4, 2, 4))
        )
        assert small.inline_transform_steps == 2 * 2 * 2
        assert bigger.inline_transform_steps == 2 * 4 * 4

    def test_partner_growth_raises_decision_surface_only(self):
        base = measure_workflow_type(
            build_naive_seller_type(NaiveTopology.synthetic(2, 2, 2))
        )
        more = measure_workflow_type(
            build_naive_seller_type(NaiveTopology.synthetic(2, 6, 2))
        )
        assert more.workflow_steps == base.workflow_steps
        assert more.decision_surface > base.decision_surface


class TestAdvancedModelMetrics:
    def test_figure14_model_counts(self):
        metrics = measure_model(build_fig14_model())
        assert metrics.workflow_types == 1          # one private process
        assert metrics.public_processes == 4        # 2 protocols x 2 roles
        assert metrics.bindings == 6                # 4 protocol + 2 application
        assert metrics.business_rules == 6          # 4 approval + 2 routing
        assert metrics.mappings == 32               # full catalog incl. fulfillment + quotation
        assert metrics.partners == 2
        assert metrics.applications == 2
        # the private process itself contains no transformations or
        # partner-specific terms
        assert metrics.inline_transform_steps == 0
        assert metrics.inline_rule_terms == 0

    def test_total_elements_positive(self):
        assert measure_model(build_fig14_model()).total_elements > 0
