"""Small-gap tests: minor paths not covered elsewhere."""

import pytest

from repro.analysis.scenarios import build_two_enterprise_pair
from repro.core.enterprise import Enterprise
from repro.errors import BindingError, PartnerError, ProtocolError


class TestEnterpriseEdges:
    def test_poll_van_without_van_is_noop(self, network):
        enterprise = Enterprise("solo", network)
        assert enterprise.poll_van() == 0

    def test_update_unknown_partner_rejected(self, network):
        from repro.partners.profile import TradingPartner

        enterprise = Enterprise("solo", network)
        with pytest.raises(PartnerError):
            enterprise.model.partners.update_partner(TradingPartner("ghost"))

    def test_rule_engine_alias(self, network):
        enterprise = Enterprise("solo", network)
        assert enterprise.rules is enterprise.model.rules


class TestIntegrationEdges:
    def test_consuming_outbound_binding_is_an_error(self):
        """A binding that consumes an *outbound* document would silently
        swallow a business reply — the engine treats it as a wiring bug."""
        from repro.core.binding import BindingStep

        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
        route = pair.buyer.model.route("rosettanet", "buyer")
        binding = pair.buyer.model.bindings[route.binding]
        binding.outbound.insert(0, BindingStep("drop", "consume"))
        pair.buyer.wfms.raise_on_failure = False
        pair.buyer.submit_order(
            "SAP", "ACME", "PO-CONSUME",
            [{"sku": "X", "quantity": 1, "unit_price": 1.0}],
        )
        instances = pair.buyer.wfms.database.list_instances()
        assert instances[0].status == "failed"
        assert "consumed" in instances[0].error

    def test_start_conversation_rejects_non_initiating_definition(self):
        from repro.documents.normalized import make_po_ack, make_purchase_order

        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
        po = make_purchase_order(
            "PO-NI", "TP1", "ACME", [{"sku": "X", "quantity": 1, "unit_price": 1.0}]
        )
        poa = make_po_ack(po)
        # the seller cannot *initiate* a conversation with a POA — its
        # public process for the seller role only responds
        with pytest.raises(Exception) as excinfo:
            pair.seller.b2b.start_conversation("TP1", poa, our_role="seller")
        assert isinstance(excinfo.value, (ProtocolError,)) or "agreement" in str(
            excinfo.value
        ).lower()

    def test_auto_ack_without_receipt_builder_rejected(self):
        """A public process with auto_ack steps on a protocol without a
        receipt builder is a configuration error surfaced at runtime."""
        from repro.core.integration import Conversation
        from repro.core.public_process import PublicProcessDefinition, PublicStep
        from repro.core.public_process import PublicProcessInstance

        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
        definition = PublicProcessDefinition(
            "x", "rosettanet", "seller", "rosettanet-xml",
            [PublicStep("bad", "send", "receipt_ack", {"auto_ack": True})],
        )
        conversation = Conversation(
            conversation_id="C-X", protocol="rosettanet", partner_id="TP1",
            role="seller", public=PublicProcessInstance(definition, "C-X", "TP1"),
        )
        with pytest.raises(ProtocolError):
            pair.seller.b2b._drive_auto(conversation)


class TestCrossFormatReExport:
    def test_erp_ack_reexports_to_every_wire_format(self, registry):
        """Figure 9's 'Transform SAP to RN POA' path: an acknowledgment the
        SAP simulator produced natively re-exports to every wire format
        through the hub without loss of business content."""
        from repro.backend import SapSimulator

        feeder = SapSimulator("feeder")
        erp = SapSimulator("SAP")
        erp.store_document(
            feeder.enter_order(
                "PO-XF", "TP1", "ACME",
                [{"sku": "X", "quantity": 2, "unit_price": 50.0}],
            )
        )
        native_ack = erp.extract_documents("po_ack")[0]
        for wire_format in ("edi-x12", "rosettanet-xml", "oagis-bod", "oracle-oif"):
            exported = registry.transform(native_ack, wire_format)
            back = registry.transform(exported, "normalized")
            assert back.get("header.po_number") == "PO-XF"
            assert back.get("header.status") == "accepted"
            assert back.get("summary.accepted_amount") == pytest.approx(100.0)


class TestTransformerEdges:
    def test_identity_transform_ignores_unknown_format(self, registry, sample_po):
        # identity never needs a route, even for formats with no mappings
        sample_po.format_name = "exotic"
        assert registry.transform(sample_po, "exotic") is sample_po

    def test_binding_error_on_missing_document(self, registry):
        from repro.core.binding import Binding, BindingStep

        binding = Binding(
            "b", "private", public_process="p",
            inbound=[
                BindingStep("drop", "consume"),
            ],
            outbound=[
                BindingStep("make", "transform", target_format="edi-x12"),
            ],
        )
        with pytest.raises(BindingError):
            binding._run_chain(
                [BindingStep("t", "transform", target_format="edi-x12")],
                None, registry, {},
            )
