"""Tests for the private-process builders (Section 4.4).

The headline assertions verify what the paper says must be true of a
private process: it is *trading partner independent* — no partner ids, no
protocol names, no wire formats, no thresholds anywhere in the definition.
"""

import json

import pytest

from repro.core.private_process import buyer_po_process, seller_po_process
from repro.workflow.definitions import WorkflowType


@pytest.fixture(params=["seller", "buyer"])
def process(request) -> WorkflowType:
    if request.param == "seller":
        return seller_po_process(owner="ACME")
    return buyer_po_process(owner="TP1")


class TestPartnerIndependence:
    def test_no_partner_names_in_definition(self, process):
        text = json.dumps(process.to_dict())
        for forbidden in ("TP1", "TP2", "TP3"):
            if process.owner != forbidden:
                assert forbidden not in text

    def test_no_wire_formats_or_protocols(self, process):
        text = json.dumps(process.to_dict())
        for forbidden in ("edi", "rosettanet", "oagis", "x12", "idoc", "oif",
                          "EDI", "RosettaNet", "OAGIS"):
            assert forbidden not in text

    def test_no_amount_thresholds(self, process):
        text = json.dumps(process.to_dict())
        for forbidden in ("55000", "40000", "10000", "550000"):
            assert forbidden not in text

    def test_rule_decisions_are_externalized(self, process):
        rule_steps = process.steps_tagged("business-rule")
        assert rule_steps, "private process must call external rules"
        for step in rule_steps:
            assert step.activity == "evaluate_business_rule"
            assert "function" in step.params

    def test_no_inline_transformations(self, process):
        assert process.steps_tagged("transformation") == []


class TestSellerStructure:
    @pytest.fixture
    def seller(self):
        return seller_po_process()

    def test_figure13_steps_present(self, seller):
        ids = set(seller.steps)
        assert {"check_need_for_approval", "approve_po", "store_po",
                "extract_poa", "return_poa"} <= ids

    def test_routing_is_a_rule_too(self, seller):
        step = seller.step("select_target")
        assert step.params["function"] == "select_target_application"

    def test_approval_branches(self, seller):
        conditions = {
            (t.source, t.target): t.condition for t in seller.transitions
        }
        assert conditions[("check_need_for_approval", "approve_po")] == (
            "approval_required == True"
        )
        # declined approvals take the rejection path
        assert ("approve_po", "build_rejection") in conditions

    def test_connection_steps_tagged(self, seller):
        connection = {s.step_id for s in seller.steps_tagged("connection")}
        assert connection == {"return_poa", "return_rejection"}

    def test_validates_as_workflow_type(self, seller):
        # round-trips through the definition serializer
        assert WorkflowType.from_dict(seller.to_dict()).step_count() == seller.step_count()


class TestBuyerStructure:
    @pytest.fixture
    def buyer(self):
        return buyer_po_process()

    def test_figure1_left_steps_present(self, buyer):
        ids = set(buyer.steps)
        assert {"extract_po", "check_need_for_approval", "approve_po",
                "send_po", "await_poa", "store_poa"} <= ids

    def test_unapproved_orders_cancelled(self, buyer):
        targets = {
            (t.source, t.target): t for t in buyer.transitions
        }
        assert ("approve_po", "cancel_order") in targets
        assert targets[("approve_po", "cancel_order")].otherwise

    def test_conversation_flows_through_variables(self, buyer):
        send = buyer.step("send_po")
        assert send.outputs == {"conversation_id": "conversation_id"}
        await_step = buyer.step("await_poa")
        assert await_step.inputs == {"conversation_id": "conversation_id"}
