"""Tests for public processes and their sequencing guard (Section 4.1)."""

import pytest

from repro.core.public_process import (
    PublicProcessDefinition,
    PublicProcessInstance,
    PublicStep,
    buyer_request_reply,
    seller_request_reply,
)
from repro.errors import ProtocolError


class TestPublicStep:
    def test_requires_id_and_known_kind(self):
        with pytest.raises(ProtocolError):
            PublicStep("", "receive", "purchase_order")
        with pytest.raises(ProtocolError):
            PublicStep("s", "teleport")

    def test_wire_steps_need_doc_type(self):
        with pytest.raises(ProtocolError):
            PublicStep("s", "receive")
        with pytest.raises(ProtocolError):
            PublicStep("s", "send")
        PublicStep("s", "to_binding")  # control steps don't


class TestDefinition:
    def test_seller_template_shape(self):
        definition = seller_request_reply("p/seller", "proto", "fmt")
        kinds = [step.kind for step in definition.steps]
        assert kinds == ["receive", "to_binding", "from_binding", "send"]
        assert definition.step_count() == 4
        assert definition.connection_step_count() == 2
        assert not definition.initiating()

    def test_buyer_template_shape(self):
        definition = buyer_request_reply("p/buyer", "proto", "fmt")
        kinds = [step.kind for step in definition.steps]
        assert kinds == ["from_binding", "send", "receive", "to_binding"]
        assert definition.initiating()

    def test_empty_definition_rejected(self):
        with pytest.raises(ProtocolError):
            PublicProcessDefinition("x", "p", "buyer", "fmt", [])

    def test_bad_role_rejected(self):
        with pytest.raises(ProtocolError):
            PublicProcessDefinition("x", "p", "middleman", "fmt",
                                    [PublicStep("s", "to_binding")])

    def test_duplicate_step_ids_rejected(self):
        steps = [PublicStep("s", "to_binding"), PublicStep("s", "from_binding")]
        with pytest.raises(ProtocolError):
            PublicProcessDefinition("x", "p", "buyer", "fmt", steps)

    def test_to_dict_is_stable(self):
        definition = seller_request_reply("p/seller", "proto", "fmt")
        assert definition.to_dict() == definition.to_dict()
        assert definition.to_dict()["steps"][0]["kind"] == "receive"


class TestInstanceSequencing:
    @pytest.fixture
    def instance(self):
        return PublicProcessInstance(
            seller_request_reply("p/seller", "proto", "fmt"), "C1", "TP1"
        )

    def test_happy_path(self, instance):
        instance.expect("receive", "purchase_order")
        instance.complete_current()
        instance.expect("to_binding")
        instance.complete_current()
        instance.expect("from_binding")
        instance.complete_current()
        instance.expect("send", "po_ack")
        instance.complete_current()
        assert instance.completed
        assert len(instance.trace) == 4

    def test_out_of_order_message_rejected(self, instance):
        """The Section 3 sequencing hazard made loud: a send arriving
        where a receive is expected is a protocol violation."""
        with pytest.raises(ProtocolError) as excinfo:
            instance.expect("send", "po_ack")
        assert "expected receive" in str(excinfo.value)

    def test_wrong_doc_type_rejected(self, instance):
        with pytest.raises(ProtocolError):
            instance.expect("receive", "invoice")

    def test_step_after_completion_rejected(self, instance):
        for _ in range(4):
            instance.complete_current()
        assert instance.completed
        with pytest.raises(ProtocolError):
            instance.current_step()
        with pytest.raises(ProtocolError):
            instance.expect("receive", "purchase_order")

    def test_trace_records_progress(self, instance):
        instance.complete_current("got PO")
        assert instance.trace == ["receive_request:receive got PO"]
