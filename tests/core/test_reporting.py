"""Tests for the operational reporting module."""

import pytest

from repro.analysis.scenarios import build_two_enterprise_pair
from repro.core.enterprise import run_community
from repro.core.reporting import model_inventory, render_report, runtime_statistics

LINES = [{"sku": "X", "quantity": 2, "unit_price": 100.0}]


@pytest.fixture
def ran_pair():
    pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
    pair.buyer.submit_order("SAP", "ACME", "PO-REP", LINES)
    run_community(pair.enterprises())
    return pair


class TestModelInventory:
    def test_covers_every_kind(self, ran_pair):
        inventory = model_inventory(ran_pair.seller.model)
        assert inventory["enterprise"] == "ACME"
        assert inventory["protocols"] == ["rosettanet"]
        assert len(inventory["public_processes"]) == 2
        assert len(inventory["bindings"]) == 3  # 2 protocol + 1 application
        assert [w["name"] for w in inventory["private_processes"]] == [
            "private-po-seller"
        ]
        assert {r["function"] for r in inventory["rule_sets"]} == {
            "check_need_for_approval", "select_target_application",
        }
        assert inventory["applications"] == {"Oracle": "oracle-oif"}

    def test_metrics_embedded(self, ran_pair):
        inventory = model_inventory(ran_pair.seller.model)
        assert inventory["metrics"]["total_elements"] > 0
        assert inventory["metrics"]["business_rules"] == 2

    def test_initiating_flags(self, ran_pair):
        inventory = model_inventory(ran_pair.buyer.model)
        flags = {d["name"]: d["initiating"] for d in inventory["public_processes"]}
        assert flags["rosettanet/3a4/buyer"] is True
        assert flags["rosettanet/3a4/seller"] is False


class TestRuntimeStatistics:
    def test_counts_after_a_round_trip(self, ran_pair):
        statistics = runtime_statistics(ran_pair.seller)
        assert statistics["conversations"] == {"total": 1, "completed": 1}
        assert statistics["messages"]["business_received"] == 1
        assert statistics["messages"]["business_sent"] == 1
        assert statistics["workflow_instances"]["completed"] == 1
        assert statistics["rule_evaluations"]["check_need_for_approval"] == 1
        assert statistics["rule_evaluations"]["select_target_application"] == 1
        assert statistics["backends"]["Oracle"]["orders"] == 1
        assert statistics["faults"] == 0
        assert statistics["transformations"] >= 4

    def test_fresh_enterprise_all_zero(self):
        pair = build_two_enterprise_pair("rosettanet")
        statistics = runtime_statistics(pair.buyer)
        assert statistics["conversations"] == {"total": 0}
        assert statistics["steps_executed"] == 0


class TestRenderedReport:
    def test_report_is_readable_text(self, ran_pair):
        text = render_report(ran_pair.seller)
        assert "ACME: integration report" in text
        assert "private-po-seller" in text
        assert "check_need_for_approval" in text
        assert "conversations : {'total': 1, 'completed': 1}" in text

    def test_report_renders_for_every_scenario_enterprise(self, ran_pair):
        for enterprise in ran_pair.enterprises():
            assert render_report(enterprise)
