"""Tests for the external business-rule engine (Section 4.3)."""

import pytest

from repro.core.rules import (
    BusinessRule,
    RuleEngine,
    RuleSet,
    approval_rule_set,
    routing_rule_set,
)
from repro.documents.normalized import make_purchase_order
from repro.errors import NoApplicableRuleError, RuleError


def _po(amount_per_unit, quantity=1):
    return make_purchase_order(
        "P1", "TP1", "ACME",
        [{"sku": "X", "quantity": quantity, "unit_price": amount_per_unit}],
    )


class TestBusinessRule:
    def test_expression_rule(self):
        rule = BusinessRule("r", source="TP1", target="SAP",
                            expression="document.amount >= 55000")
        assert rule.applies("TP1", "SAP")
        assert not rule.applies("TP2", "SAP")
        assert rule.evaluate("TP1", "SAP", _po(60000)) is True
        assert rule.evaluate("TP1", "SAP", _po(100)) is False

    def test_wildcard_source_and_target(self):
        rule = BusinessRule("r", expression="True")
        assert rule.applies("anyone", "anything")

    def test_body_rule(self):
        rule = BusinessRule("r", body=lambda s, t, d: f"{s}->{t}")
        assert rule.evaluate("a", "b", _po(1)) == "a->b"

    def test_exactly_one_of_expression_or_body(self):
        with pytest.raises(RuleError):
            BusinessRule("r")
        with pytest.raises(RuleError):
            BusinessRule("r", expression="True", body=lambda s, t, d: 1)

    def test_body_error_wrapped(self):
        rule = BusinessRule("r", body=lambda s, t, d: 1 / 0)
        with pytest.raises(RuleError):
            rule.evaluate("a", "b", _po(1))

    def test_requires_name(self):
        with pytest.raises(RuleError):
            BusinessRule("", expression="True")

    def test_fingerprint_changes_with_expression(self):
        first = BusinessRule("r", expression="document.amount >= 1")
        second = BusinessRule("r", expression="document.amount >= 2")
        assert first.fingerprint() != second.fingerprint()


class TestRuleSet:
    def test_first_match_wins(self):
        rule_set = RuleSet("f", [
            BusinessRule("specific", source="TP1", expression="'first'"),
            BusinessRule("generic", expression="'second'"),
        ])
        assert rule_set.evaluate("TP1", "SAP", _po(1)) == "first"
        assert rule_set.evaluate("TP9", "SAP", _po(1)) == "second"

    def test_error_case_when_nothing_applies(self):
        """The paper's explicit 'result := error' branch."""
        rule_set = RuleSet("f", [BusinessRule("only", source="TP1", expression="True")])
        with pytest.raises(NoApplicableRuleError) as excinfo:
            rule_set.evaluate("TP9", "SAP", _po(1))
        assert excinfo.value.source == "TP9"
        assert excinfo.value.function == "f"
        assert rule_set.errors == 1

    def test_duplicate_rule_name_rejected(self):
        rule_set = RuleSet("f", [BusinessRule("a", expression="True")])
        with pytest.raises(RuleError):
            rule_set.add(BusinessRule("a", expression="False"))

    def test_remove(self):
        rule_set = RuleSet("f", [BusinessRule("a", expression="True")])
        rule_set.remove("a")
        assert rule_set.rules == []
        with pytest.raises(RuleError):
            rule_set.remove("a")

    def test_rules_for_query(self):
        rule_set = RuleSet("f", [
            BusinessRule("a", source="TP1", target="SAP", expression="True"),
            BusinessRule("b", source="TP1", target="Oracle", expression="True"),
        ])
        assert len(rule_set.rules_for(source="TP1")) == 2
        assert len(rule_set.rules_for(target="SAP")) == 1

    def test_evaluation_counter(self):
        rule_set = RuleSet("f", [BusinessRule("a", expression="True")])
        rule_set.evaluate("s", "t", _po(1))
        rule_set.evaluate("s", "t", _po(1))
        assert rule_set.evaluations == 2


class TestRuleEngine:
    def test_register_and_evaluate(self):
        engine = RuleEngine()
        engine.register(RuleSet("f", [BusinessRule("a", expression="42")]))
        assert engine.evaluate("f", "s", "t", _po(1)) == 42

    def test_duplicate_function_rejected(self):
        engine = RuleEngine()
        engine.register(RuleSet("f"))
        with pytest.raises(RuleError):
            engine.register(RuleSet("f"))

    def test_unknown_function_rejected(self):
        with pytest.raises(RuleError):
            RuleEngine().evaluate("ghost", "s", "t", _po(1))

    def test_rule_count(self):
        engine = RuleEngine()
        engine.register(RuleSet("f", [BusinessRule("a", expression="1")]))
        engine.register(RuleSet("g", [BusinessRule("b", expression="1"),
                                      BusinessRule("c", expression="1")]))
        assert engine.rule_count() == 3


class TestPaperRuleListing:
    """Section 4.3's check_need_for_approval, verbatim."""

    @pytest.fixture
    def rules(self):
        engine = RuleEngine()
        engine.register(
            approval_rule_set(
                {
                    ("SAP", "TP1"): 55000,
                    ("SAP", "TP2"): 40000,
                    ("Oracle", "TP1"): 55000,
                    ("Oracle", "TP2"): 40000,
                }
            )
        )
        return engine

    @pytest.mark.parametrize(
        ("source", "target", "amount", "expected"),
        [
            ("TP1", "SAP", 60000, True),      # business rule 1
            ("TP1", "SAP", 54999, False),
            ("TP2", "SAP", 45000, True),      # business rule 2
            ("TP2", "SAP", 39999, False),
            ("TP1", "Oracle", 55000, True),   # business rule 3 (boundary)
            ("TP2", "Oracle", 40000, True),   # business rule 4 (boundary)
            ("TP2", "Oracle", 100, False),
        ],
    )
    def test_four_rules(self, rules, source, target, amount, expected):
        result = rules.evaluate("check_need_for_approval", source, target, _po(amount))
        assert result is expected

    def test_unknown_pair_is_the_error_case(self, rules):
        with pytest.raises(NoApplicableRuleError):
            rules.evaluate("check_need_for_approval", "TP3", "SAP", _po(1))

    def test_result_is_boolean(self, rules):
        result = rules.evaluate("check_need_for_approval", "TP1", "SAP", _po(60000))
        assert isinstance(result, bool)


class TestRoutingRules:
    def test_routing_by_partner(self):
        rule_set = routing_rule_set({"TP1": "SAP", "TP2": "Oracle"})
        assert rule_set.evaluate("TP1", "", _po(1)) == "SAP"
        assert rule_set.evaluate("TP2", "", _po(1)) == "Oracle"

    def test_default_route(self):
        rule_set = routing_rule_set({"TP1": "SAP"}, default="Oracle")
        assert rule_set.evaluate("TP9", "", _po(1)) == "Oracle"

    def test_no_default_means_error_case(self):
        rule_set = routing_rule_set({"TP1": "SAP"})
        with pytest.raises(NoApplicableRuleError):
            rule_set.evaluate("TP9", "", _po(1))
