"""Property-based round trips for the fulfillment/quotation documents.

Same statement as ``test_roundtrip_property``, extended to the ship
notice, invoice (EDI 856/810 and OAGIS) and RFQ/quote (OAGIS) layouts:
the full wire path is lossless for random documents.
"""

from hypothesis import given, settings, strategies as st

from repro.documents import edi, oagis
from repro.documents.normalized import (
    make_invoice,
    make_purchase_order,
    make_quote,
    make_rfq,
    make_ship_notice,
)
from repro.transform.catalog import build_standard_registry

REGISTRY = build_standard_registry()

MODULES = {edi.EDI_X12: edi, oagis.OAGIS: oagis}

_skus = st.from_regex(r"[A-Z0-9][A-Z0-9\-]{0,8}", fullmatch=True)
_quantities = st.integers(1, 9999).map(float)
_prices = st.integers(0, 10_000_000).map(lambda cents: cents / 100)
_po_numbers = st.from_regex(r"PO-[0-9]{1,6}", fullmatch=True)
_partner_ids = st.from_regex(r"[A-Z]{2,8}", fullmatch=True)
_times = st.integers(0, 10_000_000).map(lambda t: t / 10)

_po_lines = st.lists(
    st.fixed_dictionaries(
        {"sku": _skus, "quantity": _quantities, "unit_price": _prices}
    ),
    min_size=1,
    max_size=5,
    unique_by=lambda line: line["sku"],
)


@st.composite
def purchase_orders(draw):
    return make_purchase_order(
        draw(_po_numbers), draw(_partner_ids), draw(_partner_ids),
        draw(_po_lines), issued_at=draw(_times),
    )


def _roundtrip(document, format_name):
    module = MODULES[format_name]
    wire_document = REGISTRY.transform(document, format_name)
    parsed = module.from_wire(module.to_wire(wire_document))
    assert parsed == wire_document, f"wire roundtrip broke for {format_name}"
    back = REGISTRY.transform(parsed, "normalized")
    assert back == document, f"semantic roundtrip broke for {format_name}"


@settings(max_examples=30, deadline=None)
@given(purchase_orders(), st.sampled_from(sorted(MODULES)), _times)
def test_ship_notice_lossless(po, format_name, issued_at):
    asn = make_ship_notice(po, f"SHIP-{po.get('header.po_number')}",
                           issued_at=issued_at)
    _roundtrip(asn, format_name)


@settings(max_examples=30, deadline=None)
@given(
    purchase_orders(),
    st.sampled_from(sorted(MODULES)),
    st.integers(0, 25).map(lambda percent: percent / 100),
    _times,
)
def test_invoice_lossless(po, format_name, tax_rate, issued_at):
    invoice = make_invoice(po, f"INV-{po.get('header.po_number')}",
                           tax_rate=tax_rate, issued_at=issued_at)
    _roundtrip(invoice, format_name)


@settings(max_examples=30, deadline=None)
@given(purchase_orders(), _times)
def test_invoice_total_cents_exact(po, issued_at):
    """The X12 TDS cents encoding must not lose a cent."""
    invoice = make_invoice(po, "INV-C", issued_at=issued_at)
    wire_document = REGISTRY.transform(invoice, edi.EDI_X12)
    expected_cents = int(round(invoice.get("summary.total_due") * 100))
    assert wire_document.get("tds.total_cents") == expected_cents
    back = REGISTRY.transform(wire_document, "normalized")
    assert back.get("summary.total_due") == invoice.get("summary.total_due")


_rfq_lines = st.lists(
    st.fixed_dictionaries({"sku": _skus, "quantity": _quantities}),
    min_size=1,
    max_size=5,
    unique_by=lambda line: line["sku"],
)


@st.composite
def rfqs(draw):
    return make_rfq(
        f"RFQ-{draw(st.integers(1, 99999))}",
        draw(_partner_ids), draw(_partner_ids),
        draw(_rfq_lines),
        respond_by=draw(_times),
        issued_at=draw(_times),
    )


@settings(max_examples=30, deadline=None)
@given(rfqs())
def test_rfq_lossless_over_oagis(rfq):
    wire_document = REGISTRY.transform(rfq, oagis.OAGIS)
    parsed = oagis.from_wire(oagis.to_wire(wire_document))
    assert parsed == wire_document
    assert REGISTRY.transform(parsed, "normalized") == rfq


@settings(max_examples=30, deadline=None)
@given(rfqs(), st.data())
def test_quote_lossless_over_oagis(rfq, data):
    prices = {
        line["sku"]: data.draw(_prices, label=f"price[{line['sku']}]")
        for line in rfq.get("lines")
    }
    quote = make_quote(rfq, prices, f"Q-{rfq.get('header.rfq_number')}",
                       valid_until=data.draw(_times, label="valid_until"))
    wire_document = REGISTRY.transform(quote, oagis.OAGIS)
    parsed = oagis.from_wire(oagis.to_wire(wire_document))
    assert parsed == wire_document
    assert REGISTRY.transform(parsed, "normalized") == quote
