"""Tests for the generic document model and path language."""

import pytest
from hypothesis import given, strategies as st

from repro.documents.model import APPEND, Document, DocumentPath
from repro.errors import DocumentError, DocumentPathError


@pytest.fixture
def doc():
    return Document(
        "normalized",
        "purchase_order",
        {
            "header": {"po_number": "PO-1", "amounts": {"total": 100.0}},
            "lines": [
                {"sku": "A", "quantity": 1.0},
                {"sku": "B", "quantity": 2.0},
            ],
        },
    )


class TestConstruction:
    def test_requires_format(self):
        with pytest.raises(DocumentError):
            Document("", "purchase_order")

    def test_requires_doc_type(self):
        with pytest.raises(DocumentError):
            Document("normalized", "")

    def test_root_must_be_dict(self):
        with pytest.raises(DocumentError):
            Document("normalized", "po", data=[1, 2])  # type: ignore[arg-type]

    def test_default_data_is_empty_dict(self):
        assert Document("f", "t").data == {}


class TestPathCompilation:
    def test_simple_path(self):
        assert DocumentPath("header.po_number").steps == ("header", "po_number")

    def test_indexed_path(self):
        assert DocumentPath("lines[0].sku").steps == ("lines", 0, "sku")

    def test_negative_index(self):
        assert DocumentPath("lines[-1].sku").steps == ("lines", -1, "sku")

    def test_append_marker(self):
        steps = DocumentPath("lines[+]").steps
        assert steps[0] == "lines" and steps[1] is APPEND

    def test_multi_index(self):
        assert DocumentPath("grid[1][2]").steps == ("grid", 1, 2)

    @pytest.mark.parametrize("bad", ["", " ", "a..b", "[0]", "a[b]", "a.", "1abc"])
    def test_invalid_paths_rejected(self, bad):
        with pytest.raises(DocumentPathError):
            DocumentPath(bad)

    def test_compiled_paths_are_reusable_and_hashable(self):
        p1, p2 = DocumentPath("a.b"), DocumentPath("a.b")
        assert p1 == p2
        assert hash(p1) == hash(p2)


class TestGet:
    def test_nested_field(self, doc):
        assert doc.get("header.amounts.total") == 100.0

    def test_list_index(self, doc):
        assert doc.get("lines[1].sku") == "B"

    def test_negative_index(self, doc):
        assert doc.get("lines[-1].sku") == "B"

    def test_compiled_path_accepted(self, doc):
        assert doc.get(DocumentPath("header.po_number")) == "PO-1"

    def test_missing_field_raises(self, doc):
        with pytest.raises(DocumentPathError):
            doc.get("header.missing")

    def test_out_of_range_index_raises(self, doc):
        with pytest.raises(DocumentPathError):
            doc.get("lines[5].sku")

    def test_default_suppresses_error(self, doc):
        assert doc.get("header.missing", default="fallback") == "fallback"

    def test_default_not_used_when_present(self, doc):
        assert doc.get("header.po_number", default="x") == "PO-1"

    def test_indexing_scalar_raises(self, doc):
        with pytest.raises(DocumentPathError):
            doc.get("header.po_number[0]")

    def test_has(self, doc):
        assert doc.has("lines[0].sku")
        assert not doc.has("lines[9].sku")


class TestSet:
    def test_set_existing(self, doc):
        doc.set("header.po_number", "PO-2")
        assert doc.get("header.po_number") == "PO-2"

    def test_creates_intermediate_dicts(self, doc):
        doc.set("summary.totals.gross", 1.0)
        assert doc.get("summary.totals.gross") == 1.0

    def test_append_to_list(self, doc):
        doc.set("lines[+].sku", "C")
        assert doc.get("lines[2].sku") == "C"

    def test_append_scalar(self, doc):
        doc.set("tags[+]", "urgent")
        assert doc.get("tags[0]") == "urgent"

    def test_set_one_past_end_appends(self, doc):
        doc.set("lines[2]", {"sku": "C"})
        assert doc.get("lines[2].sku") == "C"

    def test_set_with_hole_raises(self, doc):
        with pytest.raises(DocumentPathError):
            doc.set("lines[7].sku", "X")

    def test_creates_list_for_index_step(self):
        document = Document("f", "t")
        document.set("items[0].name", "first")
        assert document.get("items[0].name") == "first"

    def test_cannot_set_field_on_list(self, doc):
        with pytest.raises(DocumentPathError):
            doc.set("lines.sku", "X")


class TestDelete:
    def test_delete_field(self, doc):
        doc.delete("header.po_number")
        assert not doc.has("header.po_number")

    def test_delete_list_item(self, doc):
        doc.delete("lines[0]")
        assert doc.get("lines[0].sku") == "B"

    def test_delete_missing_raises(self, doc):
        with pytest.raises(DocumentPathError):
            doc.delete("header.nope")


class TestTraversal:
    def test_iter_leaves_sorted_and_complete(self, doc):
        leaves = dict(doc.iter_leaves())
        assert leaves["header.po_number"] == "PO-1"
        assert leaves["lines[1].quantity"] == 2.0
        assert len(leaves) == doc.leaf_count() == 6

    def test_leaf_paths_reparse(self, doc):
        for path, value in doc.iter_leaves():
            assert doc.get(path) == value


class TestLifecycle:
    def test_copy_is_deep(self, doc):
        clone = doc.copy()
        clone.set("lines[0].sku", "Z")
        assert doc.get("lines[0].sku") == "A"

    def test_to_from_dict_roundtrip(self, doc):
        assert Document.from_dict(doc.to_dict()) == doc

    def test_to_dict_detached(self, doc):
        payload = doc.to_dict()
        payload["data"]["header"]["po_number"] = "HACKED"
        assert doc.get("header.po_number") == "PO-1"

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(DocumentError):
            Document.from_dict({"format": "f"})

    def test_equality_considers_format_and_type(self, doc):
        other = Document("edi-x12", doc.doc_type, doc.data)
        assert doc != other


# -- property-based ----------------------------------------------------------

_scalars = st.one_of(
    st.integers(-1000, 1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=10),
    st.booleans(),
)
_keys = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)
_trees = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_keys, children, max_size=4),
    ),
    max_leaves=20,
)


@given(st.dictionaries(_keys, _trees, max_size=5))
def test_leaf_paths_always_resolve(data):
    document = Document("f", "t", data)
    for path, value in document.iter_leaves():
        assert document.get(path) == value


@given(st.dictionaries(_keys, _trees, max_size=5))
def test_serialization_roundtrip(data):
    document = Document("f", "t", data)
    assert Document.from_dict(document.to_dict()) == document
