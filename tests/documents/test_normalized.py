"""Tests for the normalized document builders and schemas."""

import pytest

from repro.documents import normalized
from repro.documents.normalized import (
    make_invoice,
    make_po_ack,
    make_purchase_order,
    make_ship_notice,
    po_total_amount,
    schema_for,
)
from repro.errors import DocumentError


class TestPurchaseOrder:
    def test_totals_computed(self, sample_po):
        assert sample_po.get("summary.total_amount") == pytest.approx(12750.0)
        assert sample_po.get("summary.line_count") == 2

    def test_line_numbers_default_sequentially(self, sample_po):
        assert [line["line_no"] for line in sample_po.get("lines")] == [1, 2]

    def test_explicit_line_numbers_kept(self):
        po = make_purchase_order(
            "P", "B", "S", [{"line_no": 7, "sku": "X", "quantity": 1, "unit_price": 2}]
        )
        assert po.get("lines[0].line_no") == 7

    def test_po_amount_accessor(self, sample_po):
        assert po_total_amount(sample_po) == pytest.approx(12750.0)

    def test_requires_lines(self):
        with pytest.raises(DocumentError):
            make_purchase_order("P", "B", "S", [])

    def test_line_missing_sku_rejected(self):
        with pytest.raises(DocumentError):
            make_purchase_order("P", "B", "S", [{"quantity": 1, "unit_price": 1}])

    def test_money_rounded_to_cents(self):
        po = make_purchase_order(
            "P", "B", "S", [{"sku": "X", "quantity": 3, "unit_price": 0.1}]
        )
        assert po.get("summary.total_amount") == 0.3

    def test_schema_accepts_builder_output(self, sample_po):
        schema_for("purchase_order").validate(sample_po)

    def test_default_document_id(self, sample_po):
        assert sample_po.get("header.document_id") == "PO-DOC-PO-1001"


class TestPoAck:
    def test_accepted_ack_covers_all_lines(self, sample_po):
        poa = make_po_ack(sample_po)
        assert poa.get("header.status") == "accepted"
        assert all(line["status"] == "accepted" for line in poa.get("lines"))
        assert poa.get("summary.accepted_amount") == pytest.approx(12750.0)

    def test_rejected_ack_zeroes_quantities(self, sample_po):
        poa = make_po_ack(sample_po, status="rejected")
        assert all(line["quantity"] == 0.0 for line in poa.get("lines"))
        assert poa.get("summary.accepted_amount") == 0.0

    def test_partial_ack_line_statuses(self, sample_poa):
        statuses = {line["line_no"]: line["status"] for line in sample_poa.get("lines")}
        assert statuses == {1: "accepted", 2: "backordered"}
        # only line 1 counts toward the accepted amount
        assert sample_poa.get("summary.accepted_amount") == pytest.approx(12000.0)

    def test_invalid_status_rejected(self, sample_po):
        with pytest.raises(DocumentError):
            make_po_ack(sample_po, status="maybe")

    def test_invalid_line_status_rejected(self, sample_po):
        with pytest.raises(DocumentError):
            make_po_ack(sample_po, line_statuses={1: "meh"})

    def test_only_purchase_orders_acknowledged(self, sample_po):
        poa = make_po_ack(sample_po)
        with pytest.raises(DocumentError):
            make_po_ack(poa)

    def test_schema_accepts_builder_output(self, sample_poa):
        schema_for("po_ack").validate(sample_poa)

    def test_roles_preserved(self, sample_po, sample_poa):
        assert sample_poa.get("header.buyer_id") == sample_po.get("header.buyer_id")
        assert sample_poa.get("header.seller_id") == sample_po.get("header.seller_id")


class TestInvoiceAndShipNotice:
    def test_invoice_totals_with_tax(self, sample_po):
        invoice = make_invoice(sample_po, "INV-9", tax_rate=0.1)
        assert invoice.get("summary.subtotal") == pytest.approx(12750.0)
        assert invoice.get("summary.tax") == pytest.approx(1275.0)
        assert invoice.get("summary.total_due") == pytest.approx(14025.0)
        schema_for("invoice").validate(invoice)

    def test_invoice_line_amounts(self, sample_po):
        invoice = make_invoice(sample_po, "INV-9")
        assert invoice.get("lines[0].amount") == pytest.approx(12000.0)

    def test_ship_notice(self, sample_po):
        asn = make_ship_notice(sample_po, "SHIP-1", carrier="FASTFREIGHT")
        assert asn.get("header.carrier") == "FASTFREIGHT"
        assert asn.get("summary.package_count") == 2
        assert asn.get("lines[0].quantity_shipped") == 10.0
        schema_for("ship_notice").validate(asn)


class TestSchemaRegistry:
    @pytest.mark.parametrize(
        "doc_type", ["purchase_order", "po_ack", "invoice", "ship_notice"]
    )
    def test_known_doc_types(self, doc_type):
        assert schema_for(doc_type).doc_type == doc_type

    def test_unknown_doc_type(self):
        with pytest.raises(DocumentError):
            schema_for("credit_note")

    def test_schema_rejects_negative_quantity(self, sample_po):
        sample_po.set("lines[0].quantity", -1.0)
        schema = schema_for("purchase_order")
        assert not schema.is_valid(sample_po)

    def test_status_vocabulary_is_closed(self):
        assert set(normalized.POA_STATUSES) == {"accepted", "rejected", "partial"}
        assert set(normalized.LINE_ACK_STATUSES) == {
            "accepted", "rejected", "backordered",
        }
