"""Tests for the RFQ/quote normalized documents and their OAGIS BODs."""

import pytest

from repro.documents import oagis
from repro.documents.normalized import make_quote, make_rfq, schema_for
from repro.errors import DocumentError, WireFormatError

RFQ_LINES = [
    {"sku": "GPU", "quantity": 10, "description": "accelerator"},
    {"sku": "PSU", "quantity": 5},
]


@pytest.fixture
def rfq():
    return make_rfq("RFQ-1", "TP1", "ACME", RFQ_LINES, respond_by=50.0, issued_at=1.0)


@pytest.fixture
def quote(rfq):
    return make_quote(rfq, {"GPU": 1450.0, "PSU": 250.0}, "Q-RFQ-1",
                      valid_until=200.0, issued_at=2.0)


class TestRfqBuilder:
    def test_structure(self, rfq):
        assert rfq.doc_type == "request_for_quote"
        assert rfq.get("header.respond_by") == 50.0
        assert rfq.get("summary.line_count") == 2
        assert rfq.get("lines[0].line_no") == 1
        schema_for("request_for_quote").validate(rfq)

    def test_no_prices_in_an_rfq(self, rfq):
        for line in rfq.get("lines"):
            assert "unit_price" not in line

    def test_requires_lines(self):
        with pytest.raises(DocumentError):
            make_rfq("R", "B", "S", [])

    def test_empty_seller_allowed_for_broadcast_base(self):
        rfq = make_rfq("R", "B", "", RFQ_LINES)
        assert rfq.get("header.seller_id") == ""
        schema_for("request_for_quote").validate(rfq)


class TestQuoteBuilder:
    def test_totals(self, quote):
        # 10*1450 + 5*250 = 15 750
        assert quote.get("summary.total_amount") == pytest.approx(15750.0)
        assert quote.get("header.rfq_number") == "RFQ-1"
        schema_for("quote").validate(quote)

    def test_roles_copied_from_rfq(self, rfq, quote):
        assert quote.get("header.buyer_id") == rfq.get("header.buyer_id")
        assert quote.get("header.seller_id") == rfq.get("header.seller_id")

    def test_missing_price_rejected(self, rfq):
        with pytest.raises(DocumentError) as excinfo:
            make_quote(rfq, {"GPU": 1450.0}, "Q-1")  # PSU unpriced
        assert "PSU" in str(excinfo.value)

    def test_only_rfqs_quotable(self, quote):
        with pytest.raises(DocumentError):
            make_quote(quote, {}, "Q-2")


class TestOagisQuotationWire:
    def test_rfq_roundtrip(self, registry, rfq):
        wire_doc = registry.transform(rfq, oagis.OAGIS)
        text = oagis.to_wire(wire_doc)
        assert "<GetQuote" in text and "<Get/>" in text
        parsed = oagis.from_wire(text)
        assert parsed == wire_doc
        assert registry.transform(parsed, "normalized") == rfq

    def test_quote_roundtrip(self, registry, quote):
        wire_doc = registry.transform(quote, oagis.OAGIS)
        text = oagis.to_wire(wire_doc)
        assert "<ShowQuote" in text and "<Show/>" in text
        parsed = oagis.from_wire(text)
        assert parsed == wire_doc
        assert registry.transform(parsed, "normalized") == quote

    def test_rfq_without_verb_rejected(self, registry, rfq):
        text = oagis.to_wire(registry.transform(rfq, oagis.OAGIS))
        with pytest.raises(WireFormatError):
            oagis.from_wire(text.replace("<Get/>", "<Fetch/>"))

    def test_quote_envelope_roles(self, registry, rfq, quote):
        rfq_wire = registry.transform(rfq, oagis.OAGIS)
        quote_wire = registry.transform(quote, oagis.OAGIS)
        # RFQ travels buyer -> seller, the quote back
        assert rfq_wire.get("application_area.sender_id") == "TP1"
        assert rfq_wire.get("application_area.receiver_id") == "ACME"
        assert quote_wire.get("application_area.sender_id") == "ACME"
        assert quote_wire.get("application_area.receiver_id") == "TP1"
