"""Property-based round trips: random POs/POAs through every format.

For every format F and a random normalized document d (built with default
document ids, which the mappings preserve):

    normalize(parse(serialize(to_F(d)))) == d

i.e. the full wire path — transform out, serialize, parse, transform back —
is lossless.  This is the strongest statement the reproduction makes about
its document substrate.
"""

from hypothesis import given, settings, strategies as st

from repro.documents import edi, idoc, oagis, oracle_oif, rosettanet
from repro.documents.normalized import make_po_ack, make_purchase_order
from repro.transform.catalog import build_standard_registry

REGISTRY = build_standard_registry()

MODULES = {
    edi.EDI_X12: edi,
    rosettanet.ROSETTANET: rosettanet,
    oagis.OAGIS: oagis,
    idoc.SAP_IDOC: idoc,
    oracle_oif.ORACLE_OIF: oracle_oif,
}

_skus = st.from_regex(r"[A-Z0-9][A-Z0-9\-]{0,8}", fullmatch=True)
_descriptions = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz 0123456789", max_size=20
).map(str.strip)
_quantities = st.integers(1, 9999).map(float)
_prices = st.integers(0, 10_000_000).map(lambda cents: cents / 100)

_lines = st.lists(
    st.fixed_dictionaries(
        {
            "sku": _skus,
            "quantity": _quantities,
            "unit_price": _prices,
            "description": _descriptions,
        }
    ),
    min_size=1,
    max_size=6,
)

# Short PO numbers keep the IDoc control field (16 chars) honest.
_po_numbers = st.from_regex(r"PO-[0-9]{1,6}", fullmatch=True)
_partner_ids = st.from_regex(r"[A-Z]{2,8}", fullmatch=True)
_times = st.integers(0, 10_000_000).map(lambda t: t / 10)


@st.composite
def purchase_orders(draw):
    return make_purchase_order(
        draw(_po_numbers),
        draw(_partner_ids),
        draw(_partner_ids),
        draw(_lines),
        issued_at=draw(_times),
    )


@st.composite
def po_acks(draw):
    po = draw(purchase_orders())
    line_numbers = [line["line_no"] for line in po.get("lines")]
    status = draw(st.sampled_from(["accepted", "rejected", "partial"]))
    line_statuses = {}
    if status == "partial":
        chosen = draw(
            st.lists(st.sampled_from(line_numbers), unique=True, max_size=len(line_numbers))
        )
        for line_no in chosen:
            line_statuses[line_no] = draw(
                st.sampled_from(["accepted", "rejected", "backordered"])
            )
    return make_po_ack(po, status=status, line_statuses=line_statuses,
                       issued_at=draw(_times))


def _roundtrip(document, format_name):
    module = MODULES[format_name]
    wire_document = REGISTRY.transform(document, format_name)
    parsed = module.from_wire(module.to_wire(wire_document))
    assert parsed == wire_document, f"wire roundtrip broke for {format_name}"
    back = REGISTRY.transform(parsed, "normalized")
    assert back == document, f"semantic roundtrip broke for {format_name}"


@settings(max_examples=40, deadline=None)
@given(purchase_orders(), st.sampled_from(sorted(MODULES)))
def test_purchase_order_full_path_lossless(po, format_name):
    _roundtrip(po, format_name)


@settings(max_examples=40, deadline=None)
@given(po_acks(), st.sampled_from(sorted(MODULES)))
def test_po_ack_full_path_lossless(poa, format_name):
    _roundtrip(poa, format_name)


@settings(max_examples=25, deadline=None)
@given(purchase_orders())
def test_total_amount_preserved_across_all_formats(po):
    expected = po.get("summary.total_amount")
    for format_name in MODULES:
        wire_document = REGISTRY.transform(po, format_name)
        back = REGISTRY.transform(wire_document, "normalized")
        assert back.get("summary.total_amount") == expected


@settings(max_examples=25, deadline=None)
@given(po_acks())
def test_status_vocabulary_survives_every_code_table(poa):
    expected = poa.get("header.status")
    expected_lines = [line["status"] for line in poa.get("lines")]
    for format_name in MODULES:
        wire_document = REGISTRY.transform(poa, format_name)
        back = REGISTRY.transform(wire_document, "normalized")
        assert back.get("header.status") == expected
        assert [line["status"] for line in back.get("lines")] == expected_lines
