"""Tests for document schemas and validation."""

import pytest

from repro.documents.model import Document
from repro.documents.schema import DocumentSchema, FieldSpec
from repro.errors import SchemaError, ValidationError


@pytest.fixture
def schema():
    return DocumentSchema(
        "test",
        format_name="normalized",
        doc_type="purchase_order",
        fields=[
            FieldSpec("header.po_number"),
            FieldSpec("header.amount", "number", check=lambda v: v >= 0,
                      check_label="amount >= 0"),
            FieldSpec("header.notes", required=False),
            FieldSpec("header.status", choices=("open", "closed")),
            FieldSpec(
                "lines",
                "list",
                min_items=1,
                items=DocumentSchema("line", fields=[
                    FieldSpec("sku"),
                    FieldSpec("quantity", "int"),
                ]),
            ),
        ],
    )


def _valid_doc():
    return Document(
        "normalized",
        "purchase_order",
        {
            "header": {"po_number": "PO-1", "amount": 10.0, "status": "open"},
            "lines": [{"sku": "A", "quantity": 1}],
        },
    )


class TestFieldSpec:
    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            FieldSpec("x", "decimal")

    def test_items_requires_list_type(self):
        with pytest.raises(SchemaError):
            FieldSpec("x", "str", items=DocumentSchema("s"))

    def test_bool_is_not_a_number(self):
        spec = FieldSpec("x", "number")
        doc = Document("f", "t", {"x": True})
        assert spec.violations_for(doc)

    def test_int_accepted_as_float(self):
        spec = FieldSpec("x", "float")
        doc = Document("f", "t", {"x": 3})
        assert spec.violations_for(doc) == []

    def test_crashing_check_reported_not_raised(self):
        spec = FieldSpec("x", "str", check=lambda v: v.undefined,
                         check_label="weird")
        doc = Document("f", "t", {"x": "s"})
        violations = spec.violations_for(doc)
        assert len(violations) == 1 and "weird" in violations[0]


class TestValidation:
    def test_valid_document_passes(self, schema):
        assert schema.is_valid(_valid_doc())
        schema.validate(_valid_doc())  # should not raise

    def test_missing_required_field(self, schema):
        doc = _valid_doc()
        doc.delete("header.po_number")
        assert any("po_number" in v for v in schema.violations(doc))

    def test_optional_field_may_be_absent(self, schema):
        assert schema.is_valid(_valid_doc())

    def test_wrong_type(self, schema):
        doc = _valid_doc()
        doc.set("header.amount", "ten")
        assert any("expected number" in v for v in schema.violations(doc))

    def test_choices_enforced(self, schema):
        doc = _valid_doc()
        doc.set("header.status", "pending")
        assert any("choices" in v for v in schema.violations(doc))

    def test_check_enforced(self, schema):
        doc = _valid_doc()
        doc.set("header.amount", -1)
        assert any("amount >= 0" in v for v in schema.violations(doc))

    def test_min_items(self, schema):
        doc = _valid_doc()
        doc.set("lines", [])
        assert any("at least 1" in v for v in schema.violations(doc))

    def test_item_schema_applied_per_element(self, schema):
        doc = _valid_doc()
        doc.set("lines[+]", {"sku": "B"})  # missing quantity
        violations = schema.violations(doc)
        assert any("lines[1].quantity" in v for v in violations)

    def test_non_dict_list_item(self, schema):
        doc = _valid_doc()
        doc.set("lines[+]", "not-a-line")
        assert any("expected dict item" in v for v in schema.violations(doc))

    def test_format_mismatch(self, schema):
        doc = _valid_doc()
        doc.format_name = "edi-x12"
        assert any("format mismatch" in v for v in schema.violations(doc))

    def test_doc_type_mismatch(self, schema):
        doc = _valid_doc()
        doc.doc_type = "invoice"
        assert any("doc_type mismatch" in v for v in schema.violations(doc))

    def test_validate_raises_with_all_violations(self, schema):
        doc = Document("normalized", "purchase_order", {"lines": []})
        with pytest.raises(ValidationError) as excinfo:
            schema.validate(doc)
        assert len(excinfo.value.violations) >= 3

    def test_violations_are_exhaustive_not_first_only(self, schema):
        doc = _valid_doc()
        doc.set("header.amount", -5)
        doc.set("header.status", "bogus")
        assert len(schema.violations(doc)) == 2
