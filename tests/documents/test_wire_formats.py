"""Tests for the five wire/back-end formats: structure, parsing, errors.

Each format gets the same treatment: wire round trip, envelope assertions,
schema checks, and malformed-input rejection.  The format documents are
produced from the normalized fixtures through the standard catalog — the
same path production code uses.
"""

import pytest

from repro.documents import edi, idoc, oagis, oracle_oif, rosettanet
from repro.errors import WireFormatError

FORMATS = {
    "edi": (edi, edi.EDI_X12),
    "rosettanet": (rosettanet, rosettanet.ROSETTANET),
    "oagis": (oagis, oagis.OAGIS),
    "idoc": (idoc, idoc.SAP_IDOC),
    "oif": (oracle_oif, oracle_oif.ORACLE_OIF),
}


@pytest.fixture(params=sorted(FORMATS))
def format_module(request):
    return FORMATS[request.param]


class TestWireRoundTrips:
    def test_po_roundtrip(self, format_module, registry, sample_po):
        module, format_name = format_module
        wire_doc = registry.transform(sample_po, format_name)
        assert module.from_wire(module.to_wire(wire_doc)) == wire_doc

    def test_poa_roundtrip(self, format_module, registry, sample_poa):
        module, format_name = format_module
        wire_doc = registry.transform(sample_poa, format_name)
        assert module.from_wire(module.to_wire(wire_doc)) == wire_doc

    def test_to_wire_rejects_wrong_format(self, format_module, sample_po):
        module, _ = format_module
        with pytest.raises(WireFormatError):
            module.to_wire(sample_po)  # normalized, not this format

    def test_from_wire_rejects_empty(self, format_module):
        module, _ = format_module
        with pytest.raises(WireFormatError):
            module.from_wire("")

    def test_from_wire_rejects_garbage(self, format_module):
        module, _ = format_module
        with pytest.raises(WireFormatError):
            module.from_wire("this is not a business document")

    def test_truncated_wire_rejected(self, format_module, registry, sample_po):
        # Structural corruption (a cut-off transmission) must be detected by
        # every parser.  Mid-value garbage inside a freeform field is
        # legitimately undetectable without checksums, so that is not
        # asserted here.
        module, format_name = format_module
        text = module.to_wire(registry.transform(sample_po, format_name))
        with pytest.raises(WireFormatError):
            module.from_wire(text[: len(text) // 2])


class TestEdiSpecifics:
    def test_segments_and_envelope(self, registry, sample_po):
        text = edi.to_wire(registry.transform(sample_po, edi.EDI_X12))
        segments = [s.split("*")[0] for s in text.strip().split("~") if s]
        assert segments[0] == "ISA"
        assert segments[1] == "GS"
        assert segments[2] == "ST"
        assert segments[-1] == "IEA"
        assert segments.count("PO1") == 2
        assert "PID" in segments  # line 1 has a description

    def test_850_transaction_set(self, registry, sample_po):
        doc = registry.transform(sample_po, edi.EDI_X12)
        assert doc.get("st.transaction_set") == "850"
        assert edi.edi_po_schema().is_valid(doc)

    def test_855_transaction_set(self, registry, sample_poa):
        doc = registry.transform(sample_poa, edi.EDI_X12)
        assert doc.get("st.transaction_set") == "855"
        assert edi.edi_poa_schema().is_valid(doc)

    def test_reserved_delimiter_in_value_rejected(self, registry, sample_po):
        doc = registry.transform(sample_po, edi.EDI_X12)
        doc.set("beg.po_number", "PO*1")
        with pytest.raises(WireFormatError):
            edi.to_wire(doc)

    def test_se_control_number_mismatch_rejected(self, registry, sample_po):
        text = edi.to_wire(registry.transform(sample_po, edi.EDI_X12))
        tampered = text.replace("SE*", "SE*999*", 1)
        with pytest.raises(WireFormatError):
            edi.from_wire(tampered)

    def test_unsupported_transaction_set(self, registry, sample_po):
        text = edi.to_wire(registry.transform(sample_po, edi.EDI_X12))
        with pytest.raises(WireFormatError):
            edi.from_wire(text.replace("ST*850", "ST*810"))

    def test_missing_lines_rejected(self):
        with pytest.raises(WireFormatError):
            edi.from_wire("ISA*00**00**ZZ*A*ZZ*B*0*0000*U*00401*1*0*P*>~GS*PO*A*B*0*0000*1*X*004010~ST*850*0001~")


class TestRosettaNetSpecifics:
    def test_root_elements(self, registry, sample_po, sample_poa):
        po_text = rosettanet.to_wire(registry.transform(sample_po, rosettanet.ROSETTANET))
        poa_text = rosettanet.to_wire(registry.transform(sample_poa, rosettanet.ROSETTANET))
        assert "<Pip3A4PurchaseOrderRequest>" in po_text
        assert "<Pip3A4PurchaseOrderConfirmation>" in poa_text

    def test_roles(self, registry, sample_po, sample_poa):
        po_doc = registry.transform(sample_po, rosettanet.ROSETTANET)
        poa_doc = registry.transform(sample_poa, rosettanet.ROSETTANET)
        assert po_doc.get("service_header.from_role") == "Buyer"
        assert poa_doc.get("service_header.from_role") == "Seller"

    def test_unknown_response_code_rejected(self, registry, sample_poa):
        text = rosettanet.to_wire(registry.transform(sample_poa, rosettanet.ROSETTANET))
        with pytest.raises(WireFormatError):
            rosettanet.from_wire(
                text.replace("<GlobalResponseCode>Partial", "<GlobalResponseCode>Whatever")
            )

    def test_unknown_root_rejected(self):
        with pytest.raises(WireFormatError):
            rosettanet.from_wire("<SomethingElse/>")

    def test_request_without_lines_rejected(self, registry, sample_po):
        doc = registry.transform(sample_po, rosettanet.ROSETTANET)
        doc.set("order.product_lines", [])
        text = rosettanet.to_wire(doc)
        with pytest.raises(WireFormatError):
            rosettanet.from_wire(text)


class TestOagisSpecifics:
    def test_bod_structure(self, registry, sample_po):
        text = oagis.to_wire(registry.transform(sample_po, oagis.OAGIS))
        assert "<ProcessPurchaseOrder" in text
        assert "<ApplicationArea>" in text
        assert "<DataArea>" in text
        assert "<Process/>" in text

    def test_acknowledge_verb(self, registry, sample_poa):
        text = oagis.to_wire(registry.transform(sample_poa, oagis.OAGIS))
        assert "<AcknowledgePurchaseOrder" in text
        assert "<Acknowledge/>" in text

    def test_missing_verb_rejected(self, registry, sample_po):
        text = oagis.to_wire(registry.transform(sample_po, oagis.OAGIS))
        with pytest.raises(WireFormatError):
            oagis.from_wire(text.replace("<Process/>", "<NotAVerb/>"))

    def test_unknown_ack_code_rejected(self, registry, sample_poa):
        text = oagis.to_wire(registry.transform(sample_poa, oagis.OAGIS))
        with pytest.raises(WireFormatError):
            oagis.from_wire(
                text.replace("<AcknowledgeCode>Modified", "<AcknowledgeCode>Meh")
            )


class TestIdocSpecifics:
    def test_segment_layout(self, registry, sample_po):
        text = idoc.to_wire(registry.transform(sample_po, idoc.SAP_IDOC))
        lines = text.splitlines()
        assert lines[0].startswith("EDI_DC40")
        assert lines[1].startswith("E1EDK01")
        assert sum(1 for line in lines if line.startswith("E1EDKA1")) == 2
        assert sum(1 for line in lines if line.startswith("E1EDP01")) == 2
        assert lines[-1].startswith("E1EDS01")

    def test_message_types(self, registry, sample_po, sample_poa):
        po_doc = registry.transform(sample_po, idoc.SAP_IDOC)
        poa_doc = registry.transform(sample_poa, idoc.SAP_IDOC)
        assert po_doc.get("control.message_type") == "ORDERS"
        assert poa_doc.get("control.message_type") == "ORDRSP"

    def test_field_overflow_rejected(self, registry, sample_po):
        doc = registry.transform(sample_po, idoc.SAP_IDOC)
        doc.set("header.curcy", "TOOLONG")
        with pytest.raises(WireFormatError):
            idoc.to_wire(doc)

    def test_unknown_segment_rejected(self):
        with pytest.raises(WireFormatError):
            idoc.from_wire("E9UNKNOWN  somedata")

    def test_duplicate_control_record_rejected(self, registry, sample_po):
        text = idoc.to_wire(registry.transform(sample_po, idoc.SAP_IDOC))
        first_line = text.splitlines()[0]
        with pytest.raises(WireFormatError):
            idoc.from_wire(first_line + "\n" + text)


class TestOifSpecifics:
    def test_record_layout(self, registry, sample_po):
        text = oracle_oif.to_wire(registry.transform(sample_po, oracle_oif.ORACLE_OIF))
        lines = text.splitlines()
        assert lines[0].startswith("PO_HEADERS_INTERFACE|")
        assert all(line.startswith("PO_LINES_INTERFACE|") for line in lines[1:])

    def test_pipe_in_value_escaped(self, registry, sample_po):
        doc = registry.transform(sample_po, oracle_oif.ORACLE_OIF)
        doc.set("lines[0].item_description", "big|pipe")
        parsed = oracle_oif.from_wire(oracle_oif.to_wire(doc))
        assert parsed.get("lines[0].item_description") == "big|pipe"

    def test_newline_in_value_escaped(self, registry, sample_po):
        doc = registry.transform(sample_po, oracle_oif.ORACLE_OIF)
        doc.set("lines[0].item_description", "two\nlines")
        parsed = oracle_oif.from_wire(oracle_oif.to_wire(doc))
        assert parsed.get("lines[0].item_description") == "two\nlines"

    def test_two_headers_rejected(self, registry, sample_po):
        text = oracle_oif.to_wire(registry.transform(sample_po, oracle_oif.ORACLE_OIF))
        header = text.splitlines()[0]
        with pytest.raises(WireFormatError):
            oracle_oif.from_wire(header + "\n" + text)

    def test_missing_column_rejected(self):
        with pytest.raises(WireFormatError):
            oracle_oif.from_wire("PO_HEADERS_INTERFACE|DOCUMENT_NUM=P1")

    def test_unknown_table_rejected(self):
        with pytest.raises(WireFormatError):
            oracle_oif.from_wire("PO_SECRET_TABLE|X=1")
