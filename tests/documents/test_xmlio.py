"""Tests for the minimal XML reader/writer."""

import pytest
from hypothesis import given, strategies as st

from repro.documents.xmlio import XmlElement, parse, serialize
from repro.errors import XmlSyntaxError


class TestElementApi:
    def test_child_appends_and_returns(self):
        root = XmlElement("root")
        child = root.child("item", "text", id="1")
        assert child.tag == "item"
        assert child.text == "text"
        assert root.children == [child]

    def test_find_first_match(self):
        root = XmlElement("r")
        root.child("a", "1")
        second = root.child("a", "2")
        assert root.find("a").text == "1"
        assert root.find_all("a") == [root.find("a"), second]

    def test_find_missing_returns_none(self):
        assert XmlElement("r").find("x") is None

    def test_require_raises_on_missing(self):
        with pytest.raises(XmlSyntaxError):
            XmlElement("r").require("x")

    def test_child_text_default(self):
        root = XmlElement("r")
        root.child("a", "hello")
        assert root.child_text("a") == "hello"
        assert root.child_text("b", "dflt") == "dflt"

    def test_iter_depth_first(self):
        root = XmlElement("r")
        a = root.child("a")
        a.child("b")
        root.child("c")
        assert [e.tag for e in root.iter()] == ["r", "a", "b", "c"]

    def test_mixed_content_text(self):
        root = XmlElement("r", content=["pre", XmlElement("b"), "post"])
        assert root.text == "prepost"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(XmlElement("a"), declaration=False) == "<a/>"

    def test_declaration_prefix(self):
        assert serialize(XmlElement("a")).startswith("<?xml")

    def test_attributes_escaped(self):
        element = XmlElement("a", {"v": 'x"<&y'})
        text = serialize(element, declaration=False)
        assert "&quot;" in text and "&lt;" in text and "&amp;" in text

    def test_text_escaped(self):
        element = XmlElement("a", content=["1 < 2 & 3 > 0"])
        text = serialize(element, declaration=False)
        assert "&lt;" in text and "&amp;" in text and "&gt;" in text

    def test_invalid_tag_rejected(self):
        with pytest.raises(XmlSyntaxError):
            serialize(XmlElement("bad tag"), declaration=False)

    def test_invalid_attr_name_rejected(self):
        with pytest.raises(XmlSyntaxError):
            serialize(XmlElement("a", {"bad name": "v"}), declaration=False)

    def test_pretty_print_indents(self):
        root = XmlElement("a")
        root.child("b", "t")
        text = serialize(root, declaration=False, indent=2)
        assert "\n  <b>" in text


class TestParse:
    def test_simple_document(self):
        root = parse("<a><b>hi</b></a>")
        assert root.tag == "a"
        assert root.find("b").text == "hi"

    def test_attributes(self):
        root = parse('<a x="1" y="two"/>')
        assert root.attrs == {"x": "1", "y": "two"}

    def test_single_quoted_attributes(self):
        assert parse("<a x='1'/>").attrs == {"x": "1"}

    def test_entities_decoded(self):
        root = parse("<a>&lt;&amp;&gt;&quot;&apos;</a>")
        assert root.text == "<&>\"'"

    def test_numeric_character_references(self):
        assert parse("<a>&#65;&#x42;</a>").text == "AB"

    def test_declaration_and_comments_skipped(self):
        root = parse('<?xml version="1.0"?><!-- note --><a><!-- inner -->x</a>')
        assert root.text == "x"

    def test_whitespace_around_root(self):
        assert parse("  <a/>  ").tag == "a"

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "plain text",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a x=1/>",
            '<a x="1" x="2"/>',
            "<a>&unknown;</a>",
            "<a/><b/>",
            "<a><![CDATA[x]]></a>",
            '<a x="<"/>',
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(XmlSyntaxError):
            parse(bad)

    def test_error_carries_position(self):
        with pytest.raises(XmlSyntaxError) as excinfo:
            parse("<a><b></a></b>")
        assert excinfo.value.position >= 0

    def test_non_string_rejected(self):
        with pytest.raises(XmlSyntaxError):
            parse(b"<a/>")  # type: ignore[arg-type]


# -- property-based round trip -------------------------------------------------

_names = st.from_regex(r"[A-Za-z_][A-Za-z0-9_.\-]{0,8}", fullmatch=True)
_texts = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc"), min_codepoint=32),
    min_size=1,
    max_size=20,
)


@st.composite
def _elements(draw, depth=0):
    tag = draw(_names)
    attrs = draw(st.dictionaries(_names, _texts, max_size=3))
    if depth >= 2:
        content = draw(st.lists(_texts, max_size=2))
    else:
        content = draw(
            st.lists(st.one_of(_texts, _elements(depth=depth + 1)), max_size=3)
        )
    # Adjacent text chunks merge on parse; normalize by pre-merging.
    merged: list = []
    for item in content:
        if isinstance(item, str) and merged and isinstance(merged[-1], str):
            merged[-1] += item
        else:
            merged.append(item)
    return XmlElement(tag, attrs, merged)


@given(_elements())
def test_parse_serialize_roundtrip(element):
    assert parse(serialize(element, declaration=False)) == element


@given(_elements())
def test_roundtrip_with_declaration(element):
    assert parse(serialize(element, declaration=True)) == element
