"""End-to-end crash recovery: kill the hub mid-exchange, recover, verify.

A fast subset of the full crash matrix (``repro crash`` / the CI
``crash-recovery`` job runs all 40 cells): every architecture crashes at
least once, every crash point fires at least once, and both kernel
variants are exercised.  Each case asserts the full exactly-once
contract — no order lost, none duplicated, the resumed journal and trace
byte-identical to an uncrashed run.
"""

import pytest

from repro.analysis.crash import (
    ARCHITECTURES,
    CRASH_POINTS,
    KERNELS,
    run_crash_case,
)

# Every architecture, both kernels, and every crash point appears.
CASES = [
    ("advanced", "kernel", "mid-append"),
    ("advanced", "sharded-4", "post-append"),
    ("monolithic", "kernel", "pre-journal"),
    ("cooperative", "sharded-4", "mid-snapshot"),
    ("distributed", "kernel", "random"),
]


def test_case_table_covers_the_matrix_axes():
    assert {architecture for architecture, _, _ in CASES} == set(ARCHITECTURES)
    assert {kernel for _, kernel, _ in CASES} == set(KERNELS)
    assert {point for _, _, point in CASES} == set(CRASH_POINTS)


@pytest.mark.parametrize(
    ("architecture", "kernel", "crash_point"),
    CASES,
    ids=["/".join(case) for case in CASES],
)
def test_crash_and_recover_is_exactly_once(architecture, kernel, crash_point):
    report = run_crash_case(architecture, kernel, crash_point, orders=4, seed=7)
    assert report.orders_lost == []
    assert report.orders_duplicated == []
    assert report.journal_identical, "resumed journal differs from uncrashed run"
    assert report.trace_identical, "resumed trace differs from uncrashed run"
    assert report.retries_suppressed == report.commands_replayed
    assert report.commands_replayed + report.commands_retried == 4
    assert report.dedup_uncovered == 0
    assert report.ok


def test_crash_report_counts_the_damage(tmp_path):
    report = run_crash_case(
        "advanced", "kernel", "mid-append", orders=4, seed=7, workdir=tmp_path
    )
    assert report.ok
    assert report.reference_records > 0
    assert 0 <= report.recovered_records <= report.reference_records
    # mid-append tears a frame in half: recovery must report the tear.
    assert report.truncations
    assert (tmp_path / "reference").is_dir()
    assert (tmp_path / "resumed").is_dir()
