"""System tests for EDI 997 functional acknowledgments and VAN replays."""

import pytest

from repro.analysis.scenarios import build_two_enterprise_pair
from repro.core.enterprise import run_community
from repro.documents import edi
from repro.errors import WireFormatError
from repro.messaging.envelope import Message

LINES = [{"sku": "GPU", "quantity": 4, "unit_price": 1500.0}]


class TestFunctionalAckDocument:
    def test_wire_roundtrip(self, registry, sample_po):
        wire_po = registry.transform(sample_po, edi.EDI_X12)
        ack = edi.make_functional_ack(wire_po, now=7.0)
        text = edi.to_wire(ack)
        assert "ST*997" in text and "AK1*PO" in text and "AK9*A" in text
        parsed = edi.from_wire(text)
        assert parsed == ack
        assert parsed.doc_type == "functional_ack"

    def test_references_original_control_number(self, registry, sample_po):
        wire_po = registry.transform(sample_po, edi.EDI_X12)
        ack = edi.make_functional_ack(wire_po, now=0.0)
        assert ack.get("ak1.group_control_number") == wire_po.get("isa.control_number")
        # envelope direction reversed
        assert ack.get("isa.sender_id") == wire_po.get("isa.receiver_id")
        assert ack.get("isa.receiver_id") == wire_po.get("isa.sender_id")

    def test_functional_code_tracks_doc_type(self, registry, sample_poa):
        wire_poa = registry.transform(sample_poa, edi.EDI_X12)
        ack = edi.make_functional_ack(wire_poa, now=0.0)
        assert ack.get("ak1.functional_code") == "PR"

    def test_997_never_acknowledges_a_997(self, registry, sample_po):
        wire_po = registry.transform(sample_po, edi.EDI_X12)
        ack = edi.make_functional_ack(wire_po, now=0.0)
        with pytest.raises(WireFormatError):
            edi.make_functional_ack(ack, now=1.0)


class TestAcknowledgedVanRoundTrip:
    def test_full_round_trip_with_997s(self):
        pair = build_two_enterprise_pair("edi-van-997", seller_delay=0.5)
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-997", LINES)
        run_community(pair.enterprises())
        assert pair.buyer.instance(instance_id).status == "completed"
        buyer_conv = next(iter(pair.buyer.b2b.conversations.values()))
        assert buyer_conv.documents == [
            "sent:purchase_order",
            "received:functional_ack",
            "received:po_ack",
            "sent:functional_ack",
        ]
        # four interchanges through the VAN, all parties quiescent
        assert pair.van.posted_count == 4
        assert not pair.buyer.b2b.open_conversations()
        assert not pair.seller.b2b.open_conversations()

    def test_997s_never_reach_bindings_or_private(self):
        pair = build_two_enterprise_pair("edi-van-997", seller_delay=0.0)
        pair.buyer.submit_order("SAP", "ACME", "PO-997B", LINES)
        run_community(pair.enterprises())
        binding = pair.seller.model.bindings["edi-van-997/seller-binding"]
        assert binding.inbound_runs == 1 and binding.outbound_runs == 1
        import json

        for enterprise in pair.enterprises():
            for instance in enterprise.wfms.database.list_instances():
                assert "functional_ack" not in json.dumps(instance.to_dict())


class TestVanReplay:
    """A VAN replaying an old interchange must not re-book the order: the
    public process's sequencing guard rejects it as a fault."""

    def test_replayed_po_rejected(self):
        pair = build_two_enterprise_pair("edi-van", seller_delay=0.0)
        # capture every interchange as the VAN sees it
        captured: list[Message] = []
        original_post = pair.van.post
        pair.van.post = lambda message: (captured.append(message), original_post(message))[1]
        pair.buyer.submit_order("SAP", "ACME", "PO-RPL", LINES)
        run_community(pair.enterprises())
        assert pair.seller.backends["Oracle"].order_count() == 1
        # replay the original PO interchange after the conversation closed:
        # dropped quietly, and the order is NOT double-booked
        po_message = next(m for m in captured if m.doc_type == "purchase_order")
        pair.van.post(po_message)
        run_community(pair.enterprises())
        assert pair.seller.b2b.faults == []
        assert pair.seller.backends["Oracle"].order_count() == 1

    def test_replay_into_open_conversation_faults(self):
        """A replay while the conversation is still open violates the
        public process's sequencing and is recorded as a fault."""
        pair = build_two_enterprise_pair("edi-van", seller_delay=30.0)
        captured: list[Message] = []
        original_post = pair.van.post
        pair.van.post = lambda message: (captured.append(message), original_post(message))[1]
        pair.buyer.submit_order("SAP", "ACME", "PO-RPL3", LINES)
        # drive only until the PO is booked; the POA is still 30s away,
        # so the seller conversation is open at its from_binding step
        pair.scheduler.run_until(1.0)
        pair.seller.poll_van()
        assert pair.seller.b2b.open_conversations()
        po_message = next(m for m in captured if m.doc_type == "purchase_order")
        pair.van.post(po_message)
        pair.seller.poll_van()
        assert len(pair.seller.b2b.faults) == 1
        assert "expected" in pair.seller.b2b.faults[0]["error"]
        # the replay did not corrupt the in-flight conversation
        run_community(pair.enterprises())
        assert pair.seller.backends["Oracle"].order_count() == 1
        assert "PO-RPL3" in pair.buyer.backends["SAP"].stored_acks

    def test_replayed_poa_dropped_quietly(self):
        pair = build_two_enterprise_pair("edi-van", seller_delay=0.0)
        captured: list[Message] = []
        original_post = pair.van.post
        pair.van.post = lambda message: (captured.append(message), original_post(message))[1]
        pair.buyer.submit_order("SAP", "ACME", "PO-RPL2", LINES)
        run_community(pair.enterprises())
        poa_message = next(m for m in captured if m.doc_type == "po_ack")
        faults_before = len(pair.buyer.b2b.faults)
        pair.van.post(poa_message)
        run_community(pair.enterprises())
        # the buyer conversation is closed; the replay is dropped, and the
        # sequencing guard does not fire because closed conversations
        # ignore stragglers
        assert len(pair.buyer.b2b.faults) == faults_before
        assert "PO-RPL2" in pair.buyer.backends["SAP"].stored_acks
