"""System tests: the full PO-POA round trip under every condition.

These are the executable Figure 1 / Figure 14 / Figure 15 scenarios: two
(or four) complete enterprises — private WFMS, rules, bindings, public
processes, ERP simulators — exchanging business documents over the
simulated network.
"""

import pytest

from repro.analysis.scenarios import build_two_enterprise_pair
from repro.backend.base import partial_backorder, reject_over
from repro.core.enterprise import run_community
from repro.messaging.network import NetworkConditions
from repro.messaging.reliable import RetryPolicy

LINES = [
    {"sku": "LAPTOP-15", "quantity": 10, "unit_price": 1200.0},
    {"sku": "DOCK-1", "quantity": 5, "unit_price": 150.0},
]  # total 12 750


class TestHappyPathAllProtocols:
    @pytest.mark.parametrize("protocol", ["edi-van", "rosettanet", "oagis-http"])
    def test_round_trip(self, protocol):
        pair = build_two_enterprise_pair(protocol)
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-1001", LINES)
        run_community(pair.enterprises())

        buyer_instance = pair.buyer.instance(instance_id)
        assert buyer_instance.status == "completed"
        # the seller booked the order at the right total
        order = pair.seller.backends["Oracle"].order("PO-1001")
        assert order.status == "accepted"
        assert order.total_amount == pytest.approx(12750.0)
        # the buyer stored the acknowledgment in its own ERP
        ack = pair.buyer.backends["SAP"].stored_acks["PO-1001"]
        assert ack.format_name == "sap-idoc"
        # both conversations closed cleanly
        assert not pair.buyer.b2b.open_conversations()
        assert not pair.seller.b2b.open_conversations()
        assert pair.buyer.b2b.faults == [] and pair.seller.b2b.faults == []

    def test_seller_approval_fires_above_threshold(self):
        pair = build_two_enterprise_pair("rosettanet", seller_threshold=10000,
                                         seller_delay=0.0)
        pair.buyer.submit_order("SAP", "ACME", "PO-1002", LINES)  # 12 750 > 10 000
        run_community(pair.enterprises())
        assert pair.seller.worklist.completed_count() == 1

    def test_seller_approval_skipped_below_threshold(self):
        pair = build_two_enterprise_pair("rosettanet", seller_threshold=50000,
                                         seller_delay=0.0)
        pair.buyer.submit_order("SAP", "ACME", "PO-1003", LINES)
        run_community(pair.enterprises())
        assert pair.seller.worklist.completed_count() == 0

    def test_multiple_orders_interleave(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=1.0)
        ids = [
            pair.buyer.submit_order("SAP", "ACME", f"PO-20{i}", LINES)
            for i in range(5)
        ]
        run_community(pair.enterprises())
        for instance_id in ids:
            assert pair.buyer.instance(instance_id).status == "completed"
        assert pair.seller.backends["Oracle"].order_count() == 5


class TestBusinessOutcomes:
    def test_rejected_order(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
        pair.seller.backends["Oracle"].acceptance_policy = reject_over(1000.0)
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-R1", LINES)
        run_community(pair.enterprises())
        assert pair.buyer.instance(instance_id).status == "completed"
        ack = pair.buyer.backends["SAP"].stored_acks["PO-R1"]
        assert ack.get("header.action") == "REJ"  # ORDRSP rejection code

    def test_partial_order(self):
        pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
        pair.seller.backends["Oracle"].acceptance_policy = partial_backorder({"DOCK-1"})
        pair.buyer.submit_order("SAP", "ACME", "PO-P1", LINES)
        run_community(pair.enterprises())
        ack = pair.buyer.backends["SAP"].stored_acks["PO-P1"]
        assert ack.get("header.action") == "PAR"
        # the backordered line carries its own code
        actions = {item["posex"]: item["action"] for item in ack.get("items")}
        assert actions == {1: "ACC", 2: "BCK"}
        assert ack.get("summary.summe") == pytest.approx(12000.0)

    def test_seller_side_rejection_via_declined_approval(self):
        pair = build_two_enterprise_pair(
            "rosettanet", seller_threshold=1000, seller_delay=0.0, auto_approve=False
        )
        pair.buyer.worklist.set_auto_policy(lambda item: {"approved": True})
        pair.seller.worklist.set_auto_policy(lambda item: {"approved": False})
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-D1", LINES)
        run_community(pair.enterprises())
        # the buyer still gets a (rejected) POA and completes
        assert pair.buyer.instance(instance_id).status == "completed"
        ack = pair.buyer.backends["SAP"].stored_acks["PO-D1"]
        assert ack.get("header.action") == "REJ"
        # and the order never reached the seller's ERP
        assert not pair.seller.backends["Oracle"].has_order("PO-D1")


class TestUnreliableNetwork:
    def test_rosettanet_survives_loss_and_duplication(self):
        conditions = NetworkConditions(
            loss_rate=0.3, duplicate_rate=0.2, min_latency=0.01, max_latency=0.2
        )
        pair = build_two_enterprise_pair(
            "rosettanet", conditions=conditions, seed=42,
            retry_policy=RetryPolicy(ack_timeout=1.0, max_retries=10),
        )
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-L1", LINES)
        run_community(pair.enterprises())
        assert pair.buyer.instance(instance_id).status == "completed"
        # exactly-once into the ERP despite retries/duplicates
        assert pair.seller.backends["Oracle"].order_count() == 1
        total_retries = pair.buyer.reliable.stats.retries + pair.seller.reliable.stats.retries
        assert total_retries >= 1

    def test_many_orders_under_loss(self):
        conditions = NetworkConditions(
            loss_rate=0.25, duplicate_rate=0.15, min_latency=0.01, max_latency=0.3
        )
        pair = build_two_enterprise_pair(
            "rosettanet", conditions=conditions, seed=1234,
            retry_policy=RetryPolicy(ack_timeout=1.0, max_retries=12),
        )
        ids = [
            pair.buyer.submit_order("SAP", "ACME", f"PO-L2{i}", LINES)
            for i in range(8)
        ]
        run_community(pair.enterprises(), max_rounds=500)
        completed = sum(
            1 for instance_id in ids
            if pair.buyer.instance(instance_id).status == "completed"
        )
        assert completed == 8
        assert pair.seller.backends["Oracle"].order_count() == 8

    def test_partitioned_partner_fails_conversation(self):
        pair = build_two_enterprise_pair(
            "rosettanet",
            retry_policy=RetryPolicy(ack_timeout=0.5, max_retries=2),
        )
        pair.network.partition("ACME")
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-F1", LINES)
        run_community(pair.enterprises())
        instance = pair.buyer.instance(instance_id)
        assert instance.status == "failed"
        assert "delivery failed" in instance.error
        conversation = next(iter(pair.buyer.b2b.conversations.values()))
        assert conversation.status == "failed"
        assert pair.buyer.b2b.faults

    def test_van_transport_tolerates_internet_loss(self):
        """EDI over the VAN is unaffected by Internet-link loss — the VAN
        is a separate, lossless transport."""
        conditions = NetworkConditions(loss_rate=0.9)
        pair = build_two_enterprise_pair("edi-van", conditions=conditions, seed=5)
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-V1", LINES)
        run_community(pair.enterprises())
        assert pair.buyer.instance(instance_id).status == "completed"

    def test_corrupted_message_recorded_and_ignored(self):
        # corrupt every message on the buyer->seller link
        pair = build_two_enterprise_pair("oagis-http", seller_delay=0.0)
        pair.network.set_link_conditions(
            "TP1", "ACME", NetworkConditions(corrupt_rate=1.0)
        )
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-X1", LINES)
        run_community(pair.enterprises())
        assert pair.seller.b2b.faults  # parse failure recorded
        assert not pair.seller.backends["Oracle"].has_order("PO-X1")
        # plain transport has no retry: the buyer stays waiting
        assert pair.buyer.instance(instance_id).status == "waiting"


class TestCrossProtocolIsolation:
    def test_same_private_process_serves_both_protocols(self):
        """Deploy EDI *and* RosettaNet on the same seller; both route into
        the identical private process definition (Figure 14)."""
        from repro.analysis.scenarios import build_fig15_community

        community = build_fig15_community(
            seller_delay=0.0,
            partners={
                "TP1": ("edi-van", 55000, "SAP"),
                "TP2": ("rosettanet", 40000, "Oracle"),
            },
        )
        community.buyers["TP1"].submit_order("SAP", "ACME", "PO-E1", LINES)
        community.buyers["TP2"].submit_order("SAP", "ACME", "PO-E2", LINES)
        run_community(community.enterprises())
        seller = community.seller
        assert seller.backends["SAP"].has_order("PO-E1")
        assert seller.backends["Oracle"].has_order("PO-E2")
        instances = seller.wfms.database.list_instances()
        assert {i.type_name for i in instances} == {"private-po-seller"}
