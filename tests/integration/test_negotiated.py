"""System tests for ebXML-style negotiated collaborations (Section 5.1).

Two enterprises negotiate a *custom* three-document collaboration —
PO -> POA -> invoice in one conversation — something no pre-defined PIP
offers.  The paper: with ebXML "the enterprises can model specific
requirements into their public processes that would not be possible in
case of RosettaNet".
"""

import pytest

from repro.analysis.scenarios import build_two_enterprise_pair
from repro.b2b.custom import negotiated_protocol
from repro.b2b.protocol import WireCodec
from repro.core.enterprise import run_community
from repro.core.public_process import PublicStep
from repro.documents import oagis
from repro.errors import ProtocolError
from repro.partners.agreement import TradingPartnerAgreement
from repro.workflow.definitions import WorkflowBuilder

LINES = [{"sku": "GPU", "quantity": 4, "unit_price": 1500.0}]

OAGIS_CODEC = WireCodec(oagis.OAGIS, oagis.to_wire, oagis.from_wire)

BUYER_STEPS = [
    PublicStep("from_binding_po", "from_binding", "purchase_order"),
    PublicStep("send_po", "send", "purchase_order"),
    PublicStep("receive_poa", "receive", "po_ack"),
    PublicStep("to_binding_poa", "to_binding", "po_ack"),
    PublicStep("receive_invoice", "receive", "invoice"),
    PublicStep("to_binding_invoice", "to_binding", "invoice"),
]
SELLER_STEPS = [
    PublicStep("receive_po", "receive", "purchase_order"),
    PublicStep("to_binding_po", "to_binding", "purchase_order"),
    PublicStep("from_binding_poa", "from_binding", "po_ack"),
    PublicStep("send_poa", "send", "po_ack"),
    PublicStep("from_binding_invoice", "from_binding", "invoice"),
    PublicStep("send_invoice", "send", "invoice"),
]


def _seller_process():
    """Custom seller private process: book, acknowledge, invoice — all in
    one conversation."""
    builder = WorkflowBuilder("private-po-invoice-seller", owner="ACME")
    builder.variable("document").variable("source", "")
    builder.variable("conversation_id", "")
    builder.variable("po_number", "").variable("ack").variable("invoice")
    builder.activity(
        "store_po", "store_to_application",
        inputs={"document": "document", "application": "'Oracle'"},
        outputs={"po_number": "po_number"},
    )
    builder.activity(
        "extract_poa", "extract_from_application",
        inputs={"application": "'Oracle'", "po_number": "po_number"},
        params={"doc_type": "po_ack"},
        outputs={"ack": "document"},
        after="store_po",
    )
    builder.activity(
        "send_poa", "send_to_binding",
        inputs={"document": "ack", "conversation_id": "conversation_id"},
        after="extract_poa",
    )
    builder.activity(
        "build_invoice", "build_invoice",
        inputs={"application": "'Oracle'", "po_number": "po_number"},
        outputs={"invoice": "document"},
        after="send_poa",
    )
    builder.activity(
        "send_invoice", "send_to_binding",
        inputs={"document": "invoice", "conversation_id": "conversation_id"},
        after="build_invoice",
    )
    return builder.build()


def _buyer_process():
    """Custom buyer private process: send PO, await POA, await invoice."""
    builder = WorkflowBuilder("private-po-invoice-buyer", owner="TP1")
    builder.variable("application", "").variable("po_number", "")
    builder.variable("partner_id", "")
    builder.variable("document").variable("ack").variable("invoice")
    builder.variable("conversation_id", "")
    builder.activity(
        "extract_po", "extract_from_application",
        inputs={"application": "application", "po_number": "po_number"},
        params={"doc_type": "purchase_order"},
        outputs={"document": "document"},
    )
    builder.activity(
        "send_po", "start_conversation",
        params={"protocol": "cpa-po-invoice"},
        inputs={"document": "document", "partner_id": "partner_id"},
        outputs={"conversation_id": "conversation_id"},
        after="extract_po",
    )
    builder.activity(
        "await_poa", "await_reply",
        inputs={"conversation_id": "conversation_id"},
        outputs={"ack": "document"},
        after="send_po",
    )
    builder.activity(
        "store_poa", "store_to_application",
        inputs={"document": "ack", "application": "application"},
        after="await_poa",
    )
    builder.activity(
        "await_invoice", "await_reply",
        inputs={"conversation_id": "conversation_id"},
        outputs={"invoice": "document"},
        after="store_poa",
    )
    builder.activity(
        "file_invoice", "archive_document",
        inputs={"document": "invoice"},
        after="await_invoice",
    )
    return builder.build()


def _pair_with_collaboration():
    pair = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
    collaboration = negotiated_protocol(
        "cpa-po-invoice", OAGIS_CODEC, BUYER_STEPS, SELLER_STEPS
    )
    pair.buyer.deploy_private_process(_buyer_process())
    pair.buyer.deploy_protocol(collaboration, "private-po-invoice-buyer")
    pair.buyer.model.partners.update_partner(
        pair.buyer.model.partners.get_partner("ACME").with_protocol("cpa-po-invoice")
    )
    pair.buyer.model.partners.add_agreement(
        TradingPartnerAgreement(
            "ACME", "cpa-po-invoice", "buyer",
            doc_types=("purchase_order", "po_ack", "invoice"),
        )
    )
    pair.seller.deploy_private_process(_seller_process())
    pair.seller.deploy_protocol(collaboration, "private-po-invoice-seller")
    pair.seller.model.partners.update_partner(
        pair.seller.model.partners.get_partner("TP1").with_protocol("cpa-po-invoice")
    )
    pair.seller.model.partners.add_agreement(
        TradingPartnerAgreement(
            "TP1", "cpa-po-invoice", "seller",
            doc_types=("purchase_order", "po_ack", "invoice"),
        )
    )
    return pair


class TestNegotiation:
    def test_complementary_collaboration_activates(self):
        protocol = negotiated_protocol(
            "cpa-po-invoice", OAGIS_CODEC, BUYER_STEPS, SELLER_STEPS
        )
        assert protocol.name == "cpa-po-invoice"
        assert protocol.public_process("buyer").step_count() == 6

    def test_mis_negotiated_collaboration_refused(self):
        # the seller forgot the invoice leg
        with pytest.raises(ProtocolError) as excinfo:
            negotiated_protocol(
                "cpa-broken", OAGIS_CODEC, BUYER_STEPS, SELLER_STEPS[:4]
            )
        assert "cannot be activated" in str(excinfo.value)

    def test_document_kind_disagreement_refused(self):
        twisted = [*SELLER_STEPS[:5],
                   PublicStep("send_asn", "send", "ship_notice")]
        with pytest.raises(ProtocolError):
            negotiated_protocol("cpa-twisted", OAGIS_CODEC, BUYER_STEPS, twisted)


class TestThreeDocumentCollaboration:
    def test_po_poa_invoice_in_one_conversation(self):
        pair = _pair_with_collaboration()
        pair.buyer.backends["SAP"].enter_order("PO-CPA", "TP1", "ACME", LINES)
        instance_id = pair.buyer.wfms.create_instance(
            "private-po-invoice-buyer",
            variables={"application": "SAP", "po_number": "PO-CPA",
                       "partner_id": "ACME"},
        )
        pair.buyer.wfms.start(instance_id)
        run_community(pair.enterprises())

        buyer_instance = pair.buyer.instance(instance_id)
        assert buyer_instance.status == "completed"
        conversation = next(
            c for c in pair.buyer.b2b.conversations.values()
            if c.protocol == "cpa-po-invoice"
        )
        assert conversation.status == "completed"
        assert conversation.documents == [
            "sent:purchase_order",
            "received:po_ack",
            "received:invoice",
        ]
        assert pair.seller.backends["Oracle"].has_order("PO-CPA")
        assert "PO-CPA" in pair.buyer.backends["SAP"].stored_acks
        assert pair.buyer.archive.has("invoice", "PO-CPA")
        invoice = pair.buyer.archive.get("invoice", "PO-CPA")
        assert invoice.get("summary.total_due") == pytest.approx(6000.0)

    def test_collaboration_coexists_with_standard_protocols(self):
        """The negotiated CPA runs alongside plain RosettaNet traffic."""
        pair = _pair_with_collaboration()
        standard_id = pair.buyer.submit_order(
            "SAP", "ACME", "PO-STD", LINES, protocol="rosettanet"
        )
        pair.buyer.backends["SAP"].enter_order("PO-CPA2", "TP1", "ACME", LINES)
        custom_id = pair.buyer.wfms.create_instance(
            "private-po-invoice-buyer",
            variables={"application": "SAP", "po_number": "PO-CPA2",
                       "partner_id": "ACME"},
        )
        pair.buyer.wfms.start(custom_id)
        run_community(pair.enterprises())
        assert pair.buyer.instance(standard_id).status == "completed"
        assert pair.buyer.instance(custom_id).status == "completed"
        protocols = {c.protocol for c in pair.buyer.b2b.conversations.values()}
        assert protocols == {"rosettanet", "cpa-po-invoice"}
