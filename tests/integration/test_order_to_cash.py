"""System tests for the order-to-cash extension.

The paper (Section 1) insists its concepts "support the general case of
all possible patterns like one-way messages, broadcast messages or
multi-step message exchanges".  ``oagis-fulfillment`` is a *seller-
initiated, one-way, two-document* exchange running on the identical
public/binding/private machinery: ship notice, then invoice, received by
the buyer's goods-receipt process and two-way-matched against its stored
acknowledgment.
"""

import pytest

from repro.analysis.scenarios import build_order_to_cash_pair
from repro.core.enterprise import run_community
from repro.errors import IntegrationError, ProtocolError

LINES = [
    {"sku": "GPU", "quantity": 4, "unit_price": 1500.0},
    {"sku": "PSU", "quantity": 4, "unit_price": 250.0},
]  # total 7 000


@pytest.fixture
def pair():
    return build_order_to_cash_pair(seller_delay=0.5)


def _run_po_phase(pair, po_number="PO-OTC"):
    instance_id = pair.buyer.submit_order("SAP", "ACME", po_number, LINES)
    run_community(pair.enterprises())
    assert pair.buyer.instance(instance_id).status == "completed"
    return instance_id


class TestFulfillmentProtocolChoice:
    """The same fulfillment private processes run over OAGIS BODs *or*
    classic EDI 856/810 through the VAN — protocol choice is a deployment
    detail, exactly the paper's point."""

    @pytest.mark.parametrize(
        ("po_protocol", "fulfillment_protocol"),
        [
            ("rosettanet", "oagis-fulfillment"),
            ("edi-van", "edi-fulfillment"),
            ("oagis-http", "edi-fulfillment"),
        ],
    )
    def test_order_to_cash_over_each_stack(self, po_protocol, fulfillment_protocol):
        pair = build_order_to_cash_pair(
            po_protocol=po_protocol,
            fulfillment_protocol=fulfillment_protocol,
            seller_delay=0.5,
        )
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-STACK", LINES)
        run_community(pair.enterprises())
        assert pair.buyer.instance(instance_id).status == "completed"
        pair.seller.submit_shipment("Oracle", "TP1", "PO-STACK")
        run_community(pair.enterprises())
        receipt = next(
            i for i in pair.buyer.wfms.database.list_instances()
            if i.type_name == "private-goods-receipt"
        )
        assert receipt.status == "completed"
        assert receipt.variables["matched"] is True
        assert pair.buyer.archive.has("invoice", "PO-STACK")

    def test_edi_fulfillment_travels_by_van(self):
        pair = build_order_to_cash_pair(
            po_protocol="edi-van", fulfillment_protocol="edi-fulfillment",
            seller_delay=0.0,
        )
        pair.buyer.submit_order("SAP", "ACME", "PO-VAN", LINES)
        run_community(pair.enterprises())
        posted_before = pair.van.posted_count
        pair.seller.submit_shipment("Oracle", "TP1", "PO-VAN")
        run_community(pair.enterprises())
        # the ASN and the invoice both went through VAN mailboxes
        assert pair.van.posted_count == posted_before + 2


class TestHappyPath:
    def test_full_order_to_cash(self, pair):
        _run_po_phase(pair)
        fulfillment_id = pair.seller.submit_shipment("Oracle", "TP1", "PO-OTC")
        run_community(pair.enterprises())

        assert pair.seller.instance(fulfillment_id).status == "completed"
        receipts = [
            i for i in pair.buyer.wfms.database.list_instances()
            if i.type_name == "private-goods-receipt"
        ]
        assert len(receipts) == 1
        assert receipts[0].status == "completed"
        assert receipts[0].variables["matched"] is True
        # no dispute was raised
        assert receipts[0].step_state("resolve_dispute").status == "skipped"

    def test_documents_archived(self, pair):
        _run_po_phase(pair)
        pair.seller.submit_shipment("Oracle", "TP1", "PO-OTC")
        run_community(pair.enterprises())
        assert pair.buyer.archive.has("ship_notice", "PO-OTC")
        assert pair.buyer.archive.has("invoice", "PO-OTC")
        invoice = pair.buyer.archive.get("invoice", "PO-OTC")
        assert invoice.get("summary.total_due") == pytest.approx(7000.0)
        asn = pair.buyer.archive.get("ship_notice", "PO-OTC")
        assert asn.get("header.carrier") == "SIMFREIGHT"
        assert asn.get("summary.package_count") == 2

    def test_conversation_is_seller_initiated_one_way(self, pair):
        _run_po_phase(pair)
        pair.seller.submit_shipment("Oracle", "TP1", "PO-OTC")
        run_community(pair.enterprises())
        seller_conv = next(
            c for c in pair.seller.b2b.conversations.values()
            if c.protocol == "oagis-fulfillment"
        )
        buyer_conv = next(
            c for c in pair.buyer.b2b.conversations.values()
            if c.protocol == "oagis-fulfillment"
        )
        assert seller_conv.role == "seller" and seller_conv.status == "completed"
        assert seller_conv.documents == ["sent:ship_notice", "sent:invoice"]
        assert buyer_conv.role == "buyer"
        assert buyer_conv.documents == ["received:ship_notice", "received:invoice"]

    def test_multiple_shipments(self, pair):
        for index in range(3):
            _run_po_phase(pair, f"PO-M{index}")
            pair.seller.submit_shipment("Oracle", "TP1", f"PO-M{index}")
        run_community(pair.enterprises())
        assert pair.buyer.archive.count("invoice") == 3
        assert pair.buyer.archive.count("ship_notice") == 3


class TestInvoiceMatching:
    def test_mismatched_invoice_raises_dispute(self, pair):
        """An invoice with unexpected tax fails the two-way match and goes
        through the accounts-payable dispute work item."""
        from repro.core.private_process import seller_fulfillment_process

        # redeploy the seller's fulfillment with a surprise 10% tax
        taxed = seller_fulfillment_process(owner="ACME", tax_rate=0.10)
        pair.seller.wfms.deploy(taxed)  # same name, overwrites in the WFMS
        pair.buyer.worklist.set_auto_policy(None)  # dispute needs a human

        _run_po_phase(pair)
        pair.seller.submit_shipment("Oracle", "TP1", "PO-OTC")
        run_community(pair.enterprises())

        receipt = next(
            i for i in pair.buyer.wfms.database.list_instances()
            if i.type_name == "private-goods-receipt"
        )
        assert receipt.variables["matched"] is False
        assert receipt.status == "waiting"
        disputes = pair.buyer.worklist.open_items("accounts-payable")
        assert len(disputes) == 1
        # accounts payable accepts the tax after review
        pair.buyer.complete_work_item(disputes[0].item_id, approved=True)
        receipt = pair.buyer.instance(receipt.instance_id)
        assert receipt.status == "completed"
        assert pair.buyer.archive.has("invoice", "PO-OTC")

    def test_invoice_for_unknown_po_fails_match(self, pair):
        """No stored acknowledgment -> the match rule returns False."""
        result = pair.buyer.rules.evaluate(
            "check_invoice_match", "ACME", "",
            __import__("repro.documents.normalized", fromlist=["make_invoice"]).make_invoice(
                __import__("repro.documents.normalized", fromlist=["make_purchase_order"]).make_purchase_order(
                    "PO-GHOST", "TP1", "ACME",
                    [{"sku": "X", "quantity": 1, "unit_price": 1.0}],
                ),
                "INV-GHOST",
            ),
        )
        assert result is False


class TestGuards:
    def test_shipment_requires_booked_order(self, pair):
        with pytest.raises(IntegrationError):
            pair.seller.submit_shipment("Oracle", "TP1", "PO-NOT-BOOKED")

    def test_buyer_cannot_initiate_dispatch(self, pair):
        """The buyer's fulfillment public process only responds."""
        from repro.documents.normalized import make_purchase_order, make_ship_notice

        po = make_purchase_order(
            "PO-X", "TP1", "ACME", [{"sku": "X", "quantity": 1, "unit_price": 1.0}]
        )
        asn = make_ship_notice(po, "SHIP-X")
        with pytest.raises(ProtocolError):
            pair.buyer.b2b.start_conversation("ACME", asn, our_role="buyer")

    def test_wire_roundtrip_for_fulfillment_documents(self, pair, registry):
        from repro.documents import oagis
        from repro.documents.normalized import make_purchase_order, make_invoice, make_ship_notice

        po = make_purchase_order(
            "PO-W", "TP1", "ACME", [{"sku": "X", "quantity": 2, "unit_price": 3.5}]
        )
        for document in (make_ship_notice(po, "SHIP-W"), make_invoice(po, "INV-W", tax_rate=0.07)):
            wire_doc = registry.transform(document, oagis.OAGIS)
            parsed = oagis.from_wire(oagis.to_wire(wire_doc))
            assert parsed == wire_doc
            assert registry.transform(parsed, "normalized") == document
