"""System tests for the receipt-acknowledged RosettaNet variant.

Section 4.5: "a public process has to explicitly model transport
acknowledgments.  After receiving a message an acknowledgment is sent back
to the sender ... this does not affect the binding because the
acknowledgments are not passed on to the private process."  The
``rosettanet-ra`` protocol is that modeling, executable.
"""

import json

import pytest

from repro.analysis.scenarios import build_two_enterprise_pair
from repro.b2b.protocol import get_protocol, standard_protocols
from repro.core.enterprise import run_community
from repro.documents import rosettanet
from repro.errors import WireFormatError

LINES = [{"sku": "GPU", "quantity": 4, "unit_price": 1500.0}]


@pytest.fixture
def pair():
    return build_two_enterprise_pair("rosettanet-ra", seller_delay=1.0)


class TestReceiptDocument:
    def test_wire_roundtrip(self, registry, sample_po):
        wire_po = registry.transform(sample_po, rosettanet.ROSETTANET)
        receipt = rosettanet.make_receipt_ack(wire_po, now=3.5)
        parsed = rosettanet.from_wire(rosettanet.to_wire(receipt))
        assert parsed == receipt
        assert parsed.doc_type == "receipt_ack"

    def test_receipt_reverses_roles(self, registry, sample_po):
        wire_po = registry.transform(sample_po, rosettanet.ROSETTANET)
        receipt = rosettanet.make_receipt_ack(wire_po, now=0.0)
        assert receipt.get("service_header.from_role") == "Seller"
        assert receipt.get("service_header.to_role") == "Buyer"
        assert receipt.get("service_header.from_partner") == "ACME"
        assert receipt.get("receipt.original_document_id") == "PO-DOC-PO-1001"
        assert receipt.get("receipt.original_doc_type") == "purchase_order"

    def test_receipt_for_poa(self, registry, sample_poa):
        wire_poa = registry.transform(sample_poa, rosettanet.ROSETTANET)
        receipt = rosettanet.make_receipt_ack(wire_poa, now=0.0)
        assert receipt.get("receipt.original_doc_type") == "po_ack"
        assert receipt.get("service_header.from_role") == "Buyer"

    def test_receipt_for_receipt_rejected(self, registry, sample_po):
        wire_po = registry.transform(sample_po, rosettanet.ROSETTANET)
        receipt = rosettanet.make_receipt_ack(wire_po, now=0.0)
        with pytest.raises(WireFormatError):
            rosettanet.make_receipt_ack(receipt, now=1.0)


class TestProtocolVariant:
    def test_not_in_standard_three(self):
        assert "rosettanet-ra" not in standard_protocols()
        assert get_protocol("rosettanet-ra").name == "rosettanet-ra"

    def test_public_processes_have_six_steps(self):
        protocol = get_protocol("rosettanet-ra")
        for role in ("buyer", "seller"):
            definition = protocol.public_process(role)
            assert definition.step_count() == 6
            # still exactly two connection steps — the acknowledgment
            # machinery stays on the wire side
            assert definition.connection_step_count() == 2

    def test_receipt_builder_attached(self):
        assert get_protocol("rosettanet-ra").receipt_builder is not None
        assert get_protocol("rosettanet").receipt_builder is None


class TestAcknowledgedRoundTrip:
    def test_full_round_trip(self, pair):
        instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-RA1", LINES)
        run_community(pair.enterprises())
        assert pair.buyer.instance(instance_id).status == "completed"
        assert pair.seller.backends["Oracle"].order("PO-RA1").status == "accepted"
        assert not pair.buyer.b2b.open_conversations()
        assert not pair.seller.b2b.open_conversations()

    def test_four_business_messages_on_the_wire(self, pair):
        pair.buyer.submit_order("SAP", "ACME", "PO-RA2", LINES)
        run_community(pair.enterprises())
        buyer_conv = next(iter(pair.buyer.b2b.conversations.values()))
        seller_conv = next(iter(pair.seller.b2b.conversations.values()))
        assert buyer_conv.documents == [
            "sent:purchase_order",
            "received:receipt_ack",
            "received:po_ack",
            "sent:receipt_ack",
        ]
        assert seller_conv.documents == [
            "received:purchase_order",
            "sent:receipt_ack",
            "sent:po_ack",
            "received:receipt_ack",
        ]

    def test_receipts_never_reach_the_private_process(self, pair):
        """The §4.5 claim: acknowledgments stay in the public process."""
        pair.buyer.submit_order("SAP", "ACME", "PO-RA3", LINES)
        run_community(pair.enterprises())
        for enterprise in pair.enterprises():
            for instance in enterprise.wfms.database.list_instances():
                payload = json.dumps(instance.to_dict())
                assert "receipt_ack" not in payload

    def test_bindings_untouched_by_receipts(self, pair):
        pair.buyer.submit_order("SAP", "ACME", "PO-RA4", LINES)
        run_community(pair.enterprises())
        # protocol bindings ran exactly once per direction, as without acks
        seller_binding = pair.seller.model.bindings["rosettanet-ra/seller-binding"]
        assert seller_binding.inbound_runs == 1
        assert seller_binding.outbound_runs == 1

    def test_same_private_process_as_unacknowledged_variant(self):
        """Switching rosettanet -> rosettanet-ra is a public-process-only
        change; the private processes are identical definitions."""
        plain = build_two_enterprise_pair("rosettanet", seller_delay=0.0)
        acked = build_two_enterprise_pair("rosettanet-ra", seller_delay=0.0)
        for name in ("private-po-buyer", "private-po-seller"):
            enterprise_plain = plain.buyer if "buyer" in name else plain.seller
            enterprise_acked = acked.buyer if "buyer" in name else acked.seller
            assert (
                enterprise_plain.model.private_processes[name].to_dict()
                == enterprise_acked.model.private_processes[name].to_dict()
            )

    def test_multiple_acknowledged_orders(self, pair):
        ids = [
            pair.buyer.submit_order("SAP", "ACME", f"PO-RA5{i}", LINES)
            for i in range(3)
        ]
        run_community(pair.enterprises())
        assert all(
            pair.buyer.instance(instance_id).status == "completed"
            for instance_id in ids
        )
        assert pair.seller.backends["Oracle"].order_count() == 3
