"""System tests for the broadcast RFQ/quote exchange (Sections 1 and 2.3).

The paper lists "broadcast messages" among the patterns the concepts must
support, and uses the RFQ process as its confidentiality example: with
distributed inter-organizational workflow, "the receiver of the request
would be able to see how the quotes will be selected".  Here the buyer's
scoring rule and each seller's price catalog are private body rules, and
the broadcast fans out plain conversations.
"""

import json

import pytest

from repro.analysis.scenarios import build_sourcing_community
from repro.core.enterprise import run_community
from repro.errors import IntegrationError

CATALOGS = {
    "ACME": {"GPU": 1500.0, "PSU": 260.0},
    "GLOBEX": {"GPU": 1450.0, "PSU": 280.0},
    "INITECH": {"GPU": 1480.0, "PSU": 240.0},
}
RFQ_LINES = [{"sku": "GPU", "quantity": 10}, {"sku": "PSU", "quantity": 10}]


@pytest.fixture
def community():
    return build_sourcing_community(CATALOGS)


class TestBroadcastSourcing:
    def test_all_quotes_collected_and_cheapest_wins(self, community):
        instance_id = community.buyer.submit_rfq(
            sorted(CATALOGS), "RFQ-1", RFQ_LINES
        )
        run_community(community.enterprises())
        instance = community.buyer.instance(instance_id)
        assert instance.status == "completed"
        assert len(instance.variables["quotes"]) == 3
        # INITECH: 10*1480 + 10*240 = 17 200 — the lowest total
        assert instance.variables["chosen_partner"] == "INITECH"
        assert instance.variables["chosen_quote"].get(
            "summary.total_amount"
        ) == pytest.approx(17200.0)

    def test_one_conversation_per_seller(self, community):
        community.buyer.submit_rfq(sorted(CATALOGS), "RFQ-2", RFQ_LINES)
        run_community(community.enterprises())
        conversations = list(community.buyer.b2b.conversations.values())
        assert len(conversations) == 3
        assert {c.partner_id for c in conversations} == set(CATALOGS)
        assert all(c.status == "completed" for c in conversations)
        # every copy was re-addressed to its seller
        for conversation in conversations:
            assert conversation.documents == [
                "sent:request_for_quote", "received:quote",
            ]

    def test_each_seller_saw_only_its_own_rfq(self, community):
        community.buyer.submit_rfq(sorted(CATALOGS), "RFQ-3", RFQ_LINES)
        run_community(community.enterprises())
        for seller_id, seller in community.sellers.items():
            instances = seller.wfms.database.list_instances()
            assert len(instances) == 1
            rfq = instances[0].variables["document"]
            assert rfq.get("header.seller_id") == seller_id

    def test_winning_quote_archived(self, community):
        community.buyer.submit_rfq(sorted(CATALOGS), "RFQ-4", RFQ_LINES)
        run_community(community.enterprises())
        assert community.buyer.archive.count("quote") == 1

    def test_scoring_rule_stays_private(self, community):
        """Section 2.3's confidentiality claim: nothing about the buyer's
        selection logic appears in any seller's databases or messages."""
        community.buyer.submit_rfq(sorted(CATALOGS), "RFQ-5", RFQ_LINES)
        run_community(community.enterprises())
        for seller in community.sellers.values():
            for instance in seller.wfms.database.list_instances():
                text = json.dumps(instance.to_dict())
                assert "score" not in text
                assert "lowest" not in text
            assert not seller.model.rules.has("score_quote")

    def test_pricing_rules_stay_private(self, community):
        assert not community.buyer.model.rules.has("price_catalog")


class TestDeadline:
    def test_partial_quotes_at_deadline(self, community):
        """A partitioned seller misses the deadline; the buyer selects
        among the quotes that arrived."""
        community.network.partition("GLOBEX")
        instance_id = community.buyer.submit_rfq(
            sorted(CATALOGS), "RFQ-6", RFQ_LINES, respond_by_delay=5.0
        )
        run_community(community.enterprises())
        instance = community.buyer.instance(instance_id)
        assert instance.status == "completed"
        assert len(instance.variables["quotes"]) == 2
        assert instance.variables["chosen_partner"] == "INITECH"
        # the silent seller's conversation failed with a recorded reason
        globex_conv = next(
            c for c in community.buyer.b2b.conversations.values()
            if c.partner_id == "GLOBEX"
        )
        assert globex_conv.status == "failed"
        assert "deadline" in globex_conv.fault

    def test_no_quotes_at_all_fails_selection(self, community):
        community.network.partition("ACME")
        community.network.partition("GLOBEX")
        community.network.partition("INITECH")
        community.buyer.wfms.raise_on_failure = False
        instance_id = community.buyer.submit_rfq(
            sorted(CATALOGS), "RFQ-7", RFQ_LINES, respond_by_delay=5.0
        )
        run_community(community.enterprises())
        instance = community.buyer.instance(instance_id)
        assert instance.status == "failed"
        assert "no quotes" in instance.error

    def test_deadline_after_completion_is_harmless(self, community):
        instance_id = community.buyer.submit_rfq(
            sorted(CATALOGS), "RFQ-8", RFQ_LINES, respond_by_delay=50.0
        )
        run_community(community.enterprises())
        assert community.buyer.instance(instance_id).status == "completed"
        # the deadline timer has fired (run_community drained the queue)
        # without disturbing the finished batch
        batch = next(iter(community.buyer.b2b.broadcasts.values()))
        assert batch.closed
        assert len(batch.collected) == 3


class TestGuards:
    def test_broadcast_needs_partners(self, community):
        from repro.documents.normalized import make_rfq

        rfq = make_rfq("RFQ-X", "TP1", "", [{"sku": "GPU", "quantity": 1}])
        with pytest.raises(IntegrationError):
            community.buyer.b2b.broadcast([], rfq)

    def test_unpriceable_sku_fails_sellers_quote(self, community):
        for seller in community.sellers.values():
            seller.wfms.raise_on_failure = False
        community.buyer.wfms.raise_on_failure = False
        community.buyer.submit_rfq(
            ["ACME"], "RFQ-9", [{"sku": "UNOBTAINIUM", "quantity": 1}],
            respond_by_delay=5.0,
        )
        run_community(community.enterprises())
        seller_instance = community.sellers["ACME"].wfms.database.list_instances()[0]
        assert seller_instance.status == "failed"
        assert "no offered price" in seller_instance.error
