"""Soak test: a business day of mixed traffic across every pattern.

One seller community processes interleaved purchase orders (three
protocols), fulfillment dispatches, and RFQ broadcasts — verifying that
conversation correlation, batch collection, ERP state and archives stay
consistent under sustained mixed load.
"""

from repro.analysis.scenarios import (
    build_fig15_community,
    build_order_to_cash_pair,
    build_sourcing_community,
)
from repro.core.enterprise import run_community

LINES = [{"sku": "GPU", "quantity": 2, "unit_price": 900.0}]


class TestMixedLoadCommunity:
    def test_thirty_orders_across_three_protocols(self):
        community = build_fig15_community(seller_delay=0.2)
        expected = []
        for wave in range(10):
            for partner_id, buyer in community.buyers.items():
                po_number = f"PO-{partner_id}-{wave}"
                buyer.submit_order("SAP", "ACME", po_number, LINES)
                expected.append((partner_id, po_number))
        run_community(community.enterprises(), max_rounds=500)

        seller = community.seller
        instances = seller.wfms.database.list_instances()
        assert len(instances) == 30
        assert all(instance.status == "completed" for instance in instances)
        booked = seller.backends["SAP"].order_count() + seller.backends["Oracle"].order_count()
        assert booked == 30
        for partner_id, po_number in expected:
            assert po_number in community.buyers[partner_id].backends["SAP"].stored_acks
        # every conversation on both sides closed
        for enterprise in community.enterprises():
            assert enterprise.b2b.open_conversations() == []
            assert enterprise.b2b.faults == []

    def test_interleaved_po_and_fulfillment_waves(self):
        pair = build_order_to_cash_pair(seller_delay=0.3)
        shipped = []
        for wave in range(5):
            po_number = f"PO-W{wave}"
            pair.buyer.submit_order("SAP", "ACME", po_number, LINES)
            run_community(pair.enterprises(), max_rounds=500)
            # ship the previous wave while new orders keep flowing
            pair.seller.submit_shipment("Oracle", "TP1", po_number)
            shipped.append(po_number)
        run_community(pair.enterprises(), max_rounds=500)
        assert pair.buyer.archive.count("invoice") == 5
        assert pair.buyer.archive.count("ship_notice") == 5
        receipts = [
            i for i in pair.buyer.wfms.database.list_instances()
            if i.type_name == "private-goods-receipt"
        ]
        assert len(receipts) == 5
        assert all(r.status == "completed" and r.variables["matched"] for r in receipts)

    def test_repeated_rfq_rounds_with_changing_winners(self):
        community = build_sourcing_community(
            {
                "ACME": {"GPU": 1500.0, "RAM": 80.0},
                "GLOBEX": {"GPU": 1450.0, "RAM": 95.0},
            }
        )
        winners = {}
        for sku, quantity in (("GPU", 10), ("RAM", 100)):
            instance_id = community.buyer.submit_rfq(
                ["ACME", "GLOBEX"], f"RFQ-{sku}", [{"sku": sku, "quantity": quantity}]
            )
            run_community(community.enterprises(), max_rounds=500)
            winners[sku] = community.buyer.instance(instance_id).variables[
                "chosen_partner"
            ]
        # cheaper GPU at GLOBEX, cheaper RAM at ACME
        assert winners == {"GPU": "GLOBEX", "RAM": "ACME"}
        # four quote conversations total, all closed
        assert len(community.buyer.b2b.conversations) == 4
        assert community.buyer.b2b.open_conversations() == []


class TestEngineEdgeSemantics:
    def test_xor_join_with_two_true_arcs_fires_once(self):
        from repro.workflow.definitions import WorkflowBuilder
        from repro.workflow.engine import WorkflowEngine

        engine = WorkflowEngine("edge")
        executions = []
        engine.activities.register(
            "trace", lambda ctx: executions.append(ctx.step_id) or {}
        )
        builder = WorkflowBuilder("wf")
        builder.activity("split", "trace")
        builder.activity("a", "trace")
        builder.activity("b", "trace")
        builder.activity("join", "trace", join="XOR")
        builder.link("split", "a")
        builder.link("split", "b")
        builder.link("a", "join")
        builder.link("b", "join")
        engine.deploy(builder.build())
        instance = engine.run("wf")
        assert instance.status == "completed"
        assert executions.count("join") == 1

    def test_three_step_binding_chain(self, registry, sample_po):
        """Bindings are processes: multi-step chains compose transforms
        with produce/consume (Section 4.2.1)."""
        from repro.core.binding import Binding, BindingStep

        binding = Binding(
            "chain", "private", public_process="p",
            inbound=[
                # wire -> normalized -> back-end native -> normalized again:
                # a (contrived) three-transform chain exercising ordering
                BindingStep("one", "transform", target_format="normalized"),
                BindingStep("two", "transform", target_format="sap-idoc"),
                BindingStep("three", "transform", target_format="normalized"),
            ],
        )
        wire_doc = registry.transform(sample_po, "edi-x12")
        result = binding.apply_inbound(wire_doc, registry)
        assert result == sample_po

    def test_conversation_ids_unique_across_buyers(self):
        community = build_fig15_community(seller_delay=0.0)
        for partner_id, buyer in community.buyers.items():
            buyer.submit_order("SAP", "ACME", f"PO-{partner_id}", LINES)
        run_community(community.enterprises())
        seller_ids = set(community.seller.b2b.conversations)
        assert len(seller_ids) == 3  # no collisions across initiators
        for partner_id, buyer in community.buyers.items():
            for conversation_id in buyer.b2b.conversations:
                assert partner_id in conversation_id  # namespaced by initiator
