"""Tests for message envelopes and id generation."""

import pytest

from repro.errors import MessagingError
from repro.messaging.envelope import IdGenerator, KIND_ACK, Message


class TestIdGenerator:
    def test_sequential_and_prefixed(self):
        ids = IdGenerator("MSG-A")
        assert ids.next() == "MSG-A-000001"
        assert ids.next() == "MSG-A-000002"

    def test_independent_generators(self):
        a, b = IdGenerator("A"), IdGenerator("B")
        a.next()
        assert b.next() == "B-000001"

    def test_empty_prefix_rejected(self):
        with pytest.raises(MessagingError):
            IdGenerator("")


def _message(**overrides):
    defaults = dict(
        message_id="M1",
        sender="alpha",
        receiver="beta",
        protocol="rosettanet",
        doc_type="purchase_order",
        body="<xml/>",
        conversation_id="C1",
    )
    defaults.update(overrides)
    return Message(**defaults)


class TestMessage:
    def test_defaults(self):
        message = _message()
        assert message.kind == "business"
        assert message.correlation_id == ""

    def test_requires_id_and_parties(self):
        with pytest.raises(MessagingError):
            _message(message_id="")
        with pytest.raises(MessagingError):
            _message(sender="")
        with pytest.raises(MessagingError):
            _message(receiver="")

    def test_unknown_kind_rejected(self):
        with pytest.raises(MessagingError):
            _message(kind="telegram")

    def test_ack_reverses_direction_and_correlates(self):
        message = _message()
        ack = message.ack("A1", sent_at=3.0)
        assert ack.kind == KIND_ACK
        assert ack.sender == "beta" and ack.receiver == "alpha"
        assert ack.correlation_id == "M1"
        assert ack.conversation_id == "C1"
        assert ack.protocol == "rosettanet"
        assert ack.body == ""

    def test_with_body_copies(self):
        message = _message()
        damaged = message.with_body("garbage")
        assert damaged.body == "garbage"
        assert message.body == "<xml/>"

    def test_stamped(self):
        assert _message().stamped(9.0).sent_at == 9.0

    def test_dict_roundtrip(self):
        message = _message(headers={"attempt": 2})
        assert Message.from_dict(message.to_dict()) == message

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(MessagingError):
            Message.from_dict({"message_id": "M", "sender": "a", "receiver": "b",
                               "bogus": 1})

    def test_frozen(self):
        with pytest.raises(AttributeError):
            _message().body = "new"  # type: ignore[misc]
