"""Tests for the simulated network."""

import pytest

from repro.errors import EndpointError, MessagingError
from repro.messaging.envelope import Message
from repro.messaging.network import NetworkConditions, SimulatedNetwork
from repro.sim import EventScheduler


def _message(index=1, sender="a", receiver="b"):
    return Message(
        message_id=f"M{index}",
        sender=sender,
        receiver=receiver,
        body=f"payload-{index}",
    )


@pytest.fixture
def net(scheduler):
    return SimulatedNetwork(scheduler, NetworkConditions.perfect(), seed=1)


class TestConditions:
    @pytest.mark.parametrize("field", ["loss_rate", "duplicate_rate", "corrupt_rate"])
    def test_rates_bounded(self, field):
        with pytest.raises(MessagingError):
            NetworkConditions(**{field: 1.5})

    def test_latency_window_checked(self):
        with pytest.raises(MessagingError):
            NetworkConditions(min_latency=0.5, max_latency=0.1)

    def test_perfect_is_lossless(self):
        conditions = NetworkConditions.perfect()
        assert conditions.loss_rate == 0.0
        assert conditions.duplicate_rate == 0.0


class TestRegistration:
    def test_duplicate_address_rejected(self, net):
        net.register("a", lambda m: None)
        with pytest.raises(EndpointError):
            net.register("a", lambda m: None)

    def test_empty_address_rejected(self, net):
        with pytest.raises(EndpointError):
            net.register("", lambda m: None)

    def test_unregister(self, net):
        net.register("a", lambda m: None)
        net.unregister("a")
        assert not net.is_registered("a")


class TestDelivery:
    def test_message_arrives(self, net, scheduler):
        received = []
        net.register("b", received.append)
        net.send(_message())
        scheduler.run_until_idle()
        assert [m.message_id for m in received] == ["M1"]
        assert net.stats.delivered == 1

    def test_delivery_takes_latency(self, net, scheduler):
        times = []
        net.register("b", lambda m: times.append(scheduler.clock.now()))
        net.send(_message())
        scheduler.run_until_idle()
        assert times == [0.01]

    def test_send_to_unknown_address_drops(self, net, scheduler):
        net.send(_message(receiver="ghost"))
        scheduler.run_until_idle()
        assert net.stats.dropped == 1

    def test_loss(self, scheduler):
        net = SimulatedNetwork(scheduler, NetworkConditions(loss_rate=1.0), seed=1)
        net.register("b", lambda m: pytest.fail("should be lost"))
        net.send(_message())
        scheduler.run_until_idle()
        assert net.stats.dropped == 1
        assert net.stats.delivered == 0

    def test_duplication(self, scheduler):
        net = SimulatedNetwork(scheduler, NetworkConditions(duplicate_rate=1.0), seed=1)
        received = []
        net.register("b", received.append)
        net.send(_message())
        scheduler.run_until_idle()
        assert len(received) == 2
        assert net.stats.duplicated == 1

    def test_corruption_damages_body(self, scheduler):
        net = SimulatedNetwork(scheduler, NetworkConditions(corrupt_rate=1.0), seed=1)
        received = []
        net.register("b", received.append)
        net.send(_message())
        scheduler.run_until_idle()
        assert received[0].body != "payload-1"
        assert "GARBLED" in received[0].body
        assert net.stats.corrupted == 1

    def test_variable_latency_reorders(self, scheduler):
        net = SimulatedNetwork(
            scheduler,
            NetworkConditions(min_latency=0.01, max_latency=1.0),
            seed=3,
        )
        received = []
        net.register("b", lambda m: received.append(m.message_id))
        for index in range(20):
            net.send(_message(index))
        scheduler.run_until_idle()
        assert sorted(received) == sorted(f"M{i}" for i in range(20))
        assert received != [f"M{i}" for i in range(20)]  # at least one inversion

    def test_deterministic_given_seed(self):
        def run():
            scheduler = EventScheduler()
            net = SimulatedNetwork(
                scheduler, NetworkConditions(loss_rate=0.5), seed=99
            )
            received = []
            net.register("b", lambda m: received.append(m.message_id))
            for index in range(50):
                net.send(_message(index))
            scheduler.run_until_idle()
            return received

        assert run() == run()


class TestTopologyControls:
    def test_partition_blocks_traffic(self, net, scheduler):
        received = []
        net.register("b", received.append)
        net.partition("b")
        net.send(_message())
        scheduler.run_until_idle()
        assert received == []

    def test_heal_restores_traffic(self, net, scheduler):
        received = []
        net.register("b", received.append)
        net.partition("b")
        net.heal("b")
        net.send(_message())
        scheduler.run_until_idle()
        assert len(received) == 1

    def test_partition_during_flight_drops_at_delivery(self, net, scheduler):
        received = []
        net.register("b", received.append)
        net.send(_message())
        net.partition("b")
        scheduler.run_until_idle()
        assert received == []
        assert net.stats.dropped == 1

    def test_per_link_conditions(self, scheduler):
        net = SimulatedNetwork(scheduler, NetworkConditions.perfect(), seed=1)
        net.set_link_conditions("a", "b", NetworkConditions(loss_rate=1.0))
        received_b, received_c = [], []
        net.register("b", received_b.append)
        net.register("c", received_c.append)
        net.send(_message(1, "a", "b"))
        net.send(_message(2, "a", "c"))
        scheduler.run_until_idle()
        assert received_b == []
        assert len(received_c) == 1


class TestPerLinkStats:
    def test_each_link_gets_its_own_counters(self, net, scheduler):
        net.register("b", lambda m: None)
        net.register("c", lambda m: None)
        net.send(_message(1, "a", "b"))
        net.send(_message(2, "a", "c"))
        net.send(_message(3, "a", "c"))
        scheduler.run_until_idle()
        assert net.stats_for("a", "b").sent == 1
        assert net.stats_for("a", "b").delivered == 1
        assert net.stats_for("a", "c").sent == 2
        assert net.stats_for("a", "c").delivered == 2

    def test_unknown_link_reports_zeroes(self, net):
        stats = net.stats_for("nobody", "nowhere")
        assert stats.sent == 0 and stats.delivered == 0
        assert net.link_report() == {}

    def test_drops_and_duplicates_counted_per_link(self, scheduler):
        net = SimulatedNetwork(scheduler, NetworkConditions.perfect(), seed=1)
        net.set_link_conditions("a", "b", NetworkConditions(loss_rate=1.0))
        net.set_link_conditions(
            "a", "c", NetworkConditions(duplicate_rate=1.0)
        )
        net.register("b", lambda m: None)
        net.register("c", lambda m: None)
        net.send(_message(1, "a", "b"))
        net.send(_message(2, "a", "c"))
        scheduler.run_until_idle()
        assert net.stats_for("a", "b").dropped == 1
        assert net.stats_for("a", "b").delivered == 0
        assert net.stats_for("a", "c").duplicated == 1
        assert net.stats_for("a", "c").delivered == 2

    def test_link_report_aggregates_to_global_stats(self, net, scheduler):
        net.register("b", lambda m: None)
        net.register("c", lambda m: None)
        for index in range(4):
            net.send(_message(index, "a", "b" if index % 2 else "c"))
        scheduler.run_until_idle()
        report = net.link_report()
        assert set(report) == {"a->b", "a->c"}
        assert sum(entry["sent"] for entry in report.values()) == net.stats.sent
        assert (
            sum(entry["delivered"] for entry in report.values())
            == net.stats.delivered
        )
