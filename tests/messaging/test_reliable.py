"""Tests for RNIF-style reliable messaging: acks, retries, exactly-once."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MessagingError, RetryExhaustedError
from repro.messaging.envelope import Message
from repro.messaging.network import NetworkConditions, SimulatedNetwork
from repro.messaging.reliable import ReliableEndpoint, RetryPolicy
from repro.messaging.transport import Endpoint
from repro.sim import EventScheduler


def _pair(scheduler, conditions=None, seed=7, policy=None):
    network = SimulatedNetwork(scheduler, conditions or NetworkConditions.perfect(), seed=seed)
    alpha = ReliableEndpoint(Endpoint("alpha", network), policy)
    beta = ReliableEndpoint(Endpoint("beta", network), policy)
    return network, alpha, beta


def _message(index=1):
    return Message(
        message_id=f"M{index}",
        sender="alpha",
        receiver="beta",
        body=f"payload-{index}",
        conversation_id="C1",
    )


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(MessagingError):
            RetryPolicy(ack_timeout=0)
        with pytest.raises(MessagingError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(MessagingError):
            RetryPolicy(backoff=0.5)

    def test_backoff_progression(self):
        policy = RetryPolicy(ack_timeout=1.0, backoff=2.0)
        assert policy.timeout_for_attempt(1) == 1.0
        assert policy.timeout_for_attempt(3) == 4.0


class TestHappyPath:
    def test_delivery_and_ack(self, scheduler):
        _, alpha, beta = _pair(scheduler)
        delivered, confirmed = [], []
        beta.on_message(delivered.append)
        alpha.send_reliable(_message(), on_delivered=confirmed.append)
        scheduler.run_until_idle()
        assert [m.message_id for m in delivered] == ["M1"]
        assert [m.message_id for m in confirmed] == ["M1"]
        assert alpha.in_flight() == 0
        assert alpha.stats.retries == 0
        assert beta.stats.acks_sent == 1

    def test_acks_never_reach_application(self, scheduler):
        _, alpha, beta = _pair(scheduler)
        seen_by_alpha, seen_by_beta = [], []
        alpha.on_message(seen_by_alpha.append)
        beta.on_message(seen_by_beta.append)
        alpha.send_reliable(_message())
        scheduler.run_until_idle()
        assert seen_by_alpha == []  # only the ack came back, and it was consumed
        assert len(seen_by_beta) == 1

    def test_only_business_messages_accepted(self, scheduler):
        _, alpha, _ = _pair(scheduler)
        ack = _message().ack("A1")
        with pytest.raises(MessagingError):
            alpha.send_reliable(ack)

    def test_duplicate_in_flight_send_rejected(self, scheduler):
        _, alpha, _ = _pair(scheduler)
        alpha.send_reliable(_message())
        with pytest.raises(MessagingError):
            alpha.send_reliable(_message())


class TestRetries:
    def test_lost_message_retransmitted(self, scheduler):
        # Deterministic loss: the receiver is partitioned for the first two
        # transmissions (t=0 and t=0.5) and healed before the third.
        network, alpha, beta = _pair(
            scheduler, policy=RetryPolicy(ack_timeout=0.5, max_retries=12)
        )
        delivered = []
        beta.on_message(delivered.append)
        network.partition("beta")
        scheduler.at(1.0, lambda: network.heal("beta"))
        alpha.send_reliable(_message())
        scheduler.run_until_idle()
        assert len(delivered) == 1
        assert alpha.stats.retries == 2

    def test_retries_exhausted_reports_failure(self, scheduler):
        conditions = NetworkConditions(loss_rate=1.0)
        policy = RetryPolicy(ack_timeout=0.5, max_retries=2)
        _, alpha, _ = _pair(scheduler, conditions, policy=policy)
        failures = []
        alpha.send_reliable(_message(), on_failed=lambda m, e: failures.append(e))
        scheduler.run_until_idle()
        assert len(failures) == 1
        assert isinstance(failures[0], RetryExhaustedError)
        assert failures[0].attempts == 3  # initial + 2 retries
        assert alpha.stats.failed == 1
        assert alpha.in_flight() == 0

    def test_endpoint_level_failure_handler(self, scheduler):
        conditions = NetworkConditions(loss_rate=1.0)
        policy = RetryPolicy(ack_timeout=0.5, max_retries=0)
        _, alpha, _ = _pair(scheduler, conditions, policy=policy)
        failures = []
        alpha.on_failure(lambda m, e: failures.append(m.message_id))
        alpha.send_reliable(_message())
        scheduler.run_until_idle()
        assert failures == ["M1"]

    def test_unhandled_failure_raises(self, scheduler):
        conditions = NetworkConditions(loss_rate=1.0)
        policy = RetryPolicy(ack_timeout=0.5, max_retries=0)
        _, alpha, _ = _pair(scheduler, conditions, policy=policy)
        alpha.send_reliable(_message())
        with pytest.raises(RetryExhaustedError):
            scheduler.run_until_idle()

    def test_lost_ack_causes_retry_but_single_delivery(self, scheduler):
        network, alpha, beta = _pair(
            scheduler, seed=1, policy=RetryPolicy(ack_timeout=0.5, max_retries=12)
        )
        # Business messages get through; acks back to alpha are often lost.
        network.set_link_conditions("beta", "alpha", NetworkConditions(loss_rate=0.7))
        delivered = []
        beta.on_message(delivered.append)
        alpha.send_reliable(_message())
        scheduler.run_until_idle()
        assert len(delivered) == 1
        assert beta.stats.duplicates_suppressed == alpha.stats.retries


class TestExactlyOnce:
    def test_network_duplicates_suppressed(self, scheduler):
        conditions = NetworkConditions(duplicate_rate=1.0)
        _, alpha, beta = _pair(scheduler, conditions)
        delivered = []
        beta.on_message(delivered.append)
        alpha.send_reliable(_message())
        scheduler.run_until_idle()
        assert len(delivered) == 1
        assert beta.stats.duplicates_suppressed >= 1

    @settings(max_examples=25, deadline=None)
    @given(
        loss=st.floats(0.0, 0.7),
        duplicates=st.floats(0.0, 0.5),
        seed=st.integers(0, 10_000),
        count=st.integers(1, 8),
    )
    def test_exactly_once_under_arbitrary_conditions(self, loss, duplicates, seed, count):
        """The headline property: whenever delivery succeeds at all, the
        application sees each message exactly once, in spite of loss,
        duplication and reordering."""
        scheduler = EventScheduler()
        conditions = NetworkConditions(
            loss_rate=loss, duplicate_rate=duplicates,
            min_latency=0.01, max_latency=0.3,
        )
        _, alpha, beta = _pair(
            scheduler, conditions, seed=seed,
            policy=RetryPolicy(ack_timeout=1.0, max_retries=8),
        )
        delivered = []
        failed = []
        beta.on_message(lambda m: delivered.append(m.message_id))
        alpha.on_failure(lambda m, e: failed.append(m.message_id))
        for index in range(count):
            alpha.send_reliable(_message(index))
        scheduler.run_until_idle()
        assert len(delivered) == len(set(delivered))  # never twice
        # every message was either delivered or reported failed
        assert set(delivered) | set(failed) == {f"M{i}" for i in range(count)}
        assert alpha.in_flight() == 0
