"""Tests for endpoints and the VAN mailbox service."""

import pytest

from repro.errors import EndpointError
from repro.messaging.envelope import Message
from repro.messaging.transport import Endpoint, ValueAddedNetwork


def _message(sender, receiver, index=1):
    return Message(
        message_id=f"{sender}-{index}",
        sender=sender,
        receiver=receiver,
        body="data",
    )


class TestEndpoint:
    def test_send_stamps_time(self, network, scheduler):
        alpha = Endpoint("alpha", network)
        Endpoint("beta", network)
        scheduler.after(2.0, lambda: None)
        scheduler.run_until_idle()
        sent = alpha.send(_message("alpha", "beta"))
        assert sent.sent_at == 2.0

    def test_cannot_forge_sender(self, network):
        alpha = Endpoint("alpha", network)
        with pytest.raises(EndpointError):
            alpha.send(_message("mallory", "beta"))

    def test_push_handler_receives(self, network, scheduler):
        alpha = Endpoint("alpha", network)
        beta = Endpoint("beta", network)
        received = []
        beta.on_message(received.append)
        alpha.send(_message("alpha", "beta"))
        scheduler.run_until_idle()
        assert len(received) == 1
        assert beta.received_count == 1

    def test_poll_mode_queues(self, network, scheduler):
        alpha = Endpoint("alpha", network)
        beta = Endpoint("beta", network)
        alpha.send(_message("alpha", "beta", 1))
        alpha.send(_message("alpha", "beta", 2))
        scheduler.run_until_idle()
        assert beta.poll().message_id == "alpha-1"
        assert beta.poll().message_id == "alpha-2"
        assert beta.poll() is None

    def test_setting_handler_flushes_queue(self, network, scheduler):
        alpha = Endpoint("alpha", network)
        beta = Endpoint("beta", network)
        alpha.send(_message("alpha", "beta"))
        scheduler.run_until_idle()
        received = []
        beta.on_message(received.append)
        assert len(received) == 1

    def test_message_id_generator(self, network):
        alpha = Endpoint("alpha", network)
        first = alpha.next_message_id()
        second = alpha.next_message_id()
        assert first != second and "alpha" in first

    def test_close_detaches(self, network, scheduler):
        alpha = Endpoint("alpha", network)
        beta = Endpoint("beta", network)
        beta.close()
        alpha.send(_message("alpha", "beta"))
        scheduler.run_until_idle()
        assert network.stats.dropped == 1


class TestVan:
    def test_post_and_pick_up(self):
        van = ValueAddedNetwork()
        van.subscribe("beta")
        van.post(_message("alpha", "beta"))
        assert van.pending("beta") == 1
        batch = van.pick_up("beta")
        assert len(batch) == 1
        assert van.pending("beta") == 0

    def test_store_and_forward_is_lossless_fifo(self):
        van = ValueAddedNetwork()
        van.subscribe("beta")
        for index in range(5):
            van.post(_message("alpha", "beta", index))
        ids = [m.message_id for m in van.pick_up("beta")]
        assert ids == [f"alpha-{i}" for i in range(5)]

    def test_pick_up_limit(self):
        van = ValueAddedNetwork()
        van.subscribe("beta")
        for index in range(5):
            van.post(_message("alpha", "beta", index))
        assert len(van.pick_up("beta", limit=2)) == 2
        assert van.pending("beta") == 3

    def test_post_to_unknown_mailbox_rejected(self):
        van = ValueAddedNetwork()
        with pytest.raises(EndpointError):
            van.post(_message("alpha", "ghost"))

    def test_duplicate_subscription_rejected(self):
        van = ValueAddedNetwork()
        van.subscribe("beta")
        with pytest.raises(EndpointError):
            van.subscribe("beta")

    def test_pick_up_unknown_mailbox_rejected(self):
        van = ValueAddedNetwork()
        with pytest.raises(EndpointError):
            van.pick_up("ghost")

    def test_counters(self):
        van = ValueAddedNetwork()
        van.subscribe("beta")
        van.post(_message("alpha", "beta"))
        van.pick_up("beta")
        assert van.posted_count == 1
        assert van.picked_up_count == 1
