"""Tests for trading partner profiles, agreements and the directory."""

import pytest

from repro.errors import AgreementError, PartnerError
from repro.partners.agreement import TradingPartnerAgreement
from repro.partners.directory import PartnerDirectory
from repro.partners.profile import TradingPartner


class TestProfile:
    def test_defaults(self):
        partner = TradingPartner("TP1")
        assert partner.name == "TP1"
        assert partner.address == "TP1"

    def test_requires_id(self):
        with pytest.raises(PartnerError):
            TradingPartner("")

    def test_speaks(self):
        partner = TradingPartner("TP1", protocols=("edi-van",))
        assert partner.speaks("edi-van")
        assert not partner.speaks("rosettanet")

    def test_with_protocol_returns_extended_copy(self):
        partner = TradingPartner("TP1", protocols=("edi-van",))
        extended = partner.with_protocol("rosettanet")
        assert extended.speaks("rosettanet")
        assert not partner.speaks("rosettanet")

    def test_with_protocol_idempotent(self):
        partner = TradingPartner("TP1", protocols=("edi-van",))
        assert partner.with_protocol("edi-van") is partner


class TestAgreement:
    def test_roles(self):
        agreement = TradingPartnerAgreement("TP1", "edi-van", "buyer")
        assert agreement.their_role == "seller"
        assert TradingPartnerAgreement("TP1", "edi-van", "seller").their_role == "buyer"

    def test_invalid_role_rejected(self):
        with pytest.raises(AgreementError):
            TradingPartnerAgreement("TP1", "edi-van", "broker")

    def test_requires_doc_types(self):
        with pytest.raises(AgreementError):
            TradingPartnerAgreement("TP1", "edi-van", "buyer", doc_types=())

    def test_allows_respects_status(self):
        agreement = TradingPartnerAgreement("TP1", "edi-van", "buyer")
        assert agreement.allows("purchase_order")
        assert not agreement.allows("invoice")
        agreement.suspend()
        assert not agreement.allows("purchase_order")
        agreement.reactivate()
        assert agreement.allows("purchase_order")


class TestDirectory:
    @pytest.fixture
    def directory(self):
        directory = PartnerDirectory()
        directory.add_partner(TradingPartner("TP1", protocols=("edi-van", "rosettanet")))
        directory.add_agreement(TradingPartnerAgreement("TP1", "edi-van", "seller"))
        return directory

    def test_duplicate_partner_rejected(self, directory):
        with pytest.raises(PartnerError):
            directory.add_partner(TradingPartner("TP1"))

    def test_get_unknown_partner(self, directory):
        with pytest.raises(PartnerError):
            directory.get_partner("ghost")

    def test_partner_by_address(self, directory):
        assert directory.partner_by_address("TP1").partner_id == "TP1"
        with pytest.raises(PartnerError):
            directory.partner_by_address("unknown-host")

    def test_agreement_needs_known_partner(self, directory):
        with pytest.raises(PartnerError):
            directory.add_agreement(TradingPartnerAgreement("TP9", "edi-van", "seller"))

    def test_agreement_needs_spoken_protocol(self, directory):
        with pytest.raises(AgreementError):
            directory.add_agreement(TradingPartnerAgreement("TP1", "oagis-http", "seller"))

    def test_duplicate_agreement_rejected(self, directory):
        with pytest.raises(AgreementError):
            directory.add_agreement(TradingPartnerAgreement("TP1", "edi-van", "seller"))

    def test_find_agreement_filters(self, directory):
        directory.add_agreement(TradingPartnerAgreement("TP1", "rosettanet", "buyer"))
        found = directory.find_agreement("TP1", our_role="buyer")
        assert found.protocol == "rosettanet"
        found = directory.find_agreement("TP1", protocol="edi-van")
        assert found.our_role == "seller"

    def test_find_agreement_no_match(self, directory):
        with pytest.raises(AgreementError):
            directory.find_agreement("TP1", our_role="buyer")

    def test_find_agreement_ambiguous(self, directory):
        directory.add_agreement(TradingPartnerAgreement("TP1", "rosettanet", "seller"))
        with pytest.raises(AgreementError):
            directory.find_agreement("TP1", our_role="seller")

    def test_suspended_agreement_excluded(self, directory):
        directory.find_agreement("TP1").suspend()
        with pytest.raises(AgreementError):
            directory.find_agreement("TP1")

    def test_find_agreement_by_doc_type(self, directory):
        found = directory.find_agreement("TP1", doc_type="purchase_order")
        assert found.partner_id == "TP1"
        with pytest.raises(AgreementError):
            directory.find_agreement("TP1", doc_type="invoice")

    def test_remove_partner_removes_agreements(self, directory):
        directory.remove_partner("TP1")
        assert not directory.has_partner("TP1")
        assert directory.agreements() == []

    def test_agreements_for_protocol(self, directory):
        directory.add_partner(TradingPartner("TP2", protocols=("edi-van",)))
        directory.add_agreement(TradingPartnerAgreement("TP2", "edi-van", "seller"))
        assert len(directory.agreements_for_protocol("edi-van")) == 2
        assert directory.agreements_for_protocol("oagis-http") == []
