"""Batchable tasks: drain-time coalescing on the kernel and sharded kernel.

The contract under test: ``submit_batchable(batcher, payload)`` tasks are
executed by handing payload runs to ``batcher.run_batch(payloads)``, and
coalescing only ever merges *adjacent* tasks — the payload order seen by
batchers concatenates to exactly the submission order, on every kernel
flavor.  On the deterministic sharded kernel, only globally consecutive
tasks merge, so the observable execution order is bit-for-bit the same as
the unbatched run (the transform-hub trace-parity gate rides on this).
"""

import pytest

from repro.runtime.kernel import Kernel, RunQueue
from repro.runtime.sharding import DETERMINISTIC, PARALLEL, ShardedKernel


class Recorder:
    """A batcher that logs every run_batch call it receives."""

    def __init__(self, log=None, name="batcher"):
        self.calls = []
        self.log = log
        self.name = name

    def run_batch(self, payloads):
        self.calls.append(list(payloads))
        if self.log is not None:
            self.log.extend((self.name, payload) for payload in payloads)


class TestRunQueueCoalescing:
    def test_adjacent_tasks_coalesce_into_one_call(self):
        queue = RunQueue()
        batcher = Recorder()
        for payload in range(5):
            queue.submit_batchable(batcher, payload)
        executed = queue.drain()
        assert executed == 5
        assert batcher.calls == [[0, 1, 2, 3, 4]]
        assert queue.tasks_executed == 5

    def test_plain_task_breaks_the_run(self):
        queue = RunQueue()
        batcher = Recorder()
        order = []
        queue.submit_batchable(batcher, "a")
        queue.submit_batchable(batcher, "b")
        queue.submit(lambda: order.append("plain"))
        queue.submit_batchable(batcher, "c")
        queue.drain()
        assert batcher.calls == [["a", "b"], ["c"]]
        assert order == ["plain"]

    def test_different_batchers_do_not_merge(self):
        queue = RunQueue()
        first, second = Recorder(name="first"), Recorder(name="second")
        queue.submit_batchable(first, 1)
        queue.submit_batchable(second, 2)
        queue.submit_batchable(first, 3)
        queue.drain()
        assert first.calls == [[1], [3]]
        assert second.calls == [[2]]

    def test_batch_budget_bounds_coalescing(self):
        queue = RunQueue(max_tasks_per_batch=3)
        batcher = Recorder()
        for payload in range(3):
            queue.submit_batchable(batcher, payload)
        queue.drain()
        assert batcher.calls == [[0, 1, 2]]
        for payload in range(4):
            queue.submit_batchable(batcher, payload)
        with pytest.raises(RuntimeError, match="max_tasks_per_batch"):
            queue.drain()

    def test_work_submitted_by_a_batch_runs_in_the_same_drain(self):
        queue = RunQueue()

        class Resubmitter:
            def __init__(self):
                self.calls = []

            def run_batch(self, payloads):
                self.calls.append(list(payloads))
                if payloads == [0]:
                    queue.submit_batchable(self, 1)

        batcher = Resubmitter()
        queue.submit_batchable(batcher, 0)
        executed = queue.drain()
        assert executed == 2
        assert batcher.calls == [[0], [1]]


class TestKernelBatching:
    def test_kernel_delegates_to_run_queue(self):
        kernel = Kernel()
        batcher = Recorder()
        kernel.submit_batchable(batcher, "x", label="t", partner_key="p-1")
        kernel.submit_batchable(batcher, "y")
        kernel.drain()
        assert batcher.calls == [["x", "y"]]


class TestShardedBatching:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_deterministic_order_matches_unbatched(self, shards):
        payloads = [(f"partner-{index % 5}", index) for index in range(40)]

        def run(batched):
            kernel = ShardedKernel(shards=shards, mode=DETERMINISTIC)
            log = []
            batcher = Recorder(log=log)
            for partner, sequence in payloads:
                if batched:
                    kernel.submit_batchable(
                        batcher, (partner, sequence), partner_key=partner
                    )
                else:
                    kernel.submit(
                        lambda p=(partner, sequence): batcher.run_batch([p]),
                        partner_key=partner,
                    )
            kernel.drain()
            return log, batcher.calls

        unbatched_log, _ = run(batched=False)
        batched_log, calls = run(batched=True)
        assert batched_log == unbatched_log  # global order is preserved
        assert [p for call in calls for p in call] == payloads
        if shards == 1:
            assert len(calls) == 1  # everything is globally consecutive

    def test_deterministic_merges_only_consecutive_submissions(self):
        # partners alternate between two shards, so no two same-shard tasks
        # are globally consecutive: nothing may coalesce.
        kernel = ShardedKernel(shards=2, mode=DETERMINISTIC)
        batcher = Recorder()
        partners = ["p-even", "p-odd"]

        class AlternatingRouter:
            def route(self, key, shards):
                return partners.index(key)

        kernel.router = AlternatingRouter()
        for sequence in range(10):
            kernel.submit_batchable(
                batcher, sequence, partner_key=partners[sequence % 2]
            )
        kernel.drain()
        assert batcher.calls == [[sequence] for sequence in range(10)]

    @pytest.mark.parametrize("shards", [1, 4])
    def test_parallel_drain_executes_every_payload_once(self, shards):
        kernel = ShardedKernel(shards=shards, mode=PARALLEL)
        batcher = Recorder()
        payloads = [(f"partner-{index % 7}", index) for index in range(60)]
        for partner, sequence in payloads:
            kernel.submit_batchable(
                batcher, (partner, sequence), partner_key=partner
            )
        kernel.drain()
        seen = sorted(p for call in batcher.calls for p in call)
        assert seen == sorted(payloads)

    def test_parallel_per_shard_order_is_preserved(self):
        kernel = ShardedKernel(shards=2, mode=PARALLEL)
        batcher = Recorder()
        partners = ["p-a", "p-b", "p-c", "p-d"]
        submissions = [
            (partner, sequence)
            for sequence in range(10)
            for partner in partners
        ]
        for partner, sequence in submissions:
            kernel.submit_batchable(batcher, (partner, sequence), partner_key=partner)
        kernel.drain()
        flat = [p for call in batcher.calls for p in call]
        for partner in partners:
            mine = [seq for p, seq in flat if p == partner]
            assert mine == sorted(mine)  # per-partner FIFO survives batching
