"""Acceptance test: all four architectures run on the shared kernel.

The same business scenario — one purchase-order round trip — executes on
the monolithic, cooperative, and distributed-interorg baselines and on the
advanced B2B engine.  Each run must (a) schedule through the shared
``Runtime``/``RunQueue`` kernel and (b) emit the same core lifecycle event
types, so the paper's per-architecture comparisons measure the models, not
runtime differences.
"""

from repro.analysis.scenarios import build_two_enterprise_pair
from repro.backend import OracleSimulator, SapSimulator
from repro.baselines.cooperative import CooperativeCommunity
from repro.baselines.distributed_interorg import (
    build_interorg_roundtrip_types,
    make_participant_engine,
    run_distributed_roundtrip,
)
from repro.baselines.monolithic import (
    NaiveClient,
    NaiveSellerRuntime,
    NaiveTopology,
    build_naive_seller_type,
)
from repro.core.enterprise import run_community
from repro.documents import edi
from repro.documents.normalized import make_purchase_order
from repro.messaging.network import NetworkConditions, SimulatedNetwork
from repro.runtime import ALL_EVENT_TYPES, Kernel, Runtime, ShardedKernel
from repro.sim import Clock, EventScheduler
from repro.transform.catalog import build_standard_registry

LINES = [{"sku": "X", "quantity": 2, "unit_price": 100.0}]

# Every architecture must emit at least this workflow-lifecycle core.
CORE_WORKFLOW_EVENTS = {
    "instance_created",
    "instance_started",
    "step_started",
    "step_completed",
    "instance_completed",
}

# The three networked architectures must additionally emit wire events.
CORE_NETWORK_EVENTS = {"message_sent", "message_delivered"}


def _run_monolithic(runtime_factory=None):
    scheduler = EventScheduler()
    runtime = runtime_factory(scheduler.clock) if runtime_factory else None
    network = SimulatedNetwork(
        scheduler, NetworkConditions.perfect(), seed=3, runtime=runtime
    )
    kernel = network.runtime
    trace = kernel.enable_trace()
    runtime = NaiveSellerRuntime(
        "ACME",
        network,
        build_naive_seller_type(NaiveTopology.figure9()),
        {"SAP": SapSimulator("SAP", scheduler=scheduler),
         "Oracle": OracleSimulator("Oracle", scheduler=scheduler)},
    )
    client = NaiveClient("TP1", network)
    registry = build_standard_registry()
    po = make_purchase_order("PO-X1", "TP1", "ACME", LINES)
    client.send_po("ACME", "edi-van", edi.to_wire(registry.transform(po, edi.EDI_X12)), "C1")
    scheduler.run_until_idle()
    assert runtime.backends["SAP"].has_order("PO-X1")
    return kernel, trace


def _run_cooperative(runtime_factory=None):
    scheduler = EventScheduler()
    runtime = runtime_factory(scheduler.clock) if runtime_factory else None
    network = SimulatedNetwork(
        scheduler, NetworkConditions.perfect(), seed=11, runtime=runtime
    )
    kernel = network.runtime
    trace = kernel.enable_trace()
    community = CooperativeCommunity(
        network,
        "TP1",
        "ACME",
        SapSimulator("SAP", scheduler=scheduler),
        OracleSimulator("Oracle", scheduler=scheduler),
        protocol_name="edi-van",
        buyer_threshold=10000,
        seller_thresholds={"TP1": 550000},
    )
    conversation_id = community.submit_order("PO-X1", LINES)
    community.run()
    assert community.buyer_instance(conversation_id).status == "completed"
    return kernel, trace


def _run_distributed(runtime_factory=None):
    kernel = runtime_factory(Clock()) if runtime_factory else Kernel()
    trace = kernel.enable_trace()
    left_erp = SapSimulator("SAP")
    right_erp = OracleSimulator("Oracle")
    left = make_participant_engine("left", left_erp, runtime=kernel)
    right = make_participant_engine("right", right_erp, runtime=kernel)
    left_erp.enter_order("PO-X1", "BuyerCo", "SellerCo", LINES)
    types = build_interorg_roundtrip_types(
        "BuyerCo", "SellerCo",
        "SAP", "sap-idoc", "Oracle", "oracle-oif",
        left_threshold=10000,
        right_thresholds={"BuyerCo": 550000},
        distributed=True,
        remote_engine="right-wfms",
    )
    result = run_distributed_roundtrip(left, right, types, "PO-X1", 200.0, "BuyerCo")
    assert result.instance.status == "completed"
    return kernel, trace


def _run_advanced(runtime_factory=None):
    pair = build_two_enterprise_pair(
        "rosettanet", seller_delay=0.0, runtime=runtime_factory
    )
    kernel = pair.runtime
    trace = kernel.enable_trace()
    instance_id = pair.buyer.submit_order("SAP", "ACME", "PO-X1", LINES)
    run_community(pair.enterprises())
    assert pair.buyer.instance(instance_id).status == "completed"
    return kernel, trace


ARCHITECTURES = {
    "monolithic": (_run_monolithic, True),
    "cooperative": (_run_cooperative, True),
    "distributed": (_run_distributed, False),  # in-process hand-over, no wire
    "advanced": (_run_advanced, True),
}


class TestSharedKernelAcrossArchitectures:
    def _streams(self):
        return {
            name: (runner(), networked)
            for name, (runner, networked) in ARCHITECTURES.items()
        }

    def test_all_architectures_schedule_through_the_run_queue(self):
        for name, ((kernel, _), _networked) in self._streams().items():
            assert kernel.run_queue.batches > 0, name
            assert kernel.run_queue.tasks_executed > 0, name
            assert kernel.run_queue.pending() == 0, name

    def test_same_scenario_emits_comparable_event_streams(self):
        streams = self._streams()
        for name, ((_, trace), networked) in streams.items():
            types = trace.event_types()
            missing = CORE_WORKFLOW_EVENTS - types
            assert not missing, f"{name} missing workflow events: {missing}"
            if networked:
                missing = CORE_NETWORK_EVENTS - types
                assert not missing, f"{name} missing network events: {missing}"
            unknown = types - ALL_EVENT_TYPES
            assert not unknown, f"{name} emitted unknown event types: {unknown}"
        # The shared core is identical across all four: the intersection of
        # every architecture's stream still contains the full workflow core.
        common = set(ALL_EVENT_TYPES)
        for (_, trace), _networked in streams.values():
            common &= trace.event_types()
        assert CORE_WORKFLOW_EVENTS <= common

    def test_metrics_observer_counts_completions_everywhere(self):
        for name, ((kernel, _), _networked) in self._streams().items():
            assert kernel.metrics.count("instance_completed") >= 1, name
            assert kernel.metrics.instance_durations.count >= 1, name

    def test_every_instance_lifecycle_is_well_formed(self):
        """Per instance: created first, started before any step event."""
        for name, ((_, trace), _networked) in self._streams().items():
            by_instance = {}
            for event in trace.events():
                instance_id = getattr(event, "instance_id", None)
                if instance_id is not None:
                    by_instance.setdefault(instance_id, []).append(event.type)
            assert by_instance, name
            for instance_id, types in by_instance.items():
                assert types[0] == "instance_created", (name, instance_id)
                if "step_started" in types:
                    assert types.index("instance_started") < types.index(
                        "step_started"
                    ), (name, instance_id)


class TestShardedKernelParity:
    """A single-shard ShardedKernel is a drop-in Kernel replacement.

    Every architecture runs unmodified on ``ShardedKernel(shards=1)``
    (deterministic mode) and must produce **byte-identical** metrics and
    an identical rendered event trace versus the plain ``Kernel`` run —
    the acceptance bar for the sharded hub refactor.
    """

    @staticmethod
    def _sharded_factory(clock):
        return ShardedKernel(shards=1, clock=clock)

    def test_sharded_kernel_satisfies_runtime_protocol(self):
        assert isinstance(ShardedKernel(), Runtime)

    def test_single_shard_metrics_and_trace_match_kernel(self):
        import json

        for name, (runner, _networked) in ARCHITECTURES.items():
            baseline_kernel, baseline_trace = runner()
            sharded_kernel, sharded_trace = runner(self._sharded_factory)
            assert isinstance(sharded_kernel, ShardedKernel), name
            baseline_metrics = json.dumps(
                baseline_kernel.metrics.as_dict(), sort_keys=True
            )
            sharded_metrics = json.dumps(
                sharded_kernel.metrics.as_dict(), sort_keys=True
            )
            assert baseline_metrics == sharded_metrics, name
            assert baseline_trace.render() == sharded_trace.render(), name
            assert (
                baseline_kernel.run_queue.tasks_executed
                == sharded_kernel.run_queue.tasks_executed
            ), name
