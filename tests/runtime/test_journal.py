"""Unit tests for the append-only journal: framing, rotation, snapshots."""

import dataclasses
import json
import zlib

import pytest

from repro.runtime import DocumentReceived, Kernel, MessageSent, attach_journal
from repro.runtime.journal import (
    _EVENT_CLASSES,
    _encode_json,
    _event_frame,
    _fast_body,
    _frame,
    _parse_line,
    JournalError,
    JournalWriter,
    KIND_COMMAND,
    KIND_EVENT,
    SnapshotStore,
    decode_event,
    encode_event,
    read_segment_dir,
    segment_files,
)

SAMPLE_VALUES = {"str": "value-01", "float": 12.5, "int": 7}


def sample_event(cls):
    """One instance of ``cls`` with annotation-typed field values."""
    kwargs = {
        spec.name: SAMPLE_VALUES[spec.type]
        for spec in dataclasses.fields(cls)
    }
    return cls(**kwargs)


ALL_CLASSES = sorted(_EVENT_CLASSES.values(), key=lambda cls: cls.type)


class TestEventCodec:
    @pytest.mark.parametrize("cls", ALL_CLASSES, ids=lambda cls: cls.type)
    def test_round_trip_every_event_class(self, cls):
        event = sample_event(cls)
        payload = encode_event(event)
        assert payload[0] == cls.type
        assert decode_event(payload) == event

    def test_unregistered_event_type_is_rejected(self):
        class Rogue:
            type = "rogue"

        with pytest.raises(JournalError, match="unregistered"):
            encode_event(Rogue())
        with pytest.raises(JournalError, match="unknown"):
            decode_event(["rogue", 0.0, "src"])


class TestFraming:
    @pytest.mark.parametrize("cls", ALL_CLASSES, ids=lambda cls: cls.type)
    def test_fused_framer_matches_generic_path(self, cls):
        """The codegen framer must be byte-identical to the encoder path."""
        event = sample_event(cls)
        fused = _event_frame(41, event)
        generic = _frame(41, KIND_EVENT, encode_event(event))
        assert fused == generic

    def test_fast_body_matches_stdlib_encoder(self):
        payload = ["document_received", 1.25, "hub", "C-1", "po", None, True, 9]
        assert _fast_body(payload) == _encode_json(payload).encode()

    @pytest.mark.parametrize(
        "value",
        ['quote"inside', "back\\slash", "unié", "\n", float("nan"),
         float("inf"), {"nested": 1}, ["nested"]],
    )
    def test_fast_body_punts_unsafe_values_to_the_encoder(self, value):
        assert _fast_body(["x", value]) is None
        # The frame is still correct via the fallback (when encodable).
        if not isinstance(value, float) or value == value:
            frame = _frame(3, KIND_EVENT, ["x", value])
            seq, kind, payload = _parse_line(frame)
            assert (seq, kind) == (3, KIND_EVENT)

    def test_fused_framer_punts_surprise_field_types(self):
        # A str-annotated field holding None must fall back, not crash.
        event = DocumentReceived(
            at=1.0, source="hub", conversation_id=None,
            doc_type="po", partner_id="p",
        )
        assert _event_frame(0, event) is None
        # Non-finite floats likewise.
        event = MessageSent(
            at=float("nan"), source="hub", message_id="m", sender="a",
            receiver="b", kind="business", protocol="rnif", doc_type="po",
        )
        assert _event_frame(0, event) is None

    def test_frame_parse_round_trip(self):
        frame = _frame(12, KIND_COMMAND, {"id": "PO-1", "op": "submit", "args": {}})
        seq, kind, payload = _parse_line(frame)
        assert (seq, kind) == (12, KIND_COMMAND)
        assert payload == {"args": {}, "id": "PO-1", "op": "submit"}

    def test_parse_rejects_damage(self):
        good = _frame(0, KIND_EVENT, ["x", 1])
        assert _parse_line(good[:-5]) == "torn record (no terminator)"
        assert _parse_line(b"junk\n") == "malformed header"
        assert "unknown record kind" in _parse_line(b"0 bogus 1 00000000 x\n")
        flipped = bytearray(good)
        flipped[-3] ^= 0xFF
        assert _parse_line(bytes(flipped)) == "checksum mismatch"
        # Valid checksum over a non-JSON body.
        body = b"not json"
        bad = b"0 event %d %08x %s\n" % (len(body), zlib.crc32(body), body)
        assert _parse_line(bad) == "unparseable payload"


class TestJournalWriter:
    def test_rotation_round_trip(self, tmp_path):
        writer = JournalWriter(tmp_path, segment_max_bytes=200, flush_interval=1)
        for seq in range(50):
            writer.append(seq, KIND_EVENT, ["tick", float(seq), f"src-{seq}"])
        writer.close()
        segments = segment_files(tmp_path)
        assert len(segments) > 1
        assert writer.segments_rotated == len(segments) - 1
        records, truncations = read_segment_dir(tmp_path)
        assert not truncations
        assert [record.seq for record in records] == list(range(50))
        assert [record.payload[1] for record in records] == [
            float(seq) for seq in range(50)
        ]

    def test_record_never_splits_across_segments(self, tmp_path):
        writer = JournalWriter(tmp_path, segment_max_bytes=120, flush_interval=1)
        for seq in range(30):
            writer.append(seq, KIND_EVENT, ["padded", "x" * 40])
        writer.close()
        for segment in segment_files(tmp_path):
            for line in segment.read_bytes().splitlines(keepends=True):
                assert not isinstance(_parse_line(line), str)

    def test_group_commit_buffers_until_flush(self, tmp_path):
        writer = JournalWriter(tmp_path, flush_interval=64)
        writer.append(0, KIND_EVENT, ["x"])
        segment = segment_files(tmp_path)[0]
        assert segment.stat().st_size == 0  # still buffered
        writer.flush()
        assert segment.stat().st_size > 0
        writer.close()

    def test_reopen_appends_to_existing_segment(self, tmp_path):
        writer = JournalWriter(tmp_path, flush_interval=1)
        writer.append(0, KIND_EVENT, ["first"])
        writer.close()
        writer = JournalWriter(tmp_path, flush_interval=1)
        writer.append(1, KIND_EVENT, ["second"])
        writer.close()
        records, _ = read_segment_dir(tmp_path)
        assert [record.payload[0] for record in records] == ["first", "second"]
        assert len(segment_files(tmp_path)) == 1

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = JournalWriter(tmp_path)
        writer.close()
        with pytest.raises(JournalError, match="closed"):
            writer.append(0, KIND_EVENT, ["x"])

    def test_corrupt_tail_truncates_at_last_whole_record(self, tmp_path):
        writer = JournalWriter(tmp_path, flush_interval=1)
        for seq in range(10):
            writer.append(seq, KIND_EVENT, ["tick", seq])
        writer.close()
        segment = segment_files(tmp_path)[0]
        data = bytearray(segment.read_bytes())
        data[-4] ^= 0xFF  # bit-rot inside the final frame
        segment.write_bytes(data)
        records, truncations = read_segment_dir(tmp_path)
        assert [record.seq for record in records] == list(range(9))
        assert len(truncations) == 1
        assert truncations[0].reason == "checksum mismatch"

    def test_data_after_a_tear_is_not_trusted(self, tmp_path):
        writer = JournalWriter(tmp_path, flush_interval=1)
        for seq in range(6):
            writer.append(seq, KIND_EVENT, ["tick", seq])
        writer.close()
        segment = segment_files(tmp_path)[0]
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[2] = lines[2][: len(lines[2]) // 2] + b"\n"  # torn mid-file
        segment.write_bytes(b"".join(lines))
        records, truncations = read_segment_dir(tmp_path)
        assert [record.seq for record in records] == [0, 1]
        assert truncations


class TestSnapshotStore:
    def test_save_load_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save({"counters": {"tick": 3}}, seq=41)
        state, seq = store.load_latest()
        assert seq == 41
        assert state == {"counters": {"tick": 3}}

    def test_keep_prunes_old_snapshots(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for seq in (10, 20, 30):
            store.save({"seq": seq}, seq=seq)
        assert len(sorted(tmp_path.glob("snapshot-*.json"))) == 2
        _, seq = store.load_latest()
        assert seq == 30

    def test_torn_snapshot_falls_back_to_previous(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=3)
        store.save({"seq": 10}, seq=10)
        newest = store.save({"seq": 20}, seq=20)
        blob = newest.read_bytes()
        newest.write_bytes(blob[: len(blob) // 2])
        state, seq = store.load_latest()
        assert seq == 10 and state == {"seq": 10}

    def test_max_seq_skips_snapshots_past_the_cut(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=3)
        store.save({"seq": 10}, seq=10)
        store.save({"seq": 20}, seq=20)
        _, seq = store.load_latest(max_seq=15)
        assert seq == 10
        assert store.load_latest(max_seq=5) is None

    def test_bit_flip_fails_the_snapshot_checksum(self, tmp_path):
        store = SnapshotStore(tmp_path)
        path = store.save({"balance": 100}, seq=5)
        payload = json.loads(path.read_text())
        payload["state"]["balance"] = 999  # tampered, crc now stale
        path.write_text(json.dumps(payload))
        assert store.load_latest() is None


class TestKernelJournalSession:
    def test_write_ahead_hook_is_exclusive_and_detaches_on_close(self, tmp_path):
        kernel = Kernel()
        journal = attach_journal(kernel, tmp_path)
        with pytest.raises(JournalError, match="already has"):
            attach_journal(kernel, tmp_path / "other")
        journal.close()
        assert kernel.bus.write_ahead is None
        kernel2 = Kernel()
        reattached = attach_journal(kernel2, tmp_path / "other")
        reattached.close()

    def test_events_commands_and_markers_share_one_sequence(self, tmp_path):
        kernel = Kernel()
        journal = attach_journal(kernel, tmp_path, flush_interval=1)
        journal.log_command("PO-1", "submit", {"po_number": "PO-1"})
        kernel.emit(
            DocumentReceived, "hub",
            conversation_id="C-1", doc_type="po", partner_id="p-1",
        )
        journal.mark("registry_version", {"model": "m", "digest": "d",
                                          "transforms_version": 1})
        journal.close()
        records, _ = read_segment_dir(tmp_path)
        assert [(record.seq, record.kind) for record in records] == [
            (0, "command"), (1, "event"), (2, "marker"),
        ]
        assert journal.events_journaled == 1
        assert journal.commands_journaled == 1
        assert journal.markers_journaled == 1

    def test_snapshot_validates_its_own_recovery(self, tmp_path):
        kernel = Kernel()
        journal = attach_journal(kernel, tmp_path)
        for index in range(20):
            kernel.emit(
                DocumentReceived, "hub",
                conversation_id=f"C-{index}", doc_type="po", partner_id="p",
            )
        path = journal.snapshot()
        journal.close()
        assert path.exists()
        state, seq = SnapshotStore(tmp_path).load_latest()
        assert seq == journal.last_seq
        assert state["counters"]["document_received"] == 20
