"""Unit tests for the runtime kernel: run queue, event bus, observers."""

import pytest

from repro.runtime import (
    ALL_EVENT_TYPES,
    EventBus,
    Histogram,
    InstanceCompleted,
    Kernel,
    MetricsObserver,
    RunQueue,
    Runtime,
    StepStarted,
    TraceRecorder,
)
from repro.sim import Clock


def _step(at=0.0, source="engine", instance_id="I-1", step_id="a"):
    return StepStarted(at=at, source=source, instance_id=instance_id, step_id=step_id)


def _completed(at=1.0, source="engine", instance_id="I-1", duration=1.0):
    return InstanceCompleted(
        at=at, source=source, instance_id=instance_id, type_name="t", duration=duration
    )


class TestRunQueue:
    def test_fifo_order(self):
        queue = RunQueue()
        order = []
        queue.submit(lambda: order.append("a"))
        queue.submit(lambda: order.append("b"))
        queue.submit(lambda: order.append("c"))
        assert queue.drain() == 3
        assert order == ["a", "b", "c"]

    def test_tasks_submitted_during_drain_run_in_same_batch(self):
        queue = RunQueue()
        order = []

        def first():
            order.append("first")
            queue.submit(lambda: order.append("child"))

        queue.submit(first)
        queue.submit(lambda: order.append("second"))
        executed = queue.drain()
        assert executed == 3
        assert order == ["first", "second", "child"]
        assert queue.batches == 1

    def test_nested_drain_consumes_shared_queue(self):
        queue = RunQueue()
        order = []

        def parent():
            order.append("parent-pre")
            queue.submit(lambda: order.append("child"))
            queue.drain()  # synchronous subtree: child runs before we return
            order.append("parent-post")

        queue.submit(parent)
        queue.drain()
        assert order == ["parent-pre", "child", "parent-post"]
        assert queue.batches == 1  # nested drain is not a new batch
        assert queue.depth == 0

    def test_exception_at_outermost_level_clears_queue(self):
        queue = RunQueue()
        ran = []

        def boom():
            raise ValueError("boom")

        queue.submit(boom)
        queue.submit(lambda: ran.append("after"))
        with pytest.raises(ValueError):
            queue.drain()
        assert queue.pending() == 0
        assert ran == []
        assert queue.depth == 0

    def test_runaway_submit_loop_raises(self):
        queue = RunQueue(max_tasks_per_batch=50)

        def resubmit():
            queue.submit(resubmit)

        queue.submit(resubmit)
        with pytest.raises(RuntimeError, match="max_tasks_per_batch"):
            queue.drain()

    def test_reentrant_drain_shares_one_batch_budget(self):
        """A nested drain consumes the *outer* batch's budget, so the
        runaway guard cannot be dodged by splitting the loop over
        nested drains."""
        queue = RunQueue(max_tasks_per_batch=10)

        def resubmit_nested():
            queue.submit(resubmit_nested)
            queue.drain()

        queue.submit(resubmit_nested)
        with pytest.raises(RuntimeError, match="max_tasks_per_batch"):
            queue.drain()
        assert queue.tasks_executed == 10
        assert queue.batches == 1

    def test_depth_resets_after_nested_failure(self):
        queue = RunQueue()

        def parent():
            queue.submit(boom)
            queue.drain()  # nested drain raises through the parent frame

        def boom():
            raise ValueError("nested boom")

        queue.submit(parent)
        with pytest.raises(ValueError, match="nested boom"):
            queue.drain()
        assert queue.depth == 0
        assert queue.pending() == 0
        # And the queue is immediately usable again.
        ran = []
        queue.submit(lambda: ran.append("ok"))
        queue.drain()
        assert ran == ["ok"]

    def test_budget_exhaustion_inside_nested_drain(self):
        """Hitting max_tasks_per_batch inside a nested drain abandons the
        whole batch at the outermost level, not just the subtree."""
        queue = RunQueue(max_tasks_per_batch=3)
        ran = []

        def parent():
            ran.append("parent")
            for index in range(5):
                queue.submit(lambda index=index: ran.append(f"child-{index}"))
            queue.drain()

        queue.submit(parent)
        with pytest.raises(RuntimeError, match="max_tasks_per_batch"):
            queue.drain()
        # Budget 3 covers parent + two children; the rest are abandoned.
        assert ran == ["parent", "child-0", "child-1"]
        assert queue.depth == 0
        assert queue.pending() == 0
        assert queue.abandoned == 3

    def test_abandoned_tasks_are_counted_and_hook_fires(self):
        observed = []
        queue = RunQueue(
            on_abandoned=lambda dropped, error: observed.append((dropped, str(error)))
        )

        def boom():
            raise ValueError("boom")

        queue.submit(boom)
        queue.submit(lambda: None)
        queue.submit(lambda: None)
        with pytest.raises(ValueError):
            queue.drain()
        assert queue.abandoned == 2
        assert observed == [(2, "boom")]
        # A clean failure with nothing queued behind it abandons nothing.
        queue.submit(boom)
        with pytest.raises(ValueError):
            queue.drain()
        assert queue.abandoned == 2
        assert len(observed) == 1


class TestEventBus:
    def test_subscribe_receives_all_events(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish(_step())
        bus.publish(_completed())
        assert [event.type for event in seen] == ["step_started", "instance_completed"]
        assert bus.published == 2

    def test_filter_by_class_and_string(self):
        bus = EventBus()
        by_class, by_string = [], []
        bus.subscribe(by_class.append, events=[StepStarted])
        bus.subscribe(by_string.append, events=["instance_completed"])
        bus.publish(_step())
        bus.publish(_completed())
        assert [event.type for event in by_class] == ["step_started"]
        assert [event.type for event in by_string] == ["instance_completed"]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        subscription = bus.subscribe(seen.append)
        bus.publish(_step())
        subscription.unsubscribe()
        subscription.unsubscribe()  # idempotent
        bus.publish(_step())
        assert len(seen) == 1
        assert bus.subscriber_count() == 0


class TestTraceRecorder:
    def test_ring_buffer_caps_retention(self):
        trace = TraceRecorder(capacity=3)
        for index in range(5):
            trace(_step(at=float(index), step_id=f"s{index}"))
        assert len(trace) == 3
        assert trace.recorded == 5
        assert [event.step_id for event in trace.events()] == ["s2", "s3", "s4"]

    def test_query_by_type_source_and_instance(self):
        trace = TraceRecorder()
        trace(_step(source="left", instance_id="I-1"))
        trace(_step(source="right", instance_id="I-2"))
        trace(_completed(source="left", instance_id="I-1"))
        assert len(trace.events(type=StepStarted)) == 2
        assert len(trace.events(type="step_started", source="left")) == 1
        assert len(trace.events(instance_id="I-2")) == 1
        assert trace.last().type == "instance_completed"
        assert trace.last(type=StepStarted).source == "right"
        assert trace.event_types() == {"step_started", "instance_completed"}

    def test_render_is_one_line_per_event(self):
        trace = TraceRecorder()
        trace(_step())
        trace(_completed())
        lines = trace.render().splitlines()
        assert len(lines) == 2
        assert "step_started" in lines[0]
        assert "instance_completed" in lines[1]
        assert trace.render(limit=1).splitlines() == [lines[1]]


class TestMetricsObserver:
    def test_counts_by_type_and_source(self):
        metrics = MetricsObserver()
        metrics(_step(source="left"))
        metrics(_step(source="left"))
        metrics(_step(source="right"))
        assert metrics.count(StepStarted) == 3
        assert metrics.count("step_started", source="left") == 2
        assert metrics.count(StepStarted, source="nobody") == 0
        assert metrics.sources(StepStarted) == {"left": 2, "right": 1}

    def test_instance_durations_feed_histogram(self):
        metrics = MetricsObserver()
        metrics(_completed(duration=0.05))
        metrics(_completed(duration=2.0))
        histogram = metrics.instance_durations
        assert histogram.count == 2
        assert histogram.mean == pytest.approx(1.025)
        assert histogram.min == pytest.approx(0.05)
        assert histogram.max == pytest.approx(2.0)

    def test_as_dict_shape(self):
        metrics = MetricsObserver()
        metrics(_step())
        snapshot = metrics.as_dict()
        assert snapshot["events"] == {"step_started": 1}
        assert snapshot["instance_durations"]["count"] == 0


class TestHistogram:
    def test_bucket_boundaries(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        assert histogram.as_dict()["buckets"] == {"<=1": 2, "<=10": 1, ">10": 1}


class TestKernel:
    def test_satisfies_runtime_protocol(self):
        assert isinstance(Kernel(), Runtime)

    def test_emit_stamps_clock_time(self):
        clock = Clock(start=3.5)
        kernel = Kernel(clock=clock)
        seen = []
        kernel.subscribe(seen.append)
        kernel.emit(StepStarted, "engine", instance_id="I-1", step_id="a")
        assert seen[0].at == 3.5
        assert seen[0].source == "engine"

    def test_metrics_always_attached(self):
        kernel = Kernel()
        kernel.emit(StepStarted, "engine", instance_id="I-1", step_id="a")
        assert kernel.metrics.count(StepStarted) == 1

    def test_enable_trace_is_idempotent(self):
        kernel = Kernel()
        trace = kernel.enable_trace()
        assert kernel.enable_trace() is trace
        kernel.emit(StepStarted, "engine", instance_id="I-1", step_id="a")
        assert len(trace.events()) == 1

    def test_enable_trace_rejects_capacity_mismatch(self):
        kernel = Kernel()
        trace = kernel.enable_trace(capacity=100)
        assert kernel.enable_trace(capacity=100) is trace
        with pytest.raises(ValueError, match="capacity=100"):
            kernel.enable_trace(capacity=5)

    def test_drain_failure_emits_batch_abandoned_event(self):
        kernel = Kernel()
        trace = kernel.enable_trace()

        def boom():
            raise ValueError("boom")

        kernel.submit(boom)
        kernel.submit(lambda: None)
        with pytest.raises(ValueError):
            kernel.drain()
        assert kernel.run_queue.abandoned == 1
        event = trace.last(type="batch_abandoned")
        assert event is not None
        assert event.abandoned == 1
        assert event.error == "boom"
        assert kernel.metrics.count("batch_abandoned") == 1

    def test_event_type_taxonomy_is_consistent(self):
        assert "instance_started" in ALL_EVENT_TYPES
        assert "message_delivered" in ALL_EVENT_TYPES
        assert "conversation_completed" in ALL_EVENT_TYPES
        assert "batch_abandoned" in ALL_EVENT_TYPES
        assert "shard_saturated" in ALL_EVENT_TYPES
        assert "shard_drained" in ALL_EVENT_TYPES
        assert "transform_cache_snapshot" in ALL_EVENT_TYPES
        assert len(ALL_EVENT_TYPES) == 24
