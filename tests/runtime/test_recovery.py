"""Recovery tests: prefix replay, snapshot stitching, sharded merge."""

import shutil

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import (
    ConversationStarted,
    DocumentReceived,
    DocumentSent,
    Kernel,
    MessageDelivered,
    attach_journal,
    recover,
)
from repro.runtime.journal import segment_files
from repro.runtime.sharding import DETERMINISTIC, ShardedKernel

# -- workload --------------------------------------------------------------

CONVERSATIONS = ("C-1", "C-2", "C-3")
PARTNERS = ("acme", "initech")
DOC_TYPES = ("purchase_order", "po_ack", "invoice")


def apply_operation(kernel, journal, operation) -> None:
    """Replay one generated operation against a journaled kernel."""
    tag, conversation, doc_type, partner = operation
    if tag == "start":
        kernel.emit(
            ConversationStarted, "hub",
            conversation_id=conversation, protocol="rnif",
            partner_id=partner, role="buyer",
        )
    elif tag == "send":
        kernel.emit(
            DocumentSent, "hub",
            conversation_id=conversation, doc_type=doc_type,
            partner_id=partner,
        )
    elif tag == "receive":
        kernel.emit(
            DocumentReceived, "hub",
            conversation_id=conversation, doc_type=doc_type,
            partner_id=partner,
        )
    elif tag == "deliver":
        kernel.emit(
            MessageDelivered, "hub",
            message_id=f"msg-{conversation}-{doc_type}", sender="hub",
            receiver=partner, kind="business",
        )
    elif tag == "command":
        journal.log_command(
            f"cmd-{conversation}", "submit_order",
            {"po_number": conversation, "partner": partner},
        )
    else:  # marker
        journal.mark(
            "registry_version",
            {"model": partner, "digest": doc_type, "transforms_version": 1},
        )


operations = st.lists(
    st.tuples(
        st.sampled_from(
            ["start", "send", "receive", "deliver", "command", "marker"]
        ),
        st.sampled_from(CONVERSATIONS),
        st.sampled_from(DOC_TYPES),
        st.sampled_from(PARTNERS),
    ),
    min_size=1,
    max_size=40,
)


def write_journal(directory, ops, kernel=None):
    kernel = kernel if kernel is not None else Kernel()
    journal = attach_journal(kernel, directory, flush_interval=1)
    for operation in ops:
        apply_operation(kernel, journal, operation)
    journal.close()
    return journal


def record_keys(recovered):
    return [(r.seq, r.kind, r.payload) for r in recovered.records]


# -- the prefix property ---------------------------------------------------


@settings(max_examples=30, deadline=None)
@given(ops=operations, cut=st.floats(min_value=0.0, max_value=1.0))
def test_replay_of_any_journal_prefix_is_a_prefix_of_the_full_run(
    tmp_path_factory, ops, cut
):
    """Truncating the log at *any* byte yields a prefix of the full replay.

    This is the recovery contract the crash harness leans on: no torn
    tail can ever produce state the uncrashed run would not have passed
    through."""
    base = tmp_path_factory.mktemp("prefix")
    full_dir = base / "full"
    write_journal(full_dir, ops)
    full = recover(full_dir)
    assert full.replayed == len(ops)

    cut_dir = base / "cut"
    shutil.copytree(full_dir, cut_dir)
    (segment,) = segment_files(cut_dir)
    blob = segment.read_bytes()
    offset = int(cut * len(blob))
    segment.write_bytes(blob[:offset])

    partial = recover(cut_dir)
    kept = len(partial.records)
    assert record_keys(partial) == record_keys(full)[:kept]

    # The projection over the prefix equals a fresh run of that prefix.
    replay_dir = base / "replay"
    write_journal(replay_dir, ops[:kept])
    assert partial.projector.state() == recover(replay_dir).projector.state()
    shutil.rmtree(base, ignore_errors=True)


# -- snapshot + tail stitching ---------------------------------------------


def test_snapshot_plus_tail_equals_full_replay(tmp_path):
    ops = [
        ("start", "C-1", "purchase_order", "acme"),
        ("command", "C-1", "purchase_order", "acme"),
        ("send", "C-1", "purchase_order", "acme"),
    ]
    tail = [
        ("receive", "C-1", "po_ack", "acme"),
        ("deliver", "C-1", "po_ack", "acme"),
        ("marker", "C-2", "digest-2", "initech"),
    ]
    kernel = Kernel()
    journal = attach_journal(kernel, tmp_path, flush_interval=1)
    for operation in ops:
        apply_operation(kernel, journal, operation)
    journal.snapshot()
    for operation in tail:
        apply_operation(kernel, journal, operation)
    journal.close()

    recovered = recover(tmp_path)
    assert recovered.snapshot_seq == len(ops) - 1
    assert recovered.replayed == len(tail)  # only the tail is re-folded
    assert len(recovered.records) == len(ops) + len(tail)

    # Stitched state == state of a journal that never snapshotted.
    flat_dir = tmp_path / "flat"
    write_journal(flat_dir, ops + tail)
    assert recovered.projector.state() == recover(flat_dir).projector.state()


def test_projection_queries_surface_crash_fragile_state(tmp_path):
    ops = [
        ("start", "C-1", "purchase_order", "acme"),
        ("start", "C-2", "purchase_order", "initech"),
        ("receive", "C-1", "purchase_order", "acme"),
        ("deliver", "C-1", "purchase_order", "acme"),
        ("command", "C-1", "purchase_order", "acme"),
    ]
    write_journal(tmp_path, ops)
    projector = recover(tmp_path).projector
    assert projector.open_conversations() == ["hub:C-1", "hub:C-2"]
    assert projector.received_documents()["hub:C-1"] == 1
    assert projector.dedup_ids("acme") == ["msg-C-1-purchase_order"]
    assert projector.command_ids() == {"cmd-C-1"}


# -- sharded merge ---------------------------------------------------------


def write_sharded_journal(directory, count, shards=4):
    """Drain ``count`` keyed tasks so events land on their owning shards
    (a direct ``emit`` from outside a drain always lands on shard 0)."""
    kernel = ShardedKernel(shards=shards, mode=DETERMINISTIC)
    journal = attach_journal(kernel, directory, flush_interval=1)

    def receive(index, partner):
        kernel.emit(
            DocumentReceived, "hub",
            conversation_id=f"C-{index}", doc_type="purchase_order",
            partner_id=partner,
        )

    for index in range(count):
        partner = f"partner-{index % 8}"
        kernel.submit(
            lambda index=index, partner=partner: receive(index, partner),
            partner_key=partner,
        )
    kernel.drain()
    journal.close()


def test_sharded_journal_merges_to_global_order(tmp_path):
    write_sharded_journal(tmp_path, 60)
    populated = [
        path for path in sorted(tmp_path.glob("shard-*"))
        if sum(seg.stat().st_size for seg in segment_files(path))
    ]
    assert len(populated) > 1  # the workload really is spread out
    recovered = recover(tmp_path)
    assert recovered.sharded
    assert [record.seq for record in recovered.records] == list(range(60))


def test_sharded_gap_cuts_at_longest_contiguous_prefix(tmp_path):
    write_sharded_journal(tmp_path, 60)
    full = recover(tmp_path)

    # Tear the tail off ONE shard's log: every global sequence past that
    # shard's first lost record may depend on it, so recovery must cut
    # there even though the other shards' records survive intact.
    # Pick the busiest shard so the tear actually loses records (three
    # conversations hash unevenly over four shards).
    victim = max(
        sorted(tmp_path.glob("shard-*")),
        key=lambda path: sum(
            len(seg.read_bytes().splitlines()) for seg in segment_files(path)
        ),
    )
    (segment,) = segment_files(victim)
    lines = segment.read_bytes().splitlines(keepends=True)
    assert len(lines) >= 2
    kept_lines = lines[: len(lines) // 2]
    segment.write_bytes(b"".join(kept_lines))
    victim_kept = {int(line.split(b" ", 1)[0]) for line in kept_lines}
    victim_all = {int(line.split(b" ", 1)[0]) for line in lines}
    first_lost = min(victim_all - victim_kept)

    recovered = recover(tmp_path)
    assert recovered.last_seq == first_lost - 1
    assert recovered.dropped_records > 0
    assert record_keys(recovered) == record_keys(full)[:first_lost]
