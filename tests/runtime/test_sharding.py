"""ShardedKernel: routing, drain modes, backpressure, inter-shard wiring."""

import pytest

from repro.messaging.network import NetworkConditions, SimulatedNetwork
from repro.runtime import HashShardRouter, ShardedKernel
from repro.runtime.sharding import DETERMINISTIC, PARALLEL, ShardClockView
from repro.sim import Clock, EventScheduler


class MapRouter:
    """Explicit partner->shard map, for tests that pin placement."""

    def __init__(self, mapping):
        self.mapping = mapping

    def route(self, partner_key, shard_count):
        return self.mapping[partner_key] % shard_count


class TestRouting:
    def test_hash_router_is_stable_and_in_range(self):
        router = HashShardRouter()
        for key in ("TP1", "ACME", "partner-042", ""):
            for shards in (1, 2, 4, 8):
                first = router.route(key, shards)
                assert 0 <= first < shards
                assert router.route(key, shards) == first

    def test_keyed_tasks_land_on_their_partner_shard(self):
        kernel = ShardedKernel(
            shards=3, router=MapRouter({"a": 0, "b": 1, "c": 2})
        )
        seen = []
        for key in ("a", "b", "c", "b"):
            kernel.submit(lambda key=key: seen.append(key), partner_key=key)
        assert [len(shard.tasks) for shard in kernel.shards] == [1, 2, 1]
        assert kernel.drain() == 4
        assert sorted(seen) == ["a", "b", "b", "c"]

    def test_unkeyed_ingress_goes_to_shard_zero(self):
        kernel = ShardedKernel(shards=4)
        kernel.submit(lambda: None)
        assert len(kernel.shards[0].tasks) == 1

    def test_unkeyed_task_submitted_during_execution_stays_on_shard(self):
        kernel = ShardedKernel(shards=2, router=MapRouter({"b": 1}))
        ran_on = []

        def follow_up():
            ran_on.append(kernel._current_shard())

        kernel.submit(lambda: kernel.submit(follow_up), partner_key="b")
        kernel.drain()
        assert ran_on == [1]

    def test_constructor_validates_arguments(self):
        with pytest.raises(ValueError):
            ShardedKernel(shards=0)
        with pytest.raises(ValueError):
            ShardedKernel(mode="eager")

    def test_shard_clock_views_share_the_kernel_clock(self):
        clock = Clock(start=7.5)
        kernel = ShardedKernel(shards=2, clock=clock)
        assert all(shard.clock.now() == 7.5 for shard in kernel.shards)
        assert isinstance(kernel.shards[1].clock, ShardClockView)


def _keyed_workload(kernel, messages=120, partners=6, cross_every=10):
    """Submit a deterministic keyed workload; returns the execution log."""
    log = []

    def handle(partner, sequence):
        log.append((partner, sequence))
        if sequence % cross_every == 0:
            sibling = f"p{(sequence + 1) % partners}"
            kernel.submit(
                lambda: log.append((f"notify-{sibling}", sequence)),
                partner_key=sibling,
            )

    for sequence in range(messages):
        partner = f"p{sequence % partners}"
        kernel.submit(
            lambda partner=partner, sequence=sequence: handle(partner, sequence),
            partner_key=partner,
        )
    return log


class TestDeterministicDrain:
    def test_execution_order_is_invariant_across_shard_counts(self):
        logs = {}
        for shards in (1, 2, 3, 4, 8):
            kernel = ShardedKernel(shards=shards)
            log = _keyed_workload(kernel)
            kernel.drain()
            logs[shards] = log
        reference = logs[1]
        assert all(log == reference for log in logs.values())

    def test_event_trace_is_invariant_across_shard_counts(self):
        renders = set()
        for shards in (1, 2, 4):
            kernel = ShardedKernel(shards=shards)
            trace = kernel.enable_trace()

            def ping(kernel=kernel, shards=shards):
                from repro.runtime.events import DocumentReceived

                kernel.emit(
                    DocumentReceived,
                    "hub",
                    conversation_id="C1",
                    doc_type="purchase_order",
                    partner_id="TP1",
                )

            for index in range(20):
                kernel.submit(ping, partner_key=f"p{index % 5}")
            kernel.drain()
            renders.add(trace.render())
        assert len(renders) == 1

    def test_nested_drain_shares_the_batch_budget(self):
        kernel = ShardedKernel(shards=2, max_tasks_per_batch=5)

        def spin():
            kernel.submit(spin)
            kernel.drain()

        kernel.submit(spin, partner_key="a")
        with pytest.raises(RuntimeError, match="max_tasks_per_batch"):
            kernel.drain()
        assert kernel.run_queue.batches == 1
        assert kernel.run_queue.depth == 0

    def test_failure_abandons_queued_work_and_emits_event(self):
        kernel = ShardedKernel(shards=2, router=MapRouter({"a": 0, "b": 1}))
        events = []
        kernel.subscribe(events.append, events=["batch_abandoned"])

        def boom():
            raise ValueError("handler failed")

        kernel.submit(boom, partner_key="a")
        kernel.submit(lambda: None, partner_key="b")
        kernel.submit(lambda: None, partner_key="b")
        with pytest.raises(ValueError):
            kernel.drain()
        assert kernel.run_queue.abandoned == 2
        assert kernel.run_queue.pending() == 0
        assert len(events) == 1 and events[0].abandoned == 2

    def test_trace_capacity_mismatch_is_rejected(self):
        kernel = ShardedKernel(shards=2)
        kernel.enable_trace(capacity=100)
        with pytest.raises(ValueError, match="capacity=100"):
            kernel.enable_trace(capacity=200)


class TestBackpressure:
    def test_saturation_and_drain_events_bracket_an_overload(self):
        kernel = ShardedKernel(shards=1, saturation_watermark=5)
        events = []
        kernel.subscribe(events.append, events=["shard_saturated", "shard_drained"])
        for _ in range(10):
            kernel.submit(lambda: None, partner_key="a")
        # Hysteresis: one saturation event despite five over-watermark submits.
        assert [event.type for event in events] == ["shard_saturated"]
        assert events[0].pending == 6 and events[0].watermark == 5
        kernel.drain()
        assert [event.type for event in events] == [
            "shard_saturated",
            "shard_drained",
        ]

    def test_deterministic_inbox_overflow_raises(self):
        kernel = ShardedKernel(
            shards=2, router=MapRouter({"a": 0, "b": 1}), inbox_capacity=1
        )

        def flood():
            kernel.submit(lambda: None, partner_key="b")
            kernel.submit(lambda: None, partner_key="b")

        kernel.submit(flood, partner_key="a")
        with pytest.raises(RuntimeError, match="inbox overflow"):
            kernel.drain()
        assert kernel.run_queue.abandoned >= 1

    def test_cross_shard_traffic_is_counted_per_link(self):
        kernel = ShardedKernel(shards=2, router=MapRouter({"a": 0, "b": 1}))
        kernel.submit(
            lambda: kernel.submit(lambda: None, partner_key="b"), partner_key="a"
        )
        kernel.drain()
        assert kernel.link_report() == {"0->1": 1}
        assert kernel.shards[1].inbox_received == 1


class TestParallelDrain:
    def test_all_tasks_execute_exactly_once(self):
        kernel = ShardedKernel(shards=4, mode=PARALLEL)
        counts = {f"p{index}": 0 for index in range(6)}

        def handle(partner):
            counts[partner] += 1

        for sequence in range(240):
            partner = f"p{sequence % 6}"
            kernel.submit(lambda partner=partner: handle(partner), partner_key=partner)
        assert kernel.drain() == 240
        assert all(value == 40 for value in counts.values())
        assert kernel.run_queue.tasks_executed == 240
        assert kernel.run_queue.pending() == 0

    def test_cross_shard_submits_are_delivered(self):
        kernel = ShardedKernel(
            shards=2, mode=PARALLEL, router=MapRouter({"a": 0, "b": 1})
        )
        delivered = []
        kernel.submit(
            lambda: kernel.submit(
                lambda: delivered.append(kernel._current_shard()), partner_key="b"
            ),
            partner_key="a",
        )
        kernel.drain()
        assert delivered == [1]
        assert kernel.link_counters[(0, 1)] == 1

    def test_nested_drain_from_worker_drains_the_local_shard(self):
        kernel = ShardedKernel(shards=2, mode=PARALLEL, router=MapRouter({"a": 0}))
        order = []

        def parent():
            order.append("parent")
            kernel.submit(lambda: order.append("child"))
            kernel.drain()
            order.append("after-nested")

        kernel.submit(parent, partner_key="a")
        kernel.drain()
        assert order == ["parent", "child", "after-nested"]

    def test_worker_failure_propagates_and_abandons(self):
        kernel = ShardedKernel(
            shards=2, mode=PARALLEL, router=MapRouter({"a": 0, "b": 1})
        )
        events = []
        kernel.subscribe(events.append, events=["batch_abandoned"])

        def boom():
            raise RuntimeError("shard worker failed")

        kernel.submit(boom, partner_key="a")
        with pytest.raises(RuntimeError, match="shard worker failed"):
            kernel.drain()
        assert kernel.run_queue.depth == 0

    def test_merged_trace_and_composite_subscription(self):
        kernel = ShardedKernel(shards=2, mode=PARALLEL, router=MapRouter({"a": 0, "b": 1}))
        trace = kernel.enable_trace(capacity=50)
        seen = []
        handle = kernel.subscribe(seen.append, events=["document_received"])

        def ping():
            from repro.runtime.events import DocumentReceived

            kernel.emit(
                DocumentReceived,
                "hub",
                conversation_id="C1",
                doc_type="purchase_order",
                partner_id="TP1",
            )

        kernel.submit(ping, partner_key="a")
        kernel.submit(ping, partner_key="b")
        kernel.drain()
        assert trace.recorded == 2 and len(trace.events()) == 2
        assert trace.event_types() == {"document_received"}
        assert len(seen) == 2
        handle.unsubscribe()
        kernel.submit(ping, partner_key="a")
        kernel.drain()
        assert len(seen) == 2 and trace.recorded == 3

    def test_aggregate_metrics_merge_per_shard_segments(self):
        kernel = ShardedKernel(shards=4, mode=PARALLEL)

        def ping(partner):
            from repro.runtime.events import DocumentReceived

            kernel.emit(
                DocumentReceived,
                "hub",
                conversation_id="C1",
                doc_type="purchase_order",
                partner_id=partner,
            )

        for sequence in range(40):
            partner = f"p{sequence % 8}"
            kernel.submit(lambda partner=partner: ping(partner), partner_key=partner)
        kernel.drain()
        assert kernel.metrics.count("document_received") == 40
        assert kernel.metrics.count("document_received", source="hub") == 40
        assert kernel.metrics.sources("document_received") == {"hub": 40}


class TestInterShardNetwork:
    def _kernel(self, conditions, seed=5):
        scheduler = EventScheduler()
        transport = SimulatedNetwork(scheduler, conditions, seed=seed)
        kernel = ShardedKernel(
            shards=2,
            clock=scheduler.clock,
            router=MapRouter({"a": 0, "b": 1}),
        )
        kernel.attach_network(transport)
        return kernel, transport

    def test_cross_shard_tasks_travel_as_wire_messages(self):
        kernel, transport = self._kernel(NetworkConditions.perfect())
        delivered = []
        kernel.submit(
            lambda: kernel.submit(lambda: delivered.append("b"), partner_key="b"),
            partner_key="a",
        )
        kernel.drain()
        assert delivered == ["b"]
        report = transport.link_report()
        assert report["shard:0->shard:1"]["delivered"] == 1
        assert kernel.run_queue.pending() == 0

    def test_lost_inter_shard_messages_are_abandoned_not_hung(self):
        kernel, _transport = self._kernel(NetworkConditions(loss_rate=1.0))
        kernel.submit(
            lambda: kernel.submit(lambda: None, partner_key="b"), partner_key="a"
        )
        kernel.drain()
        assert kernel.run_queue.abandoned == 1
        assert kernel.run_queue.pending() == 0

    def test_attach_network_requires_deterministic_mode(self):
        scheduler = EventScheduler()
        transport = SimulatedNetwork(scheduler, NetworkConditions.perfect())
        kernel = ShardedKernel(shards=2, mode=PARALLEL, clock=scheduler.clock)
        with pytest.raises(ValueError, match="deterministic"):
            kernel.attach_network(transport)

    def test_duplicate_delivery_executes_once(self):
        kernel, transport = self._kernel(
            NetworkConditions(duplicate_rate=1.0, min_latency=0.01, max_latency=0.01)
        )
        ran = []
        kernel.submit(
            lambda: kernel.submit(lambda: ran.append("b"), partner_key="b"),
            partner_key="a",
        )
        kernel.drain()
        assert ran == ["b"]
        assert transport.link_report()["shard:0->shard:1"]["duplicated"] == 1


class TestModeConstants:
    def test_default_mode_is_deterministic(self):
        assert ShardedKernel().mode == DETERMINISTIC
