"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_demo_protocol_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["demo", "--protocol", "as2"])


class TestCommands:
    def test_demo_runs_round_trip(self, capsys):
        assert main(["demo", "--protocol", "rosettanet"]) == 0
        output = capsys.readouterr().out
        assert "buyer instance  : completed" in output
        assert "sent:purchase_order -> received:po_ack" in output

    def test_demo_over_van(self, capsys):
        assert main(["demo", "--protocol", "edi-van"]) == 0

    def test_demo_trace_prints_kernel_events(self, capsys):
        assert main(["demo", "--trace"]) == 0
        output = capsys.readouterr().out
        assert "--- kernel trace: demo (rosettanet) ---" in output
        assert "instance_started" in output
        assert "message_delivered" in output
        assert "conversation_completed" in output

    def test_demo_without_trace_stays_quiet(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "kernel trace" not in output
        assert "instance_started" not in output

    def test_report_trace_prints_kernel_events(self, capsys):
        assert main(["report", "--trace"]) == 0
        output = capsys.readouterr().out
        assert "--- kernel trace: fig15 community ---" in output
        assert "document_received" in output

    def test_growth_single_dimension(self, capsys):
        assert main(["growth", "--dimension", "backends", "--values", "1", "2"]) == 0
        output = capsys.readouterr().out
        assert "backends" in output
        assert "naive_total" in output
        assert "protocols" not in output.split("\n", 3)[3]  # only one dimension

    def test_changes_table(self, capsys):
        assert main(["changes"]) == 0
        output = capsys.readouterr().out
        assert "add_partner_same_protocol" in output
        assert "non-local" in output  # the document-field scenario

    def test_report(self, capsys):
        assert main(["report"]) == 0
        output = capsys.readouterr().out
        assert "ACME: integration report" in output
        assert "private-po-seller" in output

    def test_patterns(self, capsys):
        assert main(["patterns"]) == 0
        output = capsys.readouterr().out
        assert "broadcast RFQ" in output
        assert "one-way multi-step" in output
