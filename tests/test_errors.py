"""Tests for the exception hierarchy: catch-granularity guarantees."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            errors.DocumentPathError("x"),
            errors.ValidationError("x"),
            errors.WireFormatError("x"),
            errors.XmlSyntaxError("x"),
        ],
    )
    def test_document_family(self, exception):
        assert isinstance(exception, errors.DocumentError)
        assert isinstance(exception, errors.ReproError)

    @pytest.mark.parametrize(
        "exception",
        [errors.MappingError("x"), errors.NoRouteError("x")],
    )
    def test_transform_family(self, exception):
        assert isinstance(exception, errors.TransformError)

    @pytest.mark.parametrize(
        "exception",
        [
            errors.EndpointError("x"),
            errors.DeliveryError("x"),
            errors.DuplicateMessageError("x"),
            errors.CorrelationError("x"),
            errors.RetryExhaustedError("x"),
        ],
    )
    def test_messaging_family(self, exception):
        assert isinstance(exception, errors.MessagingError)

    @pytest.mark.parametrize(
        "exception",
        [
            errors.DefinitionError("x"),
            errors.ExpressionError("x"),
            errors.InstanceError("x"),
            errors.ActivityError("x"),
            errors.PersistenceError("x"),
            errors.MigrationError("x"),
            errors.WorklistError("x"),
        ],
    )
    def test_workflow_family(self, exception):
        assert isinstance(exception, errors.WorkflowError)

    @pytest.mark.parametrize(
        "exception",
        [
            errors.BindingError("x"),
            errors.RuleError("x"),
            errors.NoApplicableRuleError("f", "s", "t"),
            errors.PartnerError("x"),
            errors.AgreementError("x"),
            errors.BackendError("x"),
            errors.ProtocolError("x"),
            errors.ChangeError("x"),
        ],
    )
    def test_integration_family(self, exception):
        assert isinstance(exception, errors.IntegrationError)

    def test_everything_is_a_repro_error(self):
        for name in errors.__all__:
            exception_class = getattr(errors, name)
            assert issubclass(exception_class, errors.ReproError), name

    def test_no_applicable_rule_is_a_rule_error(self):
        exception = errors.NoApplicableRuleError("f", "TP9", "SAP")
        assert isinstance(exception, errors.RuleError)
        assert exception.function == "f"
        assert exception.source == "TP9"
        assert "TP9" in str(exception)


class TestPayloads:
    def test_validation_error_carries_violations(self):
        exception = errors.ValidationError("bad", violations=["a", "b"])
        assert exception.violations == ["a", "b"]

    def test_validation_error_defaults_empty(self):
        assert errors.ValidationError("bad").violations == []

    def test_retry_exhausted_carries_attempts(self):
        assert errors.RetryExhaustedError("gone", attempts=4).attempts == 4

    def test_xml_error_embeds_position(self):
        exception = errors.XmlSyntaxError("boom", position=17)
        assert exception.position == 17
        assert "offset 17" in str(exception)

    def test_xml_error_without_position(self):
        assert errors.XmlSyntaxError("boom").position == -1
