"""Tests for the discrete-event simulation core."""

import pytest

from repro.sim import Clock, EventScheduler


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now() == 0.0

    def test_custom_start(self):
        assert Clock(5.5).now() == 5.5

    def test_cannot_move_backwards(self):
        clock = Clock(10.0)
        with pytest.raises(ValueError):
            clock._advance_to(9.0)


class TestScheduling:
    def test_after_fires_at_relative_time(self, scheduler):
        fired = []
        scheduler.after(2.0, lambda: fired.append(scheduler.clock.now()))
        scheduler.run_until_idle()
        assert fired == [2.0]

    def test_at_fires_at_absolute_time(self, scheduler):
        fired = []
        scheduler.at(3.5, lambda: fired.append(scheduler.clock.now()))
        scheduler.run_until_idle()
        assert fired == [3.5]

    def test_events_fire_in_time_order(self, scheduler):
        order = []
        scheduler.after(3.0, lambda: order.append("c"))
        scheduler.after(1.0, lambda: order.append("a"))
        scheduler.after(2.0, lambda: order.append("b"))
        scheduler.run_until_idle()
        assert order == ["a", "b", "c"]

    def test_same_time_events_fire_fifo(self, scheduler):
        order = []
        for label in "abcd":
            scheduler.after(1.0, lambda l=label: order.append(l))
        scheduler.run_until_idle()
        assert order == ["a", "b", "c", "d"]

    def test_soon_fires_at_current_time(self, scheduler):
        fired = []
        scheduler.soon(lambda: fired.append(scheduler.clock.now()))
        scheduler.run_until_idle()
        assert fired == [0.0]

    def test_negative_delay_rejected(self, scheduler):
        with pytest.raises(ValueError):
            scheduler.after(-0.1, lambda: None)

    def test_scheduling_in_past_rejected(self, scheduler):
        scheduler.after(5.0, lambda: None)
        scheduler.run_until_idle()
        with pytest.raises(ValueError):
            scheduler.at(1.0, lambda: None)

    def test_event_can_schedule_follow_up(self, scheduler):
        fired = []

        def first():
            fired.append("first")
            scheduler.after(1.0, lambda: fired.append("second"))

        scheduler.after(1.0, first)
        scheduler.run_until_idle()
        assert fired == ["first", "second"]
        assert scheduler.clock.now() == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, scheduler):
        fired = []
        event = scheduler.after(1.0, lambda: fired.append("x"))
        event.cancel()
        scheduler.run_until_idle()
        assert fired == []

    def test_pending_excludes_cancelled(self, scheduler):
        keep = scheduler.after(1.0, lambda: None)
        drop = scheduler.after(2.0, lambda: None)
        drop.cancel()
        assert scheduler.pending() == 1
        assert keep.when == 1.0

    def test_next_event_time_skips_cancelled(self, scheduler):
        first = scheduler.after(1.0, lambda: None)
        scheduler.after(2.0, lambda: None)
        first.cancel()
        assert scheduler.next_event_time() == 2.0


class TestRunning:
    def test_step_returns_false_when_empty(self, scheduler):
        assert scheduler.step() is False

    def test_run_until_idle_returns_count(self, scheduler):
        for delay in (1.0, 2.0, 3.0):
            scheduler.after(delay, lambda: None)
        assert scheduler.run_until_idle() == 3

    def test_run_until_deadline_stops(self, scheduler):
        fired = []
        scheduler.after(1.0, lambda: fired.append(1))
        scheduler.after(5.0, lambda: fired.append(5))
        count = scheduler.run_until(3.0)
        assert count == 1
        assert fired == [1]
        assert scheduler.clock.now() == 3.0

    def test_run_until_idle_guards_against_livelock(self, scheduler):
        def rearm():
            scheduler.after(0.1, rearm)

        scheduler.after(0.1, rearm)
        with pytest.raises(RuntimeError):
            scheduler.run_until_idle(max_events=100)

    def test_deterministic_replay(self):
        def run() -> list[float]:
            scheduler = EventScheduler()
            times = []
            for delay in (0.5, 0.1, 0.3, 0.1):
                scheduler.after(delay, lambda: times.append(scheduler.clock.now()))
            scheduler.run_until_idle()
            return times

        assert run() == run()
