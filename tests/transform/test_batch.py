"""``transform_batch`` is byte-identical to the per-document loop — on
random documents, on every catalog route, with and without the result
cache, and including failures.

These are the properties the columnar path's correctness rests on:

* ``transform_batch(docs) == [transform(d) for d in docs]`` for arbitrary
  (including heterogeneous and duplicate-heavy) vectors;
* enabling the cache changes no output, only counters;
* errors surface identically — same exception type and message, raised
  for the same document;
* mappings the vectorizer cannot model (post hooks, indexed paths) fall
  back to the reference loop rather than being mis-vectorized.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.documents.model import Document
from repro.documents.normalized import NORMALIZED, make_po_ack, make_purchase_order
from repro.errors import TransformError, ValidationError
from repro.transform.batch import build_batch_program
from repro.transform.catalog import build_standard_registry, standard_mappings
from repro.transform.mapping import Compute, Field, Mapping

CONTEXT = {"sender_id": "ACME", "receiver_id": "TP1", "now": 1.0}

REGISTRY = build_standard_registry()

WIRE_FORMATS = sorted(
    {
        m.target_format
        for m in standard_mappings()
        if m.source_format == NORMALIZED and m.doc_type == "purchase_order"
    }
)


def _key(document):
    if document is None:
        return None
    return (document.format_name, document.doc_type, document.to_dict())


def _failure(fn, *args):
    try:
        fn(*args)
    except (TransformError, ValidationError) as error:
        return (type(error).__name__, str(error))
    return None


# -- strategies --------------------------------------------------------------

_skus = st.from_regex(r"[A-Z0-9][A-Z0-9\-]{0,8}", fullmatch=True)
_quantities = st.integers(1, 9999).map(float)
_prices = st.integers(0, 10_000_000).map(lambda cents: cents / 100)
_lines = st.lists(
    st.fixed_dictionaries(
        {"sku": _skus, "quantity": _quantities, "unit_price": _prices}
    ),
    min_size=1,
    max_size=5,
)
_po_numbers = st.from_regex(r"PO-[0-9]{1,6}", fullmatch=True)
_partner_ids = st.from_regex(r"[A-Z]{2,8}", fullmatch=True)


@st.composite
def normalized_pos(draw):
    return make_purchase_order(
        draw(_po_numbers), draw(_partner_ids), draw(_partner_ids), draw(_lines)
    )


@st.composite
def mixed_batches(draw):
    """Vectors mixing wire formats, doc types and duplicate documents."""
    pos = draw(st.lists(normalized_pos(), min_size=1, max_size=6))
    documents = []
    for po in pos:
        shape = draw(st.sampled_from(["normalized", "wire", "ack", "dup-wire"]))
        if shape == "normalized":
            documents.append(po)
        elif shape == "ack":
            documents.append(make_po_ack(po))
        else:
            wire = REGISTRY.transform(
                po, draw(st.sampled_from(WIRE_FORMATS)), CONTEXT
            )
            documents.append(wire)
            if shape == "dup-wire":
                documents.append(Document.from_dict(wire.to_dict()))
    return documents


# -- properties --------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(mixed_batches())
def test_batch_equals_loop_on_mixed_vectors(documents):
    registry = build_standard_registry()
    loop = [registry.transform(d, NORMALIZED, CONTEXT) for d in documents]
    batch = registry.transform_batch(documents, NORMALIZED, CONTEXT)
    assert [_key(d) for d in batch] == [_key(d) for d in loop]


@settings(max_examples=40, deadline=None)
@given(mixed_batches(), st.sampled_from(WIRE_FORMATS))
def test_batch_equals_loop_outbound(documents, target):
    registry = build_standard_registry()
    # drop doc types with no outbound route for this wire format
    routable = []
    for document in documents:
        if document.format_name == target:
            routable.append(document)
            continue
        try:
            registry.transform(document, target, CONTEXT)
        except Exception:
            continue
        routable.append(document)
    loop = [registry.transform(d, target, CONTEXT) for d in routable]
    batch = registry.transform_batch(routable, target, CONTEXT)
    assert [_key(d) for d in batch] == [_key(d) for d in loop]


@settings(max_examples=40, deadline=None)
@given(mixed_batches())
def test_cache_changes_no_output(documents):
    plain = build_standard_registry()
    cached = build_standard_registry()
    cached.enable_cache(capacity=8)  # small: exercises eviction too
    loop = [plain.transform(d, NORMALIZED, CONTEXT) for d in documents]
    # run twice so the second pass mixes hits, misses and evictions
    cached.transform_batch(documents, NORMALIZED, CONTEXT)
    batch = cached.transform_batch(documents, NORMALIZED, CONTEXT)
    assert [_key(d) for d in batch] == [_key(d) for d in loop]
    singles = [cached.transform(d, NORMALIZED, CONTEXT) for d in documents]
    assert [_key(d) for d in singles] == [_key(d) for d in loop]


def test_every_catalog_mapping_vectorizes():
    unsupported = [
        m.name for m in standard_mappings()
        if build_batch_program(m.compile()) is None
    ]
    assert unsupported == []


def test_empty_batch():
    assert REGISTRY.transform_batch([], NORMALIZED) == []


def test_identity_documents_pass_through():
    po = make_purchase_order("PO-1", "TP1", "ACME",
                             [{"sku": "A", "quantity": 1, "unit_price": 2.0}])
    wire = REGISTRY.transform(po, "edi-x12", CONTEXT)
    batch = REGISTRY.transform_batch([po, wire, po], NORMALIZED, CONTEXT)
    assert batch[0] is po  # identity route returns the document itself
    assert batch[2] is po
    assert batch[1].format_name == NORMALIZED


def test_error_identity_on_invalid_document():
    registry = build_standard_registry()
    good = make_purchase_order("PO-1", "TP1", "ACME",
                               [{"sku": "A", "quantity": 1, "unit_price": 2.0}])
    wire = registry.transform(good, "edi-x12", CONTEXT)
    broken = Document.from_dict(wire.to_dict())
    broken.delete("beg.po_number")  # violates the EDI source schema
    batch = [wire, broken, wire]
    loop_failure = None
    for document in batch:
        loop_failure = _failure(registry.transform, document, NORMALIZED, CONTEXT)
        if loop_failure:
            break
    batch_failure = _failure(registry.transform_batch, batch, NORMALIZED, CONTEXT)
    assert loop_failure is not None
    assert batch_failure == loop_failure


def test_error_identity_with_cache():
    registry = build_standard_registry()
    registry.enable_cache()
    good = make_purchase_order("PO-1", "TP1", "ACME",
                               [{"sku": "A", "quantity": 1, "unit_price": 2.0}])
    wire = registry.transform(good, "edi-x12", CONTEXT)
    broken = Document.from_dict(wire.to_dict())
    broken.delete("beg.po_number")
    expected = _failure(registry.transform, broken, NORMALIZED, CONTEXT)
    produced = _failure(
        registry.transform_batch, [wire, broken], NORMALIZED, CONTEXT
    )
    assert produced == expected
    # The failing document must never have been cached.
    registry.cache.clear()
    assert _failure(registry.transform, broken, NORMALIZED, CONTEXT) == expected


def test_post_hook_mapping_is_not_vectorized():
    def stamp(source_doc, target_doc, context):
        target_doc.set("stamped", True)

    mapping = Mapping("m", "a", "b", "t", [Field("x", "y")], post=stamp)
    assert build_batch_program(mapping.compile()) is None
    # apply_batch still works — it degrades to the per-document loop.
    docs = [Document("a", "t", {"x": index}) for index in range(3)]
    produced = mapping.compile().apply_batch(docs, CONTEXT)
    assert [d.get("stamped") for d in produced] == [True, True, True]
    assert [d.get("y") for d in produced] == [0, 1, 2]


def test_indexed_path_mapping_is_not_vectorized():
    mapping = Mapping("m", "a", "b", "t", [Field("lines[0].sku", "first_sku")])
    assert build_batch_program(mapping.compile()) is None
    docs = [Document("a", "t", {"lines": [{"sku": f"S-{index}"}]})
            for index in range(3)]
    produced = mapping.compile().apply_batch(docs, CONTEXT)
    assert [d.get("first_sku") for d in produced] == ["S-0", "S-1", "S-2"]


def test_impure_compute_falls_back_identically():
    # A compute that raises mid-batch: the fallback must surface the same
    # error as the loop and leave earlier documents' outputs identical.
    def explode_on(doc, context):
        if doc.get("boom"):
            raise ValueError("boom")
        return "ok"

    mapping = Mapping("m", "a", "b", "t", [Compute("status", explode_on)])
    compiled = mapping.compile()
    docs = [Document("a", "t", {"boom": False}),
            Document("a", "t", {"boom": True})]
    with pytest.raises(TransformError) as batch_error:
        compiled.apply_batch(docs, CONTEXT)
    with pytest.raises(TransformError) as loop_error:
        for document in docs:
            compiled.apply(document, CONTEXT)
    assert str(batch_error.value) == str(loop_error.value)


def test_compile_keying_is_identity_based():
    # Regression: the old cache key was tuple(map(id, rules)); a replaced
    # rule object could reuse the freed id and false-hit.  The snapshot now
    # holds strong references and compares by identity.
    mapping = Mapping("m", "a", "b", "t", [Field("x", "y")])
    first = mapping.compile()
    assert mapping.compile() is first
    mapping.rules[0] = Field("x", "z")  # in-place replacement, same length
    second = mapping.compile()
    assert second is not first
    document = Document("a", "t", {"x": 7})
    assert second.apply(document).get("z") == 7
