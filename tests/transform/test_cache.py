"""The content-addressed transformation result cache.

Covers the cache protocol itself (LRU bounds, counters, per-route
breakdowns), the registry integration (enable/disable, invalidation on
registration, bypass of context-sensitive chains, stats opt-out) and the
observability surface (snapshot dict, kernel event).  The governing
invariant — enabling the cache never changes any transformation output —
is property-tested in test_batch.py.
"""

import functools

import pytest

from repro.documents.model import Document
from repro.documents.normalized import NORMALIZED, make_purchase_order
from repro.runtime.kernel import Kernel
from repro.transform.cache import TransformCache
from repro.transform.catalog import build_standard_registry
from repro.transform.mapping import Compute, Field, Mapping

CONTEXT = {"sender_id": "ACME", "receiver_id": "TP1", "now": 1.0}

LINES = [
    {"sku": "LAPTOP-15", "quantity": 50, "unit_price": 1200.0},
    {"sku": "DOCK-1", "quantity": 5, "unit_price": 150.0},
]


def _wire_po(registry, number="PO-1001"):
    po = make_purchase_order(number, "TP1", "ACME", LINES)
    return registry.transform(po, "edi-x12", CONTEXT)


class TestTransformCache:
    def test_lookup_miss_then_hit(self):
        cache = TransformCache(capacity=4)
        document = Document("f", "t", {"a": 1})
        assert cache.lookup("k", "r") is None
        cache.store("k", document, "r")
        hit = cache.lookup("k", "r")
        assert hit is not None
        assert hit.to_dict() == document.to_dict()
        assert (cache.hits, cache.misses) == (1, 1)

    def test_hits_return_fresh_copies(self):
        cache = TransformCache(capacity=4)
        cache.store("k", Document("f", "t", {"lines": [{"qty": 1}]}), "r")
        first = cache.lookup("k", "r")
        first.data["lines"][0]["qty"] = 999
        second = cache.lookup("k", "r")
        assert second.data["lines"][0]["qty"] == 1

    def test_store_keeps_private_copy(self):
        cache = TransformCache(capacity=4)
        document = Document("f", "t", {"lines": [{"qty": 1}]})
        cache.store("k", document, "r")
        document.data["lines"][0]["qty"] = 999
        assert cache.lookup("k", "r").data["lines"][0]["qty"] == 1

    def test_lru_evicts_least_recently_used(self):
        cache = TransformCache(capacity=2)
        cache.store("a", Document("f", "t", {"n": 1}), "r")
        cache.store("b", Document("f", "t", {"n": 2}), "r")
        assert cache.lookup("a", "r") is not None  # refresh a
        cache.store("c", Document("f", "t", {"n": 3}), "r")  # evicts b
        assert cache.evictions == 1
        assert cache.lookup("b", "r") is None
        assert cache.lookup("a", "r") is not None
        assert cache.lookup("c", "r") is not None

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TransformCache(capacity=0)

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = TransformCache(capacity=4)
        cache.store("k", Document("f", "t", {}), "r")
        cache.lookup("k", "r")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1
        assert cache.lookup("k", "r") is None  # entry is really gone

    def test_per_route_counters(self):
        cache = TransformCache(capacity=1)
        cache.store("a", Document("f", "t", {}), "route-1")
        cache.lookup("a", "route-1")
        cache.lookup("zzz", "route-2")
        cache.store("b", Document("f", "t", {}), "route-2")  # evicts route-1's entry
        cache.note_bypass("route-3")
        snapshot = cache.snapshot()
        assert snapshot["routes"]["route-1"]["hits"] == 1
        assert snapshot["routes"]["route-2"]["misses"] == 1
        assert snapshot["routes"]["route-1"]["evictions"] == 1
        assert snapshot["routes"]["route-3"]["bypasses"] == 1

    def test_hit_rate(self):
        cache = TransformCache(capacity=4)
        assert cache.hit_rate() == 0.0
        cache.store("k", Document("f", "t", {}), "r")
        cache.lookup("k", "r")
        cache.lookup("missing", "r")
        assert cache.hit_rate() == 0.5


class TestContentDigest:
    def test_equal_payloads_collide(self):
        a = Document("f", "t", {"x": 1, "y": [1, 2]})
        b = Document("f", "t", {"y": [1, 2], "x": 1})
        assert a.content_digest() == b.content_digest()

    def test_payload_format_and_type_all_distinguish(self):
        base = Document("f", "t", {"x": 1})
        assert base.content_digest() != Document("f", "t", {"x": 2}).content_digest()
        assert base.content_digest() != Document("g", "t", {"x": 1}).content_digest()
        assert base.content_digest() != Document("f", "u", {"x": 1}).content_digest()


class TestRegistryIntegration:
    def test_repeat_transform_hits(self):
        registry = build_standard_registry()
        cache = registry.enable_cache()
        wire = _wire_po(registry)
        first = registry.transform(wire, NORMALIZED)
        second = registry.transform(wire, NORMALIZED)
        assert first.to_dict() == second.to_dict()
        assert cache.hits == 1 and cache.misses == 1

    def test_equal_content_distinct_objects_hit(self):
        registry = build_standard_registry()
        cache = registry.enable_cache()
        wire = _wire_po(registry)
        clone = Document.from_dict(wire.to_dict())
        registry.transform(wire, NORMALIZED)
        registry.transform(clone, NORMALIZED)
        assert cache.hits == 1

    def test_context_sensitive_route_bypasses(self):
        # The outbound catalog mappings read context (sender/receiver ids),
        # so normalized -> wire must never consult the cache.
        registry = build_standard_registry()
        cache = registry.enable_cache()
        po = make_purchase_order("PO-1", "TP1", "ACME", LINES)
        registry.transform(po, "edi-x12", CONTEXT)
        registry.transform(po, "edi-x12", CONTEXT)
        assert cache.bypasses == 2
        assert cache.hits == 0 and cache.misses == 0

    def test_cached_result_is_mutation_safe(self):
        registry = build_standard_registry()
        registry.enable_cache()
        wire = _wire_po(registry)
        first = registry.transform(wire, NORMALIZED)
        first.set("header.po_number", "TAMPERED")
        second = registry.transform(wire, NORMALIZED)
        assert second.get("header.po_number") == "PO-1001"

    def test_registration_invalidates(self):
        registry = build_standard_registry()
        cache = registry.enable_cache()
        wire = _wire_po(registry)
        registry.transform(wire, NORMALIZED)
        registry.register(
            Mapping("extra", "fmt-x", "fmt-y", "purchase_order",
                    [Field("a", "b")])
        )
        registry.transform(wire, NORMALIZED)
        # Both the entries and the version half of the key changed, so the
        # second transform recomputes.
        assert cache.hits == 0 and cache.misses == 2
        assert len(cache) == 1

    def test_stale_result_never_served_after_reregistration(self):
        registry = object.__new__(build_standard_registry().__class__)
        registry.__init__(hub_format="hub")
        registry.register(
            Mapping("v1", "src", "hub", "t", [Compute("out", lambda d, c: "v1")])
        )
        registry.enable_cache()
        document = Document("src", "t", {})
        assert registry.transform(document, "hub").get("out") == "v1"
        registry._mappings.clear()  # simulate a redeployed catalog
        registry.register(
            Mapping("v2", "src", "hub", "t", [Compute("out", lambda d, c: "v2")])
        )
        assert registry.transform(document, "hub").get("out") == "v2"

    def test_disable_cache_detaches(self):
        registry = build_standard_registry()
        cache = registry.enable_cache()
        wire = _wire_po(registry)
        registry.transform(wire, NORMALIZED)
        registry.disable_cache()
        registry.transform(wire, NORMALIZED)
        assert registry.cache is None
        assert cache.hits == 0

    def test_cache_stats_surface(self):
        registry = build_standard_registry()
        assert registry.cache_stats() == {}
        registry.enable_cache()
        wire = _wire_po(registry)
        registry.transform(wire, NORMALIZED)
        registry.transform(wire, NORMALIZED)
        stats = registry.cache_stats()
        assert stats["hits"] == 1
        assert "edi-x12->normalized/purchase_order" in stats["routes"]

    def test_hits_still_count_as_applications(self):
        registry = build_standard_registry()
        registry.enable_cache()
        wire = _wire_po(registry)
        registry.transform(wire, NORMALIZED)
        cold = registry.applications()
        registry.transform(wire, NORMALIZED)
        assert registry.applications() == cold + 1  # one-hop route, one count

    def test_collect_stats_opt_out(self):
        registry = build_standard_registry()
        source = build_standard_registry()
        quiet = registry.__class__(collect_stats=False)
        quiet.register_all(source.mappings())
        quiet.enable_cache()
        wire = _wire_po(registry)
        first = quiet.transform(wire, NORMALIZED)
        second = quiet.transform(wire, NORMALIZED)
        assert first.to_dict() == second.to_dict()
        assert quiet.applications() == 0  # no Counter updates at all
        assert quiet.cache.hits == 1  # the cache still works

    def test_batch_within_batch_duplicates_count_as_hits(self):
        # A batch containing duplicates must report the same counters as
        # processing the documents one at a time (the trace-parity basis).
        registry = build_standard_registry()
        cache = registry.enable_cache()
        wire = _wire_po(registry)
        other = _wire_po(registry, "PO-2002")
        batch = [wire, other, wire, wire, other]
        sequential = build_standard_registry()
        seq_cache = sequential.enable_cache()
        expected = [sequential.transform(d, NORMALIZED) for d in batch]
        produced = registry.transform_batch(batch, NORMALIZED)
        assert [d.to_dict() for d in produced] == [d.to_dict() for d in expected]
        assert (cache.hits, cache.misses) == (seq_cache.hits, seq_cache.misses)
        assert cache.hits == 3 and cache.misses == 2

    def test_batch_dedup_survives_tiny_capacity(self):
        # Capacity 1 forces the deferred duplicates to be recomputed after
        # their stored entry is evicted mid-batch; outputs must not change.
        registry = build_standard_registry()
        registry.enable_cache(capacity=1)
        a = _wire_po(registry, "PO-1")
        b = _wire_po(registry, "PO-2")
        batch = [a, b, a, b, a]
        reference = build_standard_registry()
        expected = [reference.transform(d, NORMALIZED) for d in batch]
        produced = registry.transform_batch(batch, NORMALIZED)
        assert [d.to_dict() for d in produced] == [d.to_dict() for d in expected]

    def test_partial_of_pure_reader_is_now_cacheable(self):
        # The PR 8 bytecode check treated anything without a __code__
        # attribute (like functools.partial) as context-reading and
        # bypassed the cache; the shared effect analyzer unwraps the
        # partial, proves the reader pure, and keeps the route cacheable.
        def read_path(path, document, context):
            return document.get(path)

        registry = build_standard_registry().__class__(hub_format="hub")
        mapping = Mapping(
            "widened", "src", "hub", "t",
            [Compute("out", functools.partial(read_path, "x"))],
        )
        registry.register(mapping)
        cache = registry.enable_cache()
        assert mapping.compile().cacheable is True
        document = Document("src", "t", {"x": 7})
        assert registry.transform(document, "hub").get("out") == 7
        registry.transform(document, "hub")
        assert cache.hits == 1 and cache.bypasses == 0

    def test_bound_method_reader_is_cacheable(self):
        class Extractor:
            def __init__(self, path):
                self.path = path

            def read(self, document, context):
                return document.get(self.path)

        registry = build_standard_registry().__class__(hub_format="hub")
        mapping = Mapping(
            "bound", "src", "hub", "t",
            [Compute("out", Extractor("x").read)],
        )
        registry.register(mapping)
        cache = registry.enable_cache()
        assert mapping.compile().cacheable is True
        document = Document("src", "t", {"x": 3})
        registry.transform(document, "hub")
        registry.transform(document, "hub")
        assert cache.hits == 1 and cache.bypasses == 0

    def test_context_reading_partial_still_bypasses(self):
        def read_context(key, document, context):
            return context.get(key)

        registry = build_standard_registry().__class__(hub_format="hub")
        mapping = Mapping(
            "ctx", "src", "hub", "t",
            [Compute("out", functools.partial(read_context, "now"))],
        )
        registry.register(mapping)
        cache = registry.enable_cache()
        assert mapping.compile().cacheable is False
        document = Document("src", "t", {})
        registry.transform(document, "hub", {"now": 1.0})
        registry.transform(document, "hub", {"now": 2.0})
        assert cache.bypasses == 2 and cache.hits == 0

    def test_publish_emits_snapshot_event(self):
        registry = build_standard_registry()
        cache = registry.enable_cache()
        wire = _wire_po(registry)
        registry.transform(wire, NORMALIZED)
        registry.transform(wire, NORMALIZED)
        kernel = Kernel()
        seen = []
        kernel.subscribe(seen.append, ["transform_cache_snapshot"])
        cache.publish(kernel)
        assert len(seen) == 1
        event = seen[0]
        assert (event.hits, event.misses) == (1, 1)
        assert event.entries == 1
        assert kernel.metrics.count("transform_cache_snapshot") == 1
