"""Tests for the standard mapping catalog (the 20 expert mappings)."""

import pytest

from repro.documents.normalized import NORMALIZED
from repro.transform.catalog import build_standard_registry, standard_mappings

WIRE_FORMATS = ("edi-x12", "rosettanet-xml", "oagis-bod", "sap-idoc", "oracle-oif")


class TestCatalogShape:
    def test_catalog_size(self):
        # 20 PO/POA mappings (5 formats x 2 kinds x 2 directions)
        # + 8 fulfillment mappings (ship notice + invoice, OAGIS and EDI)
        # + 4 OAGIS quotation mappings (RFQ, quote)
        assert len(standard_mappings()) == 32

    def test_every_format_maps_both_directions_both_doc_types(self):
        registry = build_standard_registry()
        for format_name in WIRE_FORMATS:
            for doc_type in ("purchase_order", "po_ack"):
                assert registry.find(format_name, NORMALIZED, doc_type) is not None
                assert registry.find(NORMALIZED, format_name, doc_type) is not None

    def test_all_mappings_have_schemas(self):
        for mapping in standard_mappings():
            assert mapping.source_schema is not None, mapping.name
            assert mapping.target_schema is not None, mapping.name

    def test_mapping_names_follow_convention(self):
        for mapping in standard_mappings():
            assert mapping.name == (
                f"{mapping.source_format}__to__{mapping.target_format}/{mapping.doc_type}"
            )

    def test_mappings_are_substantial(self):
        # expert mappings are not stubs
        for mapping in standard_mappings():
            assert mapping.rule_count() >= 8, mapping.name


class TestContextOverrides:
    def test_sender_receiver_overrides(self, registry, sample_po):
        document = registry.transform(
            sample_po, "edi-x12",
            {"sender_id": "HUB-1", "receiver_id": "HUB-2"},
        )
        assert document.get("isa.sender_id") == "HUB-1"
        assert document.get("isa.receiver_id") == "HUB-2"

    def test_control_number_override(self, registry, sample_po):
        document = registry.transform(sample_po, "edi-x12", {"control_number": "C0042"})
        assert document.get("isa.control_number") == "C0042"

    def test_pip_instance_override(self, registry, sample_po):
        document = registry.transform(
            sample_po, "rosettanet-xml", {"pip_instance_id": "PIP-XYZ"}
        )
        assert document.get("service_header.pip_instance_id") == "PIP-XYZ"

    def test_defaults_derive_from_document(self, registry, sample_po):
        document = registry.transform(sample_po, "edi-x12")
        assert document.get("isa.sender_id") == "TP1"
        assert document.get("isa.receiver_id") == "ACME"
        assert document.get("isa.control_number") == "CNPO-1001"

    def test_poa_envelope_roles_flip(self, registry, sample_poa):
        # the acknowledgment travels seller -> buyer
        document = registry.transform(sample_poa, "edi-x12")
        assert document.get("isa.sender_id") == "ACME"
        assert document.get("isa.receiver_id") == "TP1"


class TestSemanticFidelity:
    @pytest.mark.parametrize("format_name", WIRE_FORMATS)
    def test_line_order_preserved(self, registry, sample_po, format_name):
        back = registry.transform(
            registry.transform(sample_po, format_name), NORMALIZED
        )
        assert [line["sku"] for line in back.get("lines")] == ["LAPTOP-15", "DOCK-1"]

    @pytest.mark.parametrize("format_name", WIRE_FORMATS)
    def test_payment_terms_carried(self, registry, sample_po, format_name):
        back = registry.transform(
            registry.transform(sample_po, format_name), NORMALIZED
        )
        assert back.get("header.payment_terms") == "NET30"

    @pytest.mark.parametrize("format_name", WIRE_FORMATS)
    def test_accepted_amount_carried(self, registry, sample_poa, format_name):
        back = registry.transform(
            registry.transform(sample_poa, format_name), NORMALIZED
        )
        assert back.get("summary.accepted_amount") == pytest.approx(12000.0)

    def test_sap_partner_roles(self, registry, sample_po):
        document = registry.transform(sample_po, "sap-idoc")
        roles = {p["parvw"]: p["partn"] for p in document.get("partners")}
        assert roles == {"AG": "TP1", "LF": "ACME"}

    def test_idoc_description_truncated_to_field_width(self, registry, sample_po):
        sample_po.set("lines[0].description", "x" * 60)
        document = registry.transform(sample_po, "sap-idoc")
        assert len(document.get("items[0].arktx")) == 40
