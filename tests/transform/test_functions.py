"""Tests for the conversion-function library."""

import pytest

from repro.errors import MappingError
from repro.transform import functions


class TestScalars:
    def test_to_str(self):
        assert functions.to_str(5) == "5"
        assert functions.to_str(None) == ""

    def test_to_int(self):
        assert functions.to_int("42") == 42
        assert functions.to_int(7.0) == 7

    def test_to_int_rejects_fraction(self):
        with pytest.raises(MappingError):
            functions.to_int(7.5)

    def test_to_int_rejects_bool(self):
        with pytest.raises(MappingError):
            functions.to_int(True)

    def test_to_float(self):
        assert functions.to_float("2.5") == 2.5

    def test_to_float_rejects_bool(self):
        with pytest.raises(MappingError):
            functions.to_float(False)

    def test_money_rounds(self):
        assert functions.money(1.239) == 1.24
        assert functions.money(1.2) == 1.2
        assert functions.money("10") == 10.0

    def test_case_and_strip(self):
        assert functions.upper("abc") == "ABC"
        assert functions.lower("ABC") == "abc"
        assert functions.strip("  x ") == "x"


class TestFactories:
    def test_code_map_translates(self):
        convert = functions.code_map({"A": 1, "B": 2}, "grade")
        assert convert("A") == 1

    def test_code_map_rejects_unknown(self):
        convert = functions.code_map({"A": 1}, "grade")
        with pytest.raises(MappingError) as excinfo:
            convert("Z")
        assert "grade" in str(excinfo.value)

    def test_code_map_is_frozen(self):
        table = {"A": 1}
        convert = functions.code_map(table)
        table["B"] = 2
        with pytest.raises(MappingError):
            convert("B")

    def test_scaled(self):
        assert functions.scaled(100)(1.5) == 150.0

    def test_truncated(self):
        assert functions.truncated(3)("abcdef") == "abc"
        assert functions.truncated(3)(12) == "12"

    def test_chained(self):
        convert = functions.chained(functions.to_str, functions.upper, functions.truncated(2))
        assert convert("hello") == "HE"
