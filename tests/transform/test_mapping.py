"""Tests for the declarative mapping language."""

import pytest

from repro.documents.model import Document
from repro.documents.schema import DocumentSchema, FieldSpec
from repro.errors import MappingError, TransformError, ValidationError
from repro.transform.mapping import Compute, Const, Each, Field, Mapping


@pytest.fixture
def source():
    return Document(
        "a",
        "order",
        {
            "head": {"number": "N1", "total": 5.0},
            "items": [{"id": "X", "qty": 1}, {"id": "Y", "qty": 2}],
        },
    )


def _mapping(*rules, **overrides):
    defaults = dict(
        name="a__to__b/order",
        source_format="a",
        target_format="b",
        doc_type="order",
        rules=list(rules),
    )
    defaults.update(overrides)
    return Mapping(**defaults)


class TestField:
    def test_copies_value(self, source):
        target = _mapping(Field("head.number", "header.num")).apply(source)
        assert target.get("header.num") == "N1"
        assert target.format_name == "b"

    def test_convert_applied(self, source):
        target = _mapping(Field("head.total", "t", convert=lambda v: v * 2)).apply(source)
        assert target.get("t") == 10.0

    def test_missing_required_raises(self, source):
        with pytest.raises(MappingError):
            _mapping(Field("head.missing", "x")).apply(source)

    def test_missing_with_default(self, source):
        target = _mapping(Field("head.missing", "x", default="D")).apply(source)
        assert target.get("x") == "D"

    def test_missing_optional_skipped(self, source):
        target = _mapping(Field("head.missing", "x", required=False)).apply(source)
        assert not target.has("x")

    def test_converter_error_wrapped(self, source):
        def boom(value):
            raise ValueError("nope")

        with pytest.raises(MappingError) as excinfo:
            _mapping(Field("head.number", "x", convert=boom)).apply(source)
        assert "head.number" in str(excinfo.value)

    def test_source_not_mutated(self, source):
        before = source.to_dict()
        _mapping(Field("head.number", "n")).apply(source)
        assert source.to_dict() == before


class TestConstAndCompute:
    def test_const(self, source):
        target = _mapping(Const("kind", "purchase")).apply(source)
        assert target.get("kind") == "purchase"

    def test_compute_sees_source_and_context(self, source):
        rule = Compute("stamp", lambda doc, ctx: f"{doc.get('head.number')}@{ctx['now']}")
        target = _mapping(rule).apply(source, {"now": 7})
        assert target.get("stamp") == "N1@7"

    def test_compute_error_carries_label(self, source):
        rule = Compute("x", lambda doc, ctx: 1 / 0, label="divider")
        with pytest.raises(MappingError) as excinfo:
            _mapping(rule).apply(source)
        assert "divider" in str(excinfo.value)

    def test_rules_apply_in_order(self, source):
        target = _mapping(
            Const("x", 1),
            Compute("y", lambda doc, ctx: None),
            Const("x", 2),
        ).apply(source)
        assert target.get("x") == 2


class TestEach:
    def test_maps_every_item(self, source):
        target = _mapping(
            Each("items", "lines", [Field("id", "sku"), Field("qty", "quantity")])
        ).apply(source)
        assert target.get("lines") == [
            {"sku": "X", "quantity": 1},
            {"sku": "Y", "quantity": 2},
        ]

    def test_item_context_carries_index(self, source):
        rule = Each(
            "items",
            "lines",
            [Compute("n", lambda doc, ctx: ctx["_ordinal"])],
        )
        target = _mapping(rule).apply(source)
        assert [line["n"] for line in target.get("lines")] == [1, 2]

    def test_non_list_source_raises(self, source):
        with pytest.raises(MappingError):
            _mapping(Each("head", "lines", [])).apply(source)

    def test_min_items_enforced(self, source):
        source.set("items", [])
        with pytest.raises(MappingError):
            _mapping(Each("items", "lines", [Field("id", "sku")])).apply(source)

    def test_non_dict_item_raises(self, source):
        source.set("items[+]", "scalar")
        with pytest.raises(MappingError):
            _mapping(Each("items", "lines", [Field("id", "sku")])).apply(source)


class TestMappingContract:
    def test_wrong_source_format_rejected(self, source):
        source.format_name = "other"
        with pytest.raises(TransformError):
            _mapping(Const("x", 1)).apply(source)

    def test_wrong_doc_type_rejected(self, source):
        source.doc_type = "invoice"
        with pytest.raises(TransformError):
            _mapping(Const("x", 1)).apply(source)

    def test_source_schema_validated(self, source):
        schema = DocumentSchema("s", fields=[FieldSpec("head.absent")])
        with pytest.raises(ValidationError):
            _mapping(Const("x", 1), source_schema=schema).apply(source)

    def test_target_schema_validated(self, source):
        schema = DocumentSchema("t", fields=[FieldSpec("must_exist")])
        with pytest.raises(ValidationError):
            _mapping(Const("x", 1), target_schema=schema).apply(source)

    def test_post_hook_runs_last(self, source):
        def post(src, dst, ctx):
            dst.set("fixed", dst.get("x") + 1)

        target = _mapping(Const("x", 1), post=post).apply(source)
        assert target.get("fixed") == 2

    def test_rule_count_includes_nested(self, source):
        mapping = _mapping(
            Const("a", 1),
            Each("items", "lines", [Field("id", "sku"), Field("qty", "q")]),
        )
        assert mapping.rule_count() == 4
