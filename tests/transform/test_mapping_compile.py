"""Mapping.compile() is byte-identical to the interpreted path — on every
catalog mapping, not a sample: the catalog IS the deployed surface, so one
divergent mapping would silently corrupt documents on the wire.

Failure identity is covered too (validation errors, compute errors), and
the compile cache's invalidation on rule edits.
"""

import pytest

from repro.documents.normalized import (
    make_invoice,
    make_po_ack,
    make_purchase_order,
    make_quote,
    make_rfq,
    make_ship_notice,
)
from repro.errors import TransformError, ValidationError
from repro.transform.catalog import build_standard_registry, standard_mappings
from repro.transform.mapping import Field, Mapping

LINES = [
    {"sku": "LAPTOP-15", "quantity": 50, "unit_price": 1200.0},
    {"sku": "DOCK-1", "quantity": 5, "unit_price": 150.0},
]

CONTEXT = {"sender_id": "ACME", "receiver_id": "TP1", "now": 1.0}


def _normalized_samples():
    po = make_purchase_order("PO-1001", "TP1", "ACME", LINES)
    rfq = make_rfq("RFQ-7", "TP1", "ACME", [{"sku": "GPU", "quantity": 5}])
    return {
        "purchase_order": po,
        "po_ack": make_po_ack(po),
        "ship_notice": make_ship_notice(po, "SHIP-1"),
        "invoice": make_invoice(po, "INV-1"),
        "request_for_quote": rfq,
        "quote": make_quote(rfq, {"GPU": 1450.0}, "Q-1"),
    }


def _source_document(mapping, registry, samples):
    """A valid source document for ``mapping`` (wire docs via the registry)."""
    normalized = samples[mapping.doc_type]
    if mapping.source_format == "normalized":
        return normalized
    return registry.transform(normalized, mapping.source_format, CONTEXT)


@pytest.mark.parametrize(
    "mapping", standard_mappings(), ids=lambda mapping: mapping.name
)
def test_catalog_mapping_compiled_identical(mapping):
    registry = build_standard_registry()
    document = _source_document(mapping, registry, _normalized_samples())
    interpreted = mapping.apply(document, CONTEXT)
    compiled = mapping.compile().apply(document, CONTEXT)
    assert compiled.to_dict() == interpreted.to_dict()
    assert compiled.format_name == interpreted.format_name
    assert compiled.doc_type == interpreted.doc_type


def _failure(call, *args):
    try:
        call(*args)
    except (TransformError, ValidationError) as exc:
        return (type(exc).__name__, str(exc))
    return None


def test_validation_failure_identical():
    mapping = next(
        m for m in standard_mappings()
        if m.source_format == "normalized" and m.target_format == "edi-x12"
        and m.doc_type == "purchase_order"
    )
    bad = make_purchase_order("PO-X", "TP1", "ACME", LINES)
    bad.data.pop("summary")  # break the source schema
    interpreted = _failure(mapping.apply, bad, CONTEXT)
    compiled = _failure(mapping.compile().apply, bad, CONTEXT)
    assert interpreted is not None
    assert compiled == interpreted


def test_wrong_format_failure_identical():
    mapping = next(m for m in standard_mappings() if m.source_format == "normalized")
    registry = build_standard_registry()
    samples = _normalized_samples()
    wire = registry.transform(samples["purchase_order"], "edi-x12", CONTEXT)
    interpreted = _failure(mapping.apply, wire, CONTEXT)
    compiled = _failure(mapping.compile().apply, wire, CONTEXT)
    assert interpreted is not None
    assert compiled == interpreted


def test_compile_cache_reuses_and_invalidates():
    mapping = Mapping("m", "a", "b", "t")
    mapping.rules.append(Field("x", "y"))
    first = mapping.compile()
    assert mapping.compile() is first  # cached while rules are unchanged
    mapping.rules.append(Field("x2", "y2"))
    second = mapping.compile()
    assert second is not first  # rule edit rebuilds the compiled form

    from repro.documents.model import Document

    document = Document("a", "t", {"x": 1, "x2": 2})
    assert second.apply(document).to_dict() == mapping.apply(document).to_dict()
