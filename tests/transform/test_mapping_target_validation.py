"""Construction-time validation of rule target paths against target_schema."""

import pytest

from repro.documents.schema import DocumentSchema, FieldSpec
from repro.errors import MappingError
from repro.transform.catalog import build_standard_registry
from repro.transform.mapping import Compute, Const, Each, Field, Mapping


SCHEMA = DocumentSchema(
    "target", "fmt", "purchase_order",
    [
        FieldSpec("header.po_number", "str"),
        FieldSpec("summary.total_amount", "number"),
        FieldSpec("lines", "list"),
        FieldSpec("header.extra", "dict", required=False),
    ],
)


def build(rules):
    return Mapping(
        "m", "src", "fmt", "purchase_order", rules=rules, target_schema=SCHEMA
    )


def test_field_below_declared_scalar_is_rejected_with_rule_index():
    with pytest.raises(MappingError) as excinfo:
        build([
            Const("header.po_number", "PO-1"),
            Field("x", "summary.total_amount.cents"),
        ])
    message = str(excinfo.value)
    assert "rule 1" in message
    assert "summary.total_amount.cents" in message
    assert "number" in message


def test_compute_below_declared_scalar_is_rejected():
    with pytest.raises(MappingError) as excinfo:
        build([Compute("header.po_number.checksum", lambda doc, ctx: 0)])
    assert "rule 0" in str(excinfo.value)
    assert "Compute" in str(excinfo.value)


def test_each_onto_declared_non_list_is_rejected():
    with pytest.raises(MappingError) as excinfo:
        build([Each("lines", "header.po_number", [Field("a", "b")])])
    message = str(excinfo.value)
    assert "Each" in message
    assert "not list" in message


def test_valid_targets_construct():
    mapping = build([
        Const("header.po_number", "PO-1"),
        Field("x", "summary.total_amount"),
        Each("lines", "lines", [Field("sku", "sku")]),
        # writing below a declared dict container is fine
        Const("header.extra.note", "hello"),
        # a path the schema does not mention at all is permitted
        Const("trailer.checksum", "00"),
    ])
    assert mapping.rule_count() == 6


def test_no_schema_means_no_validation():
    mapping = Mapping(
        "free", "src", "fmt", "purchase_order",
        rules=[Field("x", "anything.goes.here")],
    )
    assert mapping.rule_count() == 1


def test_standard_catalog_still_constructs():
    registry = build_standard_registry()
    assert len(registry.mappings()) >= 20
