"""Tests for the transformation registry and hub routing."""

import pytest

from repro.documents.model import Document
from repro.errors import ConfigurationError, NoRouteError
from repro.transform.mapping import Field, Mapping
from repro.transform.transformer import TransformationRegistry


def _mapping(source, target, doc_type="order"):
    return Mapping(
        name=f"{source}__to__{target}/{doc_type}",
        source_format=source,
        target_format=target,
        doc_type=doc_type,
        rules=[Field("v", "v")],
    )


@pytest.fixture
def hub_registry():
    registry = TransformationRegistry(hub_format="hub")
    registry.register_all(
        [
            _mapping("a", "hub"),
            _mapping("hub", "a"),
            _mapping("b", "hub"),
            _mapping("hub", "b"),
            _mapping("a", "c"),  # a direct shortcut
        ]
    )
    return registry


def _doc(format_name, value=1):
    return Document(format_name, "order", {"v": value})


class TestRegistration:
    def test_duplicate_route_rejected(self, hub_registry):
        with pytest.raises(ConfigurationError):
            hub_registry.register(_mapping("a", "hub"))

    def test_same_pair_different_doc_type_ok(self, hub_registry):
        hub_registry.register(_mapping("a", "hub", doc_type="invoice"))
        assert hub_registry.find("a", "hub", "invoice") is not None

    def test_formats_enumeration(self, hub_registry):
        assert hub_registry.formats() == {"a", "b", "c", "hub"}

    def test_len_counts_mappings(self, hub_registry):
        assert len(hub_registry) == 5


class TestRouting:
    def test_identity_route_is_empty(self, hub_registry):
        assert hub_registry.route("a", "a", "order") == ()

    def test_route_returns_cached_tuple(self, hub_registry):
        first = hub_registry.route("a", "b", "order")
        assert first is hub_registry.route("a", "b", "order")
        assert isinstance(first, tuple)

    def test_direct_route_preferred(self, hub_registry):
        chain = hub_registry.route("a", "c", "order")
        assert [m.name for m in chain] == ["a__to__c/order"]

    def test_hub_route(self, hub_registry):
        chain = hub_registry.route("a", "b", "order")
        assert [m.name for m in chain] == ["a__to__hub/order", "hub__to__b/order"]

    def test_no_route_raises(self, hub_registry):
        with pytest.raises(NoRouteError):
            hub_registry.route("c", "b", "order")

    def test_no_route_for_unknown_doc_type(self, hub_registry):
        with pytest.raises(NoRouteError):
            hub_registry.route("a", "b", "invoice")


class TestTransformExecution:
    def test_identity_returns_same_document(self, hub_registry):
        document = _doc("a")
        assert hub_registry.transform(document, "a") is document

    def test_two_hop_transform(self, hub_registry):
        result = hub_registry.transform(_doc("a", 42), "b")
        assert result.format_name == "b"
        assert result.get("v") == 42

    def test_stats_counted_per_mapping(self, hub_registry):
        hub_registry.transform(_doc("a"), "b")
        hub_registry.transform(_doc("a"), "b")
        assert hub_registry.stats["a__to__hub/order"] == 2
        assert hub_registry.applications() == 4

    def test_standard_registry_uses_normalized_hub(self, registry, sample_po):
        # wire -> other wire goes through the normalized layout
        edi_doc = registry.transform(sample_po, "edi-x12")
        rn_doc = registry.transform(edi_doc, "rosettanet-xml")
        assert rn_doc.get("order.po_number") == "PO-1001"
