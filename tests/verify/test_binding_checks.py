"""Binding, mapping and public-process checks (B2B3xx)."""

from repro.core.binding import Binding, BindingStep
from repro.core.integration import IntegrationModel
from repro.core.public_process import (
    PublicProcessDefinition,
    PublicStep,
    seller_request_reply,
)
from repro.documents.schema import DocumentSchema, FieldSpec
from repro.transform.catalog import build_standard_registry
from repro.transform.mapping import Const, Each, Field, Mapping
from repro.verify import verify_binding, verify_mapping, verify_public_process
from repro.workflow.definitions import WorkflowBuilder


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


def _model_with(binding, workflow=None, definition=None):
    model = IntegrationModel("m")
    model.transforms = build_standard_registry()
    if workflow is not None:
        model.add_private_process(workflow)
    if definition is not None:
        model.public_processes[definition.name] = definition
    model.bindings[binding.name] = binding
    return model


def _private(name="p"):
    return (
        WorkflowBuilder(name)
        .activity("a", "noop")
        .meta(doc_types=["purchase_order"])
        .build()
    )


def test_b2b301_unroutable_transform_step():
    definition = seller_request_reply(
        "pub", protocol="rosettanet", wire_format="rosettanet-xml"
    )
    binding = Binding(
        name="b",
        public_process="pub",
        private_process="p",
        inbound=[BindingStep("dead-end", "transform", target_format="csv-flat")],
    )
    model = _model_with(binding, workflow=_private(), definition=definition)
    diagnostics = verify_binding(binding, model)
    broken = [d for d in diagnostics if d.code == "B2B301"]
    assert len(broken) == 1
    assert "csv-flat" in broken[0].message
    assert "inbound[0]" in broken[0].location


def test_b2b301_clean_for_routable_chain():
    definition = seller_request_reply(
        "pub", protocol="rosettanet", wire_format="rosettanet-xml"
    )
    binding = Binding(
        name="b",
        public_process="pub",
        private_process="p",
        inbound=[BindingStep("to_norm", "transform", target_format="normalized")],
        outbound=[BindingStep("to_wire", "transform", target_format="rosettanet-xml")],
    )
    model = _model_with(binding, workflow=_private(), definition=definition)
    assert verify_binding(binding, model) == []


def test_b2b302_dangling_references():
    binding = Binding(name="b", public_process="ghost-pub", private_process="ghost-priv")
    model = _model_with(binding)
    diagnostics = verify_binding(binding, model)
    assert codes(diagnostics) == ["B2B302", "B2B302"]
    messages = " ".join(d.message for d in diagnostics)
    assert "ghost-pub" in messages and "ghost-priv" in messages


def test_b2b302_dangling_application():
    binding = Binding(name="b", application="ghost-app", private_process="p")
    model = _model_with(binding, workflow=_private())
    diagnostics = verify_binding(binding, model)
    assert [d.code for d in diagnostics] == ["B2B302"]
    assert "ghost-app" in diagnostics[0].message


def test_verify_binding_without_model_is_silent():
    binding = Binding(name="b", public_process="anything", private_process="p")
    assert verify_binding(binding) == []


def _target_schema(**overrides):
    fields = overrides.get(
        "fields",
        [
            FieldSpec("header.po_number", "str"),
            FieldSpec("lines", "list", items=DocumentSchema(
                "item", "", "", [FieldSpec("sku", "str")]
            )),
        ],
    )
    return DocumentSchema(
        overrides.get("name", "schema"),
        overrides.get("format_name", "fmt"),
        overrides.get("doc_type", "purchase_order"),
        fields,
    )


def test_b2b303_uncovered_required_field():
    mapping = Mapping(
        "m", "src", "fmt", "purchase_order",
        rules=[Each("lines", "lines", [Field("sku", "sku")])],
        target_schema=_target_schema(),
    )
    diagnostics = verify_mapping(mapping)
    missing = [d for d in diagnostics if d.code == "B2B303"]
    assert len(missing) == 1
    assert "header.po_number" in missing[0].message


def test_b2b303_nested_item_field_uncovered():
    mapping = Mapping(
        "m", "src", "fmt", "purchase_order",
        rules=[
            Field("x", "header.po_number"),
            Each("lines", "lines", [Const("other", 1)]),
        ],
        target_schema=_target_schema(),
    )
    diagnostics = verify_mapping(mapping)
    nested = [d for d in diagnostics if "item field" in d.message]
    assert len(nested) == 1
    assert "'sku'" in nested[0].message


def test_b2b303_suppressed_by_post_hook():
    mapping = Mapping(
        "m", "src", "fmt", "purchase_order",
        rules=[],
        target_schema=_target_schema(),
        post=lambda source, target, context: None,
    )
    assert verify_mapping(mapping) == []


def test_b2b304_schema_metadata_mismatch():
    mapping = Mapping(
        "m", "src", "fmt", "purchase_order",
        rules=[Field("x", "header.po_number"),
               Each("lines", "lines", [Field("sku", "sku")])],
        target_schema=_target_schema(format_name="other-fmt", doc_type="invoice"),
    )
    diagnostics = verify_mapping(mapping)
    mismatches = [d for d in diagnostics if d.code == "B2B304"]
    assert len(mismatches) == 2  # format_name and doc_type both disagree
    messages = " ".join(d.message for d in mismatches)
    assert "other-fmt" in messages and "invoice" in messages


def test_catalog_mappings_are_clean():
    for mapping in build_standard_registry().mappings():
        assert verify_mapping(mapping) == [], mapping.name


def test_b2b305_connection_step_without_doc_type():
    definition = PublicProcessDefinition(
        "pub", protocol="p", role="seller", wire_format="w",
        steps=[
            PublicStep("r", "receive", doc_type="purchase_order"),
            PublicStep("tb", "to_binding", doc_type=""),
        ],
    )
    diagnostics = verify_public_process(definition)
    assert codes(diagnostics) == ["B2B305"]
    assert diagnostics[0].severity == "info"


def test_b2b306_no_wire_steps():
    definition = PublicProcessDefinition(
        "pub", protocol="p", role="seller", wire_format="w",
        steps=[PublicStep("tb", "to_binding", doc_type="purchase_order")],
    )
    diagnostics = verify_public_process(definition)
    assert codes(diagnostics) == ["B2B306"]


def test_standard_public_processes_are_clean():
    definition = seller_request_reply(
        "pub", protocol="rosettanet", wire_format="rosettanet-xml"
    )
    assert verify_public_process(definition) == []


def test_b2b506_trailing_business_receive_is_flagged():
    definition = PublicProcessDefinition(
        "pub", protocol="p", role="buyer", wire_format="w",
        steps=[
            PublicStep("s", "send", doc_type="purchase_order"),
            PublicStep("r", "receive", doc_type="po_ack"),
        ],
    )
    diagnostics = verify_public_process(definition)
    assert codes(diagnostics) == ["B2B506"]
    assert diagnostics[0].severity == "warning"
    assert "step:r" in diagnostics[0].location


def test_b2b506_trailing_from_binding_is_flagged():
    definition = PublicProcessDefinition(
        "pub", protocol="p", role="seller", wire_format="w",
        steps=[
            PublicStep("r", "receive", doc_type="purchase_order"),
            PublicStep("fb", "from_binding", doc_type="po_ack"),
        ],
    )
    assert codes(verify_public_process(definition)) == ["B2B506"]


def test_b2b506_exempts_trailing_ack_receive():
    definition = PublicProcessDefinition(
        "pub", protocol="p", role="buyer", wire_format="w",
        steps=[
            PublicStep("s", "send", doc_type="purchase_order"),
            PublicStep("r", "receive", doc_type="receipt_ack",
                       params={"ack": True}),
        ],
    )
    assert verify_public_process(definition) == []
