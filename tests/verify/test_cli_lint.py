"""The ``repro lint`` subcommand."""

import json

from repro.cli import main


def test_lint_single_clean_model_exits_zero(capsys):
    assert main(["lint", "--model", "fig14"]) == 0
    out = capsys.readouterr().out
    assert "fig14" in out
    assert "OK" in out


def test_lint_demo_broken_exits_nonzero_with_three_codes(capsys):
    assert main(["lint", "--demo-broken"]) == 1
    out = capsys.readouterr().out
    found = {code for code in ("B2B103", "B2B201", "B2B301") if code in out}
    assert len(found) >= 3
    assert "FAIL" in out


def test_lint_json_format(capsys):
    assert main(["lint", "--demo-broken", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == 2
    assert "broken-demo" in payload["models"]
    entry = payload["models"]["broken-demo"]
    assert entry["counts"]["error"] >= 2
    codes = {d["code"] for d in entry["diagnostics"]}
    assert {"B2B201", "B2B301", "B2B103"} <= codes


def test_lint_json_deep_includes_deadlock_demo_with_trace(capsys):
    assert main(["lint", "--demo-broken", "--deep", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    entry = payload["models"]["deadlock-demo"]
    codes = {d["code"] for d in entry["diagnostics"]}
    assert "B2B501" in codes
    deadlock = next(d for d in entry["diagnostics"] if d["code"] == "B2B501")
    assert any("purchase_order" in line for line in deadlock["trace"])


def test_lint_deep_all_examples_pass_on_error_threshold(capsys):
    assert main(["lint", "--deep"]) == 0
    out = capsys.readouterr().out
    assert "OK" in out


def test_lint_fail_on_warning_catches_naive_baseline(capsys):
    assert main(["lint", "--model", "naive-seller", "--fail-on", "warning"]) == 1
    out = capsys.readouterr().out
    assert "B2B103" in out


def test_lint_naive_baseline_passes_on_error_threshold(capsys):
    assert main(["lint", "--model", "naive-seller"]) == 0


def test_lint_unknown_target_exits_two(capsys):
    assert main(["lint", "--model", "no-such-target"]) == 2
    err = capsys.readouterr().err
    assert "unknown lint target" in err
