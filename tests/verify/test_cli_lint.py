"""The ``repro lint`` subcommand."""

import json

from repro.cli import main


def test_lint_single_clean_model_exits_zero(capsys):
    assert main(["lint", "--model", "fig14"]) == 0
    out = capsys.readouterr().out
    assert "fig14" in out
    assert "OK" in out


def test_lint_demo_broken_exits_nonzero_with_three_codes(capsys):
    assert main(["lint", "--demo-broken"]) == 1
    out = capsys.readouterr().out
    found = {code for code in ("B2B103", "B2B201", "B2B301") if code in out}
    assert len(found) >= 3
    assert "FAIL" in out


def test_lint_json_format(capsys):
    assert main(["lint", "--demo-broken", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == 4
    assert "broken-demo" in payload["models"]
    entry = payload["models"]["broken-demo"]
    assert entry["counts"]["error"] >= 2
    codes = {d["code"] for d in entry["diagnostics"]}
    assert {"B2B201", "B2B301", "B2B103"} <= codes
    # schema v3: per-model timing and state counts, plus run totals
    assert entry["cached"] is False
    assert entry["duration_ms"] >= 0
    assert entry["states"] == {"explored": 0, "pruned": 0}
    # schema v4: per-model dataflow route counts (0 without --dataflow)
    assert entry["dataflow_routes"] == 0
    assert payload["totals"]["models"] == 1


def test_lint_json_deep_includes_deadlock_demo_with_trace(capsys):
    assert main(["lint", "--demo-broken", "--deep", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    entry = payload["models"]["deadlock-demo"]
    codes = {d["code"] for d in entry["diagnostics"]}
    assert "B2B501" in codes
    deadlock = next(d for d in entry["diagnostics"] if d["code"] == "B2B501")
    assert any("purchase_order" in line for line in deadlock["trace"])


def test_lint_deep_all_examples_pass_on_error_threshold(capsys):
    assert main(["lint", "--deep"]) == 0
    out = capsys.readouterr().out
    assert "OK" in out


def test_lint_fail_on_warning_catches_naive_baseline(capsys):
    assert main(["lint", "--model", "naive-seller", "--fail-on", "warning"]) == 1
    out = capsys.readouterr().out
    assert "B2B103" in out


def test_lint_naive_baseline_passes_on_error_threshold(capsys):
    assert main(["lint", "--model", "naive-seller"]) == 0


def test_lint_unknown_target_exits_two(capsys):
    assert main(["lint", "--model", "no-such-target"]) == 2
    err = capsys.readouterr().err
    assert "unknown lint target" in err


def test_lint_incremental_warm_run_is_all_cache_hits(tmp_path, capsys):
    cache = str(tmp_path / "cache.json")
    argv = ["lint", "--model", "fig14", "--incremental", "--cache", cache,
            "--format", "json"]
    assert main(argv) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["totals"]["cache_hits"] == 0
    assert cold["totals"]["cache_misses"] == cold["totals"]["models"] == 1
    assert main(argv) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["totals"]["cache_hits"] == 1
    assert warm["totals"]["cache_misses"] == 0
    assert warm["models"]["fig14"]["cached"] is True
    # a cached verdict reports the identical findings
    assert (
        warm["models"]["fig14"]["diagnostics"]
        == cold["models"]["fig14"]["diagnostics"]
    )


def test_lint_incremental_text_reports_hit_rate(tmp_path, capsys):
    cache = str(tmp_path / "cache.json")
    argv = ["lint", "--model", "fig14", "--incremental", "--cache", cache]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "cache: 1 hit(s), 0 miss(es) (100% hit rate)" in out


def test_lint_stats_table_shows_state_counts(capsys):
    assert main(["lint", "--model", "fig14", "--deep", "--stats"]) == 0
    out = capsys.readouterr().out
    assert "Per-model verification stats" in out
    assert "explored" in out and "pruned" in out


def test_lint_registry_sweep_warm_json(tmp_path, capsys):
    cache = str(tmp_path / "cache.json")
    argv = ["lint", "--registry", "40", "--deep", "--incremental",
            "--cache", cache, "--format", "json"]
    assert main(argv) == 0
    cold = json.loads(capsys.readouterr().out)["registry"]
    assert cold["agreements"] == cold["verified"] == 40
    assert cold["explorations"] >= 1
    assert main(argv) == 0
    warm = json.loads(capsys.readouterr().out)["registry"]
    assert warm["cache_hit_rate"] == 1.0
    assert warm["fabric_cached"] is True
    assert warm["dirty_agreements"] == {}


def test_lint_registry_text_summary(capsys):
    assert main(["lint", "--registry", "25", "--deep"]) == 0
    out = capsys.readouterr().out
    assert "registry sweep: 25 agreement(s)" in out
    assert "OK" in out


def test_lint_dataflow_all_examples_pass_on_error_threshold(capsys):
    assert main(["lint", "--dataflow", "--fail-on", "error"]) == 0
    out = capsys.readouterr().out
    assert "OK" in out


def test_lint_dataflow_demo_broken_json(capsys):
    assert main(["lint", "--demo-broken", "--dataflow", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    entry = payload["models"]["dataflow-broken-demo"]
    assert entry["dataflow_routes"] == 2  # inbound PO + outbound ack
    codes = {d["code"] for d in entry["diagnostics"]}
    assert {"B2B701", "B2B703", "B2B704", "B2B705"} <= codes
    broken = next(d for d in entry["diagnostics"] if d["code"] == "B2B701")
    assert any("counterexample document" in line for line in broken["trace"])


def test_lint_dataflow_registry_json_reports_route_cache(tmp_path, capsys):
    cache = str(tmp_path / "cache.json")
    argv = ["lint", "--registry", "40", "--dataflow", "--incremental",
            "--cache", cache, "--format", "json"]
    assert main(argv) == 0
    cold = json.loads(capsys.readouterr().out)["registry"]["dataflow"]
    assert cold["routes"] > 0
    assert cold["routes_verified"] == cold["routes"]
    assert main(argv) == 0
    warm = json.loads(capsys.readouterr().out)["registry"]["dataflow"]
    assert warm["route_cache_hit_rate"] == 1.0
    assert warm["routes_verified"] == 0


def test_lint_no_reduce_keeps_deep_verdicts(capsys):
    assert main(["lint", "--demo-broken", "--deep", "--no-reduce",
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    codes = {d["code"] for d in payload["models"]["deadlock-demo"]["diagnostics"]}
    assert "B2B501" in codes
