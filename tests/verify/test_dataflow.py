"""The B2B7xx schema dataflow pass (:mod:`repro.verify.dataflow`)."""

import functools
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.documents.model import Document
from repro.documents.schema import DocumentSchema, FieldSpec
from repro.errors import ValidationError
from repro.transform.mapping import Compute, Const, Each, Field, Mapping
from repro.verify import render_text
from repro.verify.dataflow import (
    ABSENT,
    OPTIONAL,
    PRESENT,
    UNKNOWN,
    RouteSpec,
    check_mapping_dataflow,
    check_route_dataflow,
    counterexample_document,
    iter_binding_routes,
    lower_schema,
    transfer,
    types_conflict,
    verify_dataflow,
)
from repro.verify.targets import build_dataflow_broken_model


def _schema(name, fields, format_name="fmt", doc_type="t"):
    return DocumentSchema(
        name, format_name=format_name, doc_type=doc_type, fields=fields
    )


def _codes(diagnostics):
    return [d.code for d in diagnostics]


# ---------------------------------------------------------------------------
# Lattice
# ---------------------------------------------------------------------------


class TestLattice:
    def test_lower_schema_presence_and_types(self):
        schema = _schema("s", [
            FieldSpec("header.id", "str"),
            FieldSpec("header.note", "str", required=False),
            FieldSpec("summary.total", "float"),
        ])
        state = lower_schema(schema)
        assert state.open and not state.opaque
        assert state.fields["header.id"].presence == PRESENT
        assert state.fields["header.note"].presence == OPTIONAL
        assert state.fields["summary.total"].type_name == "float"

    def test_open_world_undeclared_path_is_unknown(self):
        state = lower_schema(_schema("s", [FieldSpec("a.b", "str")]))
        assert state.resolve("other.path") is UNKNOWN

    def test_reading_below_a_scalar_is_absent(self):
        state = lower_schema(_schema("s", [FieldSpec("a.b", "str")]))
        assert state.resolve("a.b.c") is ABSENT

    def test_reading_below_a_dict_is_unknown(self):
        state = lower_schema(_schema("s", [FieldSpec("a.b", "dict")]))
        assert state.resolve("a.b.c") is UNKNOWN

    def test_interior_node_of_declared_leaves_is_a_dict(self):
        state = lower_schema(_schema("s", [FieldSpec("a.b", "str")]))
        resolved = state.resolve("a")
        assert resolved.type_name == "dict"
        assert resolved.presence == PRESENT

    def test_closed_world_unwritten_path_is_absent(self):
        mapping = Mapping("m", "src", "tgt", "t", [Const("x.y", 1)])
        out = transfer(mapping, lower_schema(None))
        assert out.resolve("x.y").type_name == "int"
        assert out.resolve("never.written") is ABSENT

    def test_post_hook_collapses_to_opaque(self):
        mapping = Mapping(
            "m", "src", "tgt", "t", [Const("x", 1)],
            post=lambda s, t, c: None,
        )
        out = transfer(mapping, lower_schema(None))
        assert out.opaque
        assert out.resolve("anything") is UNKNOWN

    def test_scalar_ancestor(self):
        state = lower_schema(_schema("s", [
            FieldSpec("a.b", "str"), FieldSpec("c", "dict"),
        ]))
        assert state.scalar_ancestor("a.b.c") == ("a.b", "str")
        assert state.scalar_ancestor("c.d") is None

    def test_types_conflict(self):
        assert types_conflict("int", "str")
        assert types_conflict("bool", "int")
        assert types_conflict("list", "float")
        assert not types_conflict("int", "float")
        assert not types_conflict("float", "number")
        assert not types_conflict("any", "str")
        assert not types_conflict("str", "unknown-name")


# ---------------------------------------------------------------------------
# Per-mapping checks
# ---------------------------------------------------------------------------


SRC = _schema("src-schema", [
    FieldSpec("header.id", "str"),
    FieldSpec("header.code", "str", required=False),
    FieldSpec("summary.total", "float"),
], format_name="src")


class TestMappingChecks:
    def test_b2b701_const_type_conflict(self):
        mapping = Mapping(
            "m", "src", "tgt", "t",
            [Field("header.id", "out.id"), Const("out.flag", "yes")],
            source_schema=SRC,
            target_schema=_schema("tgt-schema", [
                FieldSpec("out.id", "str"), FieldSpec("out.flag", "bool"),
            ]),
        )
        diagnostics = check_mapping_dataflow(mapping)
        assert _codes(diagnostics) == ["B2B701"]
        assert "'out.flag' as str" in diagnostics[0].message
        assert any(
            "counterexample document" in line for line in diagnostics[0].trace
        )

    def test_b2b702_optional_source_required_target(self):
        mapping = Mapping(
            "m", "src", "tgt", "t",
            [
                Field("header.id", "out.id"),
                Field("header.code", "out.code", required=False),
            ],
            source_schema=SRC,
            target_schema=_schema("tgt-schema", [
                FieldSpec("out.id", "str"), FieldSpec("out.code", "str"),
            ]),
        )
        diagnostics = check_mapping_dataflow(mapping)
        assert _codes(diagnostics) == ["B2B702"]
        assert "'out.code'" in diagnostics[0].message

    def test_b2b703_numeric_to_str_without_transform(self):
        mapping = Mapping(
            "m", "src", "tgt", "t",
            [Field("summary.total", "out.total")],
            source_schema=SRC,
            target_schema=_schema("tgt-schema", [FieldSpec("out.total", "str")]),
        )
        diagnostics = check_mapping_dataflow(mapping)
        assert _codes(diagnostics) == ["B2B703"]

    def test_b2b703_suppressed_by_declared_converter(self):
        from repro.transform.functions import to_str

        mapping = Mapping(
            "m", "src", "tgt", "t",
            [Field("summary.total", "out.total", convert=to_str)],
            source_schema=SRC,
            target_schema=_schema("tgt-schema", [FieldSpec("out.total", "str")]),
        )
        assert check_mapping_dataflow(mapping) == []

    def test_b2b704_read_below_scalar(self):
        mapping = Mapping(
            "m", "src", "tgt", "t",
            [Field("header.id.sub", "out.x", required=False)],
            source_schema=SRC,
        )
        diagnostics = check_mapping_dataflow(mapping)
        assert _codes(diagnostics) == ["B2B704"]
        assert "'header.id.sub'" in diagnostics[0].message

    def test_b2b704_each_over_scalar(self):
        mapping = Mapping(
            "m", "src", "tgt", "t",
            [Each("header.id", "items", [Field("a", "b", required=False)])],
            source_schema=SRC,
        )
        diagnostics = check_mapping_dataflow(mapping)
        assert _codes(diagnostics) == ["B2B704"]
        assert "not a list" in diagnostics[0].message

    def test_open_world_suppresses_b2b704_for_undeclared_reads(self):
        # src schema does not declare 'trailer.checksum', but schemas are
        # partial contracts — the read may still succeed at runtime.
        mapping = Mapping(
            "m", "src", "tgt", "t",
            [Field("trailer.checksum", "out.x", required=False)],
            source_schema=SRC,
        )
        assert check_mapping_dataflow(mapping) == []

    def test_b2b707_unanalyzable_compute(self):
        def reader(document, context, key="x"):
            return document.get(key)

        mapping = Mapping(
            "m", "src", "tgt", "t",
            [Compute("out.x", functools.partial(reader, key="y"))],
        )
        diagnostics = check_mapping_dataflow(mapping)
        assert _codes(diagnostics) == ["B2B707"]
        assert diagnostics[0].severity == "info"
        assert "partial with keyword arguments" in diagnostics[0].message

    def test_post_hook_disables_write_checks(self):
        mapping = Mapping(
            "m", "src", "tgt", "t",
            [Const("out.flag", "yes")],
            target_schema=_schema("tgt-schema", [FieldSpec("out.flag", "bool")]),
            post=lambda s, t, c: None,
        )
        assert check_mapping_dataflow(mapping) == []


# ---------------------------------------------------------------------------
# Counterexample witnessing
# ---------------------------------------------------------------------------


class TestCounterexamples:
    def test_counterexample_satisfies_schema(self):
        schema = _schema("s", [
            FieldSpec("header.id", "str"),
            FieldSpec("header.note", "str", required=False),
            FieldSpec("summary.total", "float"),
            FieldSpec("lines", "list", min_items=2, items=_schema("items", [
                FieldSpec("sku", "str"), FieldSpec("qty", "int"),
            ])),
        ], format_name="src", doc_type="t")
        document = counterexample_document(schema)
        schema.validate(document)  # must not raise
        assert document.get("header.note", default=None) is None  # optionals omitted

    def test_b2b701_witness_fails_dynamically(self):
        mapping = Mapping(
            "m", "src", "tgt", "t",
            [Field("header.id", "out.id"), Const("out.flag", "yes")],
            source_schema=SRC,
            target_schema=_schema("tgt-schema", [
                FieldSpec("out.id", "str"), FieldSpec("out.flag", "bool"),
            ]),
        )
        [diagnostic] = check_mapping_dataflow(mapping)
        assert diagnostic.code == "B2B701"
        witness = counterexample_document(mapping.source_schema)
        with pytest.raises(ValidationError):
            mapping.apply(witness)

    def test_b2b702_witness_fails_dynamically(self):
        mapping = Mapping(
            "m", "src", "tgt", "t",
            [
                Field("header.id", "out.id"),
                Field("header.code", "out.code", required=False),
            ],
            source_schema=SRC,
            target_schema=_schema("tgt-schema", [
                FieldSpec("out.id", "str"), FieldSpec("out.code", "str"),
            ]),
        )
        [diagnostic] = check_mapping_dataflow(mapping)
        assert diagnostic.code == "B2B702"
        witness = counterexample_document(mapping.source_schema)
        with pytest.raises(ValidationError):
            mapping.apply(witness)

    def test_b2b705_witness_fails_dynamically(self):
        producer = Mapping(
            "m1", "src", "mid", "t",
            [Field("header.id", "po.number")],
            source_schema=SRC,
            target_schema=_schema(
                "mid-v1", [FieldSpec("po.number", "str")], format_name="mid"
            ),
        )
        consumer = Mapping(
            "m2", "mid", "app", "t",
            [Field("po.reference", "record.ref")],
            source_schema=_schema("mid-v2", [
                FieldSpec("po.number", "str"),
                FieldSpec("po.reference", "str"),
            ], format_name="mid"),
        )
        route = RouteSpec("b", "inbound", "t", (producer, consumer))
        diagnostics = check_route_dataflow(route)
        assert "B2B705" in _codes(diagnostics)
        witness = counterexample_document(producer.source_schema)
        with pytest.raises(ValidationError):
            consumer.apply(producer.apply(witness))


# ---------------------------------------------------------------------------
# The broken demo model and route enumeration
# ---------------------------------------------------------------------------


class TestBrokenDemoModel:
    def test_routes_enumerate_both_directions(self):
        model = build_dataflow_broken_model()
        routes = list(iter_binding_routes(model))
        labels = {route.label for route in routes}
        assert (
            "binding:dataflow-binding/inbound/purchase_order" in labels
        )
        assert "binding:dataflow-binding/outbound/po_ack" in labels
        inbound = next(r for r in routes if r.direction == "inbound")
        assert [m.name for m in inbound.chain] == [
            "legacy-wire__to__broken-hub/purchase_order",
            "broken-hub__to__app-flat/purchase_order",
        ]

    def test_demo_surfaces_the_b2b7xx_family(self):
        model = build_dataflow_broken_model()
        diagnostics = model.verify(dataflow=True)
        codes = set(_codes(diagnostics))
        assert {"B2B701", "B2B703", "B2B704", "B2B705"} <= codes
        for code in ("B2B701", "B2B705"):
            found = next(d for d in diagnostics if d.code == code)
            assert any(
                "counterexample document" in line for line in found.trace
            )

    def test_b2b706_expression_reading_absent_field(self):
        from repro.core.rules import BusinessRule, RuleSet

        model = build_dataflow_broken_model()
        model.rules.register(RuleSet("check_po", [
            BusinessRule("dead", expression="document.record.missing > 1"),
            BusinessRule("alive", expression="document.record.id == 'X'"),
        ]))
        diagnostics = verify_dataflow(model)
        flagged = [d for d in diagnostics if d.code == "B2B706"]
        assert len(flagged) == 1
        assert "rules:check_po/dead" in flagged[0].location
        assert "'record.missing'" in flagged[0].message

    def test_golden_rendered_output_is_totally_ordered(self):
        model = build_dataflow_broken_model()
        rendered = render_text(model.verify(dataflow=True), title="golden")
        expected = "\n".join([
            "golden",
            "  error   B2B701 model:dataflow-broken-demo/mapping:legacy-wire"
            "__to__broken-hub/purchase_order: rule 1 (Const) writes "
            "'po.currency' as int, but schema 'broken-hub/purchase_order' "
            "declares it str (hint: fix the rule's value or the schema "
            "declaration)",
            "      counterexample document (legacy-wire/purchase_order): "
            '{"header": {"currency": "X", "po_number": "X"}, '
            '"summary": {"total": 1.0}}',
            "  error   B2B705 model:dataflow-broken-demo/binding:dataflow-"
            "binding/inbound/purchase_order: intermediate schemas disagree: "
            "mapping 'broken-hub__to__app-flat/purchase_order' requires "
            "'po.reference' (schema 'broken-hub/purchase_order'), but "
            "upstream mapping 'legacy-wire__to__broken-hub/purchase_order' "
            "never writes it (hint: add the missing rule to the upstream "
            "mapping or relax the consumer schema)",
            "      counterexample document (legacy-wire/purchase_order): "
            '{"header": {"currency": "X", "po_number": "X"}, '
            '"summary": {"total": 1.0}}',
            "  error   B2B705 model:dataflow-broken-demo/binding:dataflow-"
            "binding/inbound/purchase_order: intermediate schemas disagree: "
            "mapping 'legacy-wire__to__broken-hub/purchase_order' writes "
            "'po.currency' as int, but mapping "
            "'broken-hub__to__app-flat/purchase_order' requires str (schema "
            "'broken-hub/purchase_order') (hint: align the intermediate "
            "schemas or insert a converting mapping)",
            "      counterexample document (legacy-wire/purchase_order): "
            '{"header": {"currency": "X", "po_number": "X"}, '
            '"summary": {"total": 1.0}}',
            "  error   B2B705 model:dataflow-broken-demo/binding:dataflow-"
            "binding/inbound/purchase_order: intermediate schemas disagree: "
            "mapping 'legacy-wire__to__broken-hub/purchase_order' writes "
            "'po.total_code' as float, but mapping "
            "'broken-hub__to__app-flat/purchase_order' requires str (schema "
            "'broken-hub/purchase_order') (hint: align the intermediate "
            "schemas or insert a converting mapping)",
            "      counterexample document (legacy-wire/purchase_order): "
            '{"header": {"currency": "X", "po_number": "X"}, '
            '"summary": {"total": 1.0}}',
            "  warning B2B703 model:dataflow-broken-demo/mapping:legacy-wire"
            "__to__broken-hub/purchase_order: rule 3 (Field) copies "
            "'summary.total' (float) into 'po.total_code' declared as str "
            "in schema 'broken-hub/purchase_order' without a transform "
            "function (hint: convert explicitly (functions.to_str) or widen "
            "the schema type)",
            "  warning B2B704 model:dataflow-broken-demo/binding:dataflow-"
            "binding/inbound/purchase_order: rule 1 (Field) reads source "
            "path 'po.reference', which no upstream schema or mapping "
            "produces (output of mapping "
            "'legacy-wire__to__broken-hub/purchase_order') (hint: remove "
            "the dead rule or fix the source path)",
            "  4 error(s), 2 warning(s), 0 info",
        ])
        assert rendered == expected


# ---------------------------------------------------------------------------
# Property: clean routes never raise on conforming documents
# ---------------------------------------------------------------------------


WIRE_SCHEMA = _schema("wire/po", [
    FieldSpec("header.po_number", "str"),
    FieldSpec("header.note", "str", required=False),
    FieldSpec("summary.total", "float"),
    FieldSpec("lines", "list", min_items=1, items=_schema("wire/po-lines", [
        FieldSpec("sku", "str"), FieldSpec("qty", "int"),
    ])),
], format_name="wire", doc_type="po")

HUB_SCHEMA = _schema("hub/po", [
    FieldSpec("po.number", "str"),
    FieldSpec("po.note", "str", required=False),
    FieldSpec("po.amount", "float"),
    FieldSpec("po.lines", "list", min_items=1, items=_schema("hub/po-lines", [
        FieldSpec("sku", "str"), FieldSpec("qty", "int"),
    ])),
], format_name="hub", doc_type="po")

APP_SCHEMA = _schema("app/po", [
    FieldSpec("record.id", "str"),
    FieldSpec("record.amount", "float"),
    FieldSpec("record.note", "str", required=False),
], format_name="app", doc_type="po")


def _clean_chain():
    to_hub = Mapping(
        "wire__to__hub/po", "wire", "hub", "po",
        [
            Field("header.po_number", "po.number"),
            Field("header.note", "po.note", required=False),
            Field("summary.total", "po.amount"),
            Each("lines", "po.lines", [Field("sku", "sku"), Field("qty", "qty")]),
        ],
        source_schema=WIRE_SCHEMA,
        target_schema=HUB_SCHEMA,
    )
    to_app = Mapping(
        "hub__to__app/po", "hub", "app", "po",
        [
            Field("po.number", "record.id"),
            Field("po.amount", "record.amount"),
            Field("po.note", "record.note", required=False),
        ],
        source_schema=HUB_SCHEMA,
        target_schema=APP_SCHEMA,
    )
    return to_hub, to_app


_line = st.fixed_dictionaries({
    "sku": st.text(min_size=1, max_size=8),
    "qty": st.integers(min_value=0, max_value=10_000),
})

_wire_documents = st.builds(
    lambda number, note, total, lines: _build_wire_doc(number, note, total, lines),
    st.text(min_size=1, max_size=12),
    st.one_of(st.none(), st.text(max_size=12)),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.lists(_line, min_size=1, max_size=4),
)


def _build_wire_doc(number, note, total, lines):
    document = Document("wire", "po", {})
    document.set("header.po_number", number)
    if note is not None:
        document.set("header.note", note)
    document.set("summary.total", total)
    document.set("lines", lines)
    return document


class TestCleanRouteProperty:
    def test_dataflow_marks_the_chain_clean(self):
        to_hub, to_app = _clean_chain()
        assert check_mapping_dataflow(to_hub) == []
        assert check_mapping_dataflow(to_app) == []
        route = RouteSpec("b", "inbound", "po", (to_hub, to_app))
        assert check_route_dataflow(route) == []

    @settings(max_examples=60, deadline=None)
    @given(document=_wire_documents)
    def test_clean_route_never_raises_on_conforming_documents(self, document):
        to_hub, to_app = _clean_chain()
        WIRE_SCHEMA.validate(document)
        final = to_app.apply(to_hub.apply(document))
        APP_SCHEMA.validate(final)
        assert final.get("record.id") == document.get("header.po_number")


# ---------------------------------------------------------------------------
# Cache and sweep integration
# ---------------------------------------------------------------------------


class TestCacheIntegration:
    def test_engine_version_bumped_for_dataflow(self):
        from repro.verify.incremental import ENGINE_VERSION

        assert ENGINE_VERSION == "2"

    def test_dataflow_option_changes_the_digest(self):
        from repro.verify.incremental import options_digest

        assert options_digest({"dataflow": True}) != options_digest({})
        assert options_digest({"dataflow": False}) == options_digest({})

    def test_pre_dataflow_cache_reads_cold_with_warning(self, tmp_path, capsys):
        from repro.verify.incremental import CACHE_SCHEMA, VerificationCache

        path = tmp_path / "cache.json"
        path.write_text(json.dumps({
            "schema": CACHE_SCHEMA,
            "engine": "1",
            "entries": {"fig14": {"digest": "stale"}},
        }))
        cache = VerificationCache(path)
        assert cache.entries == {}
        assert "engine '1'" in capsys.readouterr().err

    def test_registry_sweep_reuses_route_verdicts_when_warm(self):
        from repro.analysis.scenarios import build_registry_model
        from repro.verify.incremental import VerificationCache
        from repro.verify.registry import sweep_registry

        model = build_registry_model(50)
        cache = VerificationCache()
        cold = sweep_registry(model, deep=False, dataflow=True, cache=cache)
        assert cold.dataflow_routes > 0
        assert cold.routes_verified == cold.dataflow_routes
        assert cold.route_cache_hits == 0
        assert cold.diagnostics == []
        warm = sweep_registry(model, deep=False, dataflow=True, cache=cache)
        assert warm.route_cache_hits == warm.dataflow_routes
        assert warm.routes_verified == 0
        assert warm.route_cache_hit_rate == 1.0

    def test_editing_one_mapping_reverifies_only_its_routes(self):
        from repro.analysis.scenarios import build_registry_model
        from repro.verify.incremental import VerificationCache
        from repro.verify.registry import sweep_registry

        model = build_registry_model(20)
        cache = VerificationCache()
        cold = sweep_registry(model, deep=False, dataflow=True, cache=cache)
        # replace one catalog mapping's rules (a content edit)
        mapping = next(iter(model.transforms.mappings()))
        mapping.rules.append(Const("trailer.note", "edited"))
        warm = sweep_registry(model, deep=False, dataflow=True, cache=cache)
        assert 0 < warm.routes_verified < cold.dataflow_routes
        assert warm.route_cache_hits == warm.dataflow_routes - warm.routes_verified


class TestExampleModelsAreClean:
    def test_all_example_units_pass_the_dataflow_gate(self):
        from repro.verify.targets import lint_units

        for label, unit in lint_units(None).items():
            if not hasattr(unit, "transforms"):
                continue  # bare workflow baseline: no routes to dataflow
            diagnostics = [
                d for d in unit.verify(dataflow=True)
                if d.code.startswith("B2B7")
            ]
            assert diagnostics == [], f"{label}: {_codes(diagnostics)}"
