"""Diagnostic record and helper behaviour."""

import pytest

from repro.verify import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    at_or_above,
    count_by_severity,
    render_text,
    worst_severity,
)


def _sample():
    return [
        Diagnostic("B2B101", SEVERITY_ERROR, "wf/step:a", "unreachable"),
        Diagnostic("B2B103", SEVERITY_WARNING, "wf/step:b", "not exhaustive"),
        Diagnostic("B2B305", SEVERITY_INFO, "pub/step:c", "no doc_type"),
    ]


def test_diagnostic_is_immutable_and_validated():
    diagnostic = Diagnostic("B2B101", SEVERITY_ERROR, "loc", "msg", hint="fix it")
    with pytest.raises(Exception):
        diagnostic.code = "B2B999"
    with pytest.raises(ValueError):
        Diagnostic("B2B101", "fatal", "loc", "msg")


def test_to_dict_round_trips_all_fields():
    diagnostic = Diagnostic("B2B201", SEVERITY_ERROR, "loc", "msg", hint="h")
    payload = diagnostic.to_dict()
    assert payload == {
        "code": "B2B201",
        "severity": "error",
        "location": "loc",
        "message": "msg",
        "hint": "h",
    }


def test_render_includes_code_location_and_hint():
    rendered = Diagnostic("B2B301", SEVERITY_ERROR, "b/x", "broken", hint="fix").render()
    assert "B2B301" in rendered
    assert "b/x" in rendered
    assert "fix" in rendered


def test_count_and_worst_severity():
    diagnostics = _sample()
    assert count_by_severity(diagnostics) == {"error": 1, "warning": 1, "info": 1}
    assert worst_severity(diagnostics) == SEVERITY_ERROR
    assert worst_severity([]) is None


def test_at_or_above_thresholds():
    diagnostics = _sample()
    assert [d.code for d in at_or_above(diagnostics, SEVERITY_ERROR)] == ["B2B101"]
    assert len(at_or_above(diagnostics, SEVERITY_WARNING)) == 2
    assert len(at_or_above(diagnostics, SEVERITY_INFO)) == 3


def test_render_text_sorts_errors_first():
    text = render_text(_sample(), title="sample")
    lines = text.splitlines()
    assert lines[0] == "sample"
    assert "B2B101" in lines[1]
    assert "1 error(s), 1 warning(s), 1 info" in lines[-1]
    assert "clean" in render_text([], title="empty")


def test_render_text_sort_is_total_and_input_order_independent():
    diagnostics = [
        Diagnostic("B2B502", SEVERITY_ERROR, "conv/b", "later location"),
        Diagnostic("B2B101", SEVERITY_ERROR, "wf/a", "graph"),
        Diagnostic("B2B502", SEVERITY_ERROR, "conv/a", "earlier location"),
        Diagnostic("B2B601", SEVERITY_WARNING, "wf/p", "race"),
    ]
    forward = render_text(diagnostics)
    assert render_text(list(reversed(diagnostics))) == forward
    codes = [line.split()[1] for line in forward.splitlines()[:-1]]
    assert codes == ["B2B101", "B2B502", "B2B502", "B2B601"]
    assert forward.index("earlier location") < forward.index("later location")


def test_trace_renders_indented_and_serializes():
    diagnostic = Diagnostic(
        "B2B501", SEVERITY_ERROR, "conv", "deadlock",
        trace=("buyer  seller", "send po  -->"),
    )
    assert diagnostic.to_dict()["trace"] == ["buyer  seller", "send po  -->"]
    lines = render_text([diagnostic]).splitlines()
    assert "      buyer  seller" in lines
    assert "      send po  -->" in lines
    # a trace-less diagnostic keeps the compact payload
    assert "trace" not in Diagnostic("B2B101", SEVERITY_ERROR, "l", "m").to_dict()
