"""The shared purity/effect analyzer (:mod:`repro.verify.effects`)."""

import functools

from repro.transform.mapping import Compute, Each, Field
from repro.verify.effects import (
    EFFECT_PURE,
    EFFECT_READS_CONTEXT,
    EFFECT_UNANALYZABLE,
    analyze_function,
    compute_effects,
    rules_cacheable,
    rules_read_context,
)

TOTAL = 100.0


def pure_reader(document, context):
    return document.get("summary.total")


def context_reader(document, context):
    return context["now"]


def raising_reader(document, context):
    value = document.get("summary.total")
    if value is None:
        raise ValueError("missing total")
    return value


def global_reader(document, context):
    return TOTAL + document.get("summary.total")


def generic_reader(path, document, context):
    return document.get(path)


def generic_context_reader(key, document, context):
    return context.get(key)


class Extractor:
    def __init__(self, path):
        self.path = path

    def read(self, document, context):
        return document.get(self.path)

    def read_context(self, document, context):
        return context.get(self.path)


class TestAnalyzeFunction:
    def test_pure_document_reader(self):
        effects = analyze_function(pure_reader)
        assert effects.classification == EFFECT_PURE
        assert effects.cacheable and effects.analyzable
        assert not effects.reads_context
        assert not effects.may_raise

    def test_context_reader(self):
        effects = analyze_function(context_reader)
        assert effects.classification == EFFECT_READS_CONTEXT
        assert effects.reads_context and not effects.cacheable
        assert effects.analyzable

    def test_explicit_raise_is_flagged(self):
        assert analyze_function(raising_reader).may_raise
        assert not analyze_function(pure_reader).may_raise

    def test_global_reads_are_collected(self):
        effects = analyze_function(global_reader)
        assert "TOTAL" in effects.reads_globals
        assert effects.classification == EFFECT_PURE

    def test_builtin_is_unanalyzable(self):
        effects = analyze_function(len)
        assert effects.classification == EFFECT_UNANALYZABLE
        assert effects.reason == "no inspectable bytecode"
        # conservative: may read context, not cacheable
        assert effects.reads_context and not effects.cacheable

    def test_variadic_is_unanalyzable(self):
        effects = analyze_function(lambda *args: None)
        assert effects.classification == EFFECT_UNANALYZABLE
        assert effects.reason == "variadic signature"

    def test_missing_context_parameter_is_unanalyzable(self):
        effects = analyze_function(lambda document: None)
        assert effects.classification == EFFECT_UNANALYZABLE
        assert effects.reason == "missing context parameter"


class TestWidening:
    """The cases PR 8's ``__code__`` probe forced into a cache bypass."""

    def test_partial_of_pure_reader_is_pure(self):
        fn = functools.partial(generic_reader, "summary.total")
        assert not hasattr(fn, "__code__")  # the old check would bail here
        assert analyze_function(fn).classification == EFFECT_PURE

    def test_partial_of_context_reader_still_reads_context(self):
        fn = functools.partial(generic_context_reader, "now")
        assert analyze_function(fn).classification == EFFECT_READS_CONTEXT

    def test_partial_with_keywords_is_unanalyzable(self):
        fn = functools.partial(generic_reader, path="summary.total")
        effects = analyze_function(fn)
        assert effects.classification == EFFECT_UNANALYZABLE
        assert effects.reason == "partial with keyword arguments"

    def test_bound_method_reader_is_pure(self):
        fn = Extractor("summary.total").read
        assert analyze_function(fn).classification == EFFECT_PURE

    def test_bound_method_context_reader_reads_context(self):
        fn = Extractor("now").read_context
        assert analyze_function(fn).classification == EFFECT_READS_CONTEXT

    def test_nested_partial_unwraps(self):
        def deep(a, b, document, context):
            return document.get(a) or document.get(b)

        fn = functools.partial(functools.partial(deep, "x"), "y")
        assert analyze_function(fn).classification == EFFECT_PURE


class TestRuleWalks:
    def test_compute_effects_renders_nested_each_targets(self):
        rules = [
            Field("a", "b"),
            Compute("total", pure_reader),
            Each("lines", "items", [Compute("price", context_reader)]),
        ]
        found = compute_effects(rules)
        targets = [target for target, _rule, _effects in found]
        assert targets == ["total", "items[].price"]

    def test_rules_read_context_and_cacheable(self):
        pure = [Compute("total", pure_reader)]
        impure = [Compute("total", pure_reader), Compute("now", context_reader)]
        assert not rules_read_context(pure) and rules_cacheable(pure)
        assert rules_read_context(impure) and not rules_cacheable(impure)

    def test_unanalyzable_counts_as_context_reading(self):
        rules = [Compute("out", len)]
        assert rules_read_context(rules)
        assert not rules_cacheable(rules)
