"""Incremental verification: digests, the persisted cache, invalidation."""

import dataclasses
import json

from repro.analysis.change_impact import build_fig14_model
from repro.verify.incremental import (
    CACHE_SCHEMA,
    IncrementalVerifier,
    VerificationCache,
    component_digests,
    content_digest,
    verification_digest,
    verify_unit,
)
from repro.verify.targets import build_broken_model

DEEP = {"deep": True}


# ---------------------------------------------------------------------------
# Digest composition
# ---------------------------------------------------------------------------


def test_digest_is_deterministic_across_independent_builds():
    first, _ = verification_digest(build_fig14_model(), DEEP)
    second, _ = verification_digest(build_fig14_model(), DEEP)
    assert first == second


def test_digest_depends_on_verify_options():
    model = build_fig14_model()
    deep, _ = verification_digest(model, DEEP)
    shallow, _ = verification_digest(model, {"deep": False})
    bounded, _ = verification_digest(model, {"deep": True, "queue_bound": 3})
    unreduced, _ = verification_digest(model, {"deep": True, "reduce": False})
    assert len({deep, shallow, bounded, unreduced}) == 4


def test_in_place_rule_edit_changes_exactly_one_component():
    model = build_fig14_model()
    before = component_digests(model)
    rule_set = model.rules.get("check_need_for_approval")
    rule = rule_set.rules[0]
    rule_set.rules[0] = dataclasses.replace(
        rule, expression="document.amount >= 99999"
    )
    after = component_digests(model)
    changed = {key for key in before if before[key] != after.get(key)}
    assert changed == {f"rule:check_need_for_approval:{rule.name}"}


def test_protocol_descriptor_edit_changes_exactly_its_component():
    model = build_fig14_model()
    before = component_digests(model)
    name = sorted(model.protocols)[0]
    model.protocols[name] = dataclasses.replace(
        model.protocols[name], ack_timeout=99.0
    )
    after = component_digests(model)
    changed = {key for key in before if before[key] != after.get(key)}
    assert changed == {f"protocol:{name}"}


def test_binding_edit_changes_exactly_its_component():
    from repro.core.binding import BindingStep

    model = build_fig14_model()
    before = component_digests(model)
    name = sorted(model.bindings)[0]
    model.bindings[name].inbound.append(
        BindingStep("extra", "transform", target_format="normalized")
    )
    after = component_digests(model)
    changed = {key for key in before if before[key] != after.get(key)}
    assert changed == {f"binding:{name}"}


def test_callable_digests_use_qualified_names_not_addresses():
    def converter(value):
        return value

    assert content_digest(converter) == content_digest(converter)
    assert "fn:" not in content_digest(converter)  # digested, not embedded


# ---------------------------------------------------------------------------
# Cache round-trip and resilience
# ---------------------------------------------------------------------------


def test_cache_round_trips_verdicts_through_disk(tmp_path):
    path = tmp_path / "cache.json"
    model = build_broken_model()

    cold = IncrementalVerifier(VerificationCache(path), deep=False)
    first = cold.verify("broken", model)
    assert not first.cached and first.diagnostics
    cold.flush()

    warm = IncrementalVerifier(VerificationCache(path), deep=False)
    second = warm.verify("broken", model)
    assert second.cached
    assert warm.hit_rate == 1.0
    assert [d.to_dict() for d in second.diagnostics] == [
        d.to_dict() for d in first.diagnostics
    ]


def test_corrupt_cache_file_is_treated_as_cold(tmp_path, capsys):
    path = tmp_path / "cache.json"
    path.write_text("{not json", encoding="utf-8")
    cache = VerificationCache(path)
    assert not cache.loaded
    assert cache.entries == {}
    warning = capsys.readouterr().err
    assert f"warning: ignoring lint cache {path}" in warning
    # The parse error itself is part of the one-line warning.
    assert "unreadable" in warning and "line 1" in warning
    assert warning.count("\n") == 1


def test_non_object_cache_payload_warns_and_is_cold(tmp_path, capsys):
    path = tmp_path / "cache.json"
    path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
    assert not VerificationCache(path).loaded
    assert "expected a JSON object, got list" in capsys.readouterr().err


def test_wrong_schema_or_engine_is_treated_as_cold(tmp_path, capsys):
    path = tmp_path / "cache.json"
    path.write_text(
        json.dumps({"schema": "other/9", "engine": "1", "entries": {"x": {}}}),
        encoding="utf-8",
    )
    assert not VerificationCache(path).loaded
    assert "schema 'other/9'" in capsys.readouterr().err
    path.write_text(
        json.dumps({"schema": CACHE_SCHEMA, "engine": "999", "entries": {"x": {}}}),
        encoding="utf-8",
    )
    assert not VerificationCache(path).loaded
    assert "engine '999'" in capsys.readouterr().err


def test_lookup_rejects_stale_digest():
    cache = VerificationCache()
    cache.store("m", "digest-a", {"mapping:x": "1"}, [], {})
    assert cache.lookup("m", "digest-a") is not None
    assert cache.lookup("m", "digest-b") is None
    assert cache.lookup("other", "digest-a") is None


# ---------------------------------------------------------------------------
# Invalidation: a shared-component edit re-verifies exactly its dependents
# ---------------------------------------------------------------------------


def _shared_registry_trio():
    """Two models sharing one transform registry object, one independent."""
    sharer_a = build_fig14_model()
    sharer_b = build_fig14_model()
    sharer_b.transforms = sharer_a.transforms
    independent = build_fig14_model()
    return sharer_a, sharer_b, independent


def test_shared_registry_edit_invalidates_exactly_its_dependents():
    sharer_a, sharer_b, independent = _shared_registry_trio()
    verifier = IncrementalVerifier(deep=False)
    for label, model in (
        ("a", sharer_a), ("b", sharer_b), ("solo", independent)
    ):
        assert not verifier.verify(label, model).cached

    mapping = sharer_a.transforms.mappings()[0]
    mapping.rules.append(mapping.rules[0])

    rerun = IncrementalVerifier(verifier.cache, deep=False)
    assert not rerun.verify("a", sharer_a).cached
    assert not rerun.verify("b", sharer_b).cached
    assert rerun.verify("solo", independent).cached
    assert rerun.hits == 1 and rerun.misses == 2


def test_invalidations_name_the_changed_component():
    model = build_fig14_model()
    verifier = IncrementalVerifier(deep=False)
    verifier.verify("m", model)

    mapping = model.transforms.mappings()[0]
    mapping.rules.append(mapping.rules[0])
    _, components = verification_digest(model, verifier.options)
    assert verifier.cache.invalidations("m", components) == [
        f"mapping:{mapping.name}"
    ]


def test_dependents_map_lists_every_unit_containing_a_component():
    sharer_a, sharer_b, independent = _shared_registry_trio()
    verifier = IncrementalVerifier(deep=False)
    for label, model in (
        ("a", sharer_a), ("b", sharer_b), ("solo", independent)
    ):
        verifier.verify(label, model)
    mapping = sharer_a.transforms.mappings()[0]
    # Same content digests everywhere, so all three depend on the key;
    # the map answers "who must re-verify if this component changes".
    assert verifier.cache.dependents(f"mapping:{mapping.name}") == [
        "a", "b", "solo"
    ]
    assert verifier.cache.dependents("mapping:no-such") == []


# ---------------------------------------------------------------------------
# Bare workflow units (the naive baseline)
# ---------------------------------------------------------------------------


def test_bare_workflow_unit_is_digestable_and_verifiable():
    from repro.baselines.monolithic import NaiveTopology, build_naive_seller_type

    workflow = build_naive_seller_type(NaiveTopology.figure9())
    digest, components = verification_digest(workflow, DEEP)
    assert set(components) == {f"workflow:{workflow.name}"}
    report = verify_unit("naive", workflow, DEEP)
    assert {d.code for d in report.diagnostics} >= {"B2B103"}

    verifier = IncrementalVerifier(deep=True)
    assert not verifier.verify("naive", workflow).cached
    assert verifier.verify("naive", workflow).cached
    assert verifier.reports["naive"].digest == digest
