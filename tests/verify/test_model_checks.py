"""Whole-model checks (B2B4xx), verify_model orchestration and
IntegrationModel.verify()."""

import pytest

from repro.analysis.change_impact import build_fig14_model
from repro.core.integration import IntegrationModel, Route
from repro.errors import VerificationError
from repro.partners.agreement import TradingPartnerAgreement
from repro.partners.profile import TradingPartner
from repro.transform.catalog import build_standard_registry
from repro.verify import verify_model
from repro.verify.targets import build_broken_model
from repro.workflow.definitions import WorkflowBuilder


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


def _empty_model(name="m"):
    model = IntegrationModel(name)
    model.transforms = build_standard_registry()
    return model


def _workflow(name="p"):
    return WorkflowBuilder(name).activity("a", "noop").build()


def test_fig14_model_is_clean():
    assert verify_model(build_fig14_model()) == []


def test_b2b401_protocol_without_route():
    from repro.b2b.protocol import get_protocol

    model = _empty_model()
    # register the protocol directly, bypassing add_protocol's route wiring
    model.protocols["rosettanet"] = get_protocol("rosettanet")
    diagnostics = verify_model(model)
    unrouted = [d for d in diagnostics if d.code == "B2B401"]
    assert len(unrouted) == 1
    assert "rosettanet" in unrouted[0].location


def test_b2b402_orphaned_private_process():
    model = _empty_model()
    model.add_private_process(_workflow("lonely"))
    diagnostics = verify_model(model)
    orphans = [d for d in diagnostics if d.code == "B2B402"]
    assert len(orphans) == 1
    assert "private:lonely" in orphans[0].location


def test_b2b403_route_with_missing_references():
    model = _empty_model()
    model._routes[("ghost-protocol", "seller")] = Route(
        protocol="ghost-protocol",
        role="seller",
        public_process="ghost-pub",
        binding="ghost-binding",
        private_process="ghost-priv",
    )
    diagnostics = verify_model(model)
    stale = [d for d in diagnostics if d.code == "B2B403"]
    # public process, binding, private process and protocol all missing
    assert len(stale) == 4


def test_b2b404_agreement_over_undeployed_protocol():
    model = _empty_model()
    model.partners.add_partner(TradingPartner("TP1", protocols=("rosettanet",)))
    model.partners.add_agreement(
        TradingPartnerAgreement("TP1", "rosettanet", "seller")
    )
    diagnostics = verify_model(model)
    assert "B2B404" in codes(diagnostics)


def test_b2b405_overlapping_agreements():
    from repro.b2b.protocol import get_protocol

    model = _empty_model()
    model.add_private_process(
        WorkflowBuilder("private-po-seller").activity("a", "noop").build()
    )
    model.add_protocol(get_protocol("edi-van"), "private-po-seller")
    model.add_protocol(get_protocol("rosettanet"), "private-po-seller")
    model.partners.add_partner(
        TradingPartner("TP1", protocols=("edi-van", "rosettanet"))
    )
    model.partners.add_agreement(TradingPartnerAgreement("TP1", "edi-van", "seller"))
    model.partners.add_agreement(TradingPartnerAgreement("TP1", "rosettanet", "seller"))
    diagnostics = verify_model(model)
    overlaps = [d for d in diagnostics if d.code == "B2B405"]
    assert overlaps, codes(diagnostics)
    assert "TP1" in overlaps[0].message


def test_b2b406_partner_with_no_deployed_protocol():
    model = _empty_model()
    model.partners.add_partner(TradingPartner("TP9", protocols=("oagis-http",)))
    diagnostics = verify_model(model)
    assert "B2B406" in codes(diagnostics)


def test_verify_model_prefixes_locations_with_model_name():
    model = build_broken_model()
    diagnostics = verify_model(model)
    assert diagnostics
    assert all(d.location.startswith("model:broken-demo/") for d in diagnostics)


def test_integration_model_verify_strict_raises():
    model = build_broken_model()
    diagnostics = model.verify()
    assert len({d.code for d in diagnostics}) >= 3
    with pytest.raises(VerificationError) as excinfo:
        model.verify(strict=True)
    assert excinfo.value.diagnostics
    assert all(d.severity == "error" for d in excinfo.value.diagnostics)


def test_integration_model_verify_strict_passes_clean_model():
    model = build_fig14_model()
    assert model.verify(strict=True) == []


def test_scenario_builders_verify_opt_in():
    from repro.analysis.scenarios import build_two_enterprise_pair

    pair = build_two_enterprise_pair("rosettanet", verify=True)
    assert pair.buyer.model.name == "TP1"

    assert build_fig14_model(verify=True).name == "ACME"


def test_verify_model_deep_finds_conversation_deadlock():
    from repro.verify.targets import build_deadlock_model

    model = build_deadlock_model()
    assert verify_model(model) == []  # shallow lint cannot see it
    diagnostics = verify_model(model, deep=True)
    assert [d.code for d in diagnostics] == ["B2B501"]
    (deadlock,) = diagnostics
    assert deadlock.location == (
        "model:deadlock-demo/conversation:deadlock-handshake/"
        "deadlock-buyer+deadlock-seller"
    )
    assert deadlock.trace  # the MSC counterexample rides along


def test_verify_model_deep_forwards_exploration_bounds():
    from repro.verify.targets import build_deadlock_model

    diagnostics = verify_model(build_deadlock_model(), deep=True, max_states=1)
    assert "B2B505" in {d.code for d in diagnostics}


def test_integration_model_verify_deep_runs_race_analysis():
    model = IntegrationModel("race-demo")
    model.transforms = build_standard_registry()
    workflow = (
        WorkflowBuilder("racy")
        .variable("total", 0)
        .activity("fork", "start")
        .activity("left", "work", outputs={"total": "result"})
        .activity("right", "work", outputs={"total": "result"})
        .activity("join", "merge")
        .link("fork", "left")
        .link("fork", "right")
        .link("left", "join")
        .link("right", "join")
        .build()
    )
    model.add_private_process(workflow)
    assert "B2B601" not in {d.code for d in model.verify()}
    deep = model.verify(deep=True)
    race = next(d for d in deep if d.code == "B2B601")
    assert race.location == "model:race-demo/private:racy/parallel:fork"
