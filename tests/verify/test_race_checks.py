"""AND-parallel race detection over workflow types (B2B6xx)."""

from repro.verify.race_checks import concurrent_step_pairs, verify_workflow_races
from repro.workflow.definitions import WorkflowBuilder


def _parallel_workflow(
    left_outputs=None, right_outputs=None, left_inputs=None, right_inputs=None
):
    return (
        WorkflowBuilder("parallel-demo")
        .variable("total", 0)
        .variable("doc", None)
        .activity("fork", "start")
        .activity("left", "work_left",
                  inputs=left_inputs, outputs=left_outputs)
        .activity("right", "work_right",
                  inputs=right_inputs, outputs=right_outputs)
        .activity("join", "merge")
        .link("fork", "left")
        .link("fork", "right")
        .link("left", "join")
        .link("right", "join")
        .build()
    )


def test_concurrent_pairs_cover_branches_but_not_the_join():
    workflow = _parallel_workflow()
    pairs = concurrent_step_pairs(workflow)
    assert pairs == [("fork", "left", "right")]


def test_write_write_race_reports_b2b601():
    workflow = _parallel_workflow(
        left_outputs={"total": "result"}, right_outputs={"total": "result"}
    )
    diagnostics = verify_workflow_races(workflow)
    assert [d.code for d in diagnostics] == ["B2B601"]
    (race,) = diagnostics
    assert race.severity == "warning"
    assert "'total'" in race.message
    assert race.location.endswith("/parallel:fork")


def test_read_write_race_reports_b2b602_with_the_path():
    workflow = _parallel_workflow(
        left_outputs={"doc": "result"},
        right_inputs={"amount": "doc.amount"},
    )
    diagnostics = verify_workflow_races(workflow)
    assert [d.code for d in diagnostics] == ["B2B602"]
    (race,) = diagnostics
    assert "'doc'" in race.message
    assert "'doc.amount'" in race.message


def test_condition_reads_count_as_reads():
    workflow = (
        WorkflowBuilder("condition-race")
        .variable("flag", False)
        .activity("fork", "start")
        .activity("writer", "set_flag", outputs={"flag": "result"})
        .activity("reader", "check")
        .activity("yes", "yes")
        .activity("join", "merge")
        .link("fork", "writer")
        .link("fork", "reader")
        .link("reader", "yes", condition="flag == True")
        .link("reader", "yes", otherwise=True)
        .link("writer", "join")
        .link("yes", "join")
        .build()
    )
    diagnostics = verify_workflow_races(workflow)
    assert "B2B602" in {d.code for d in diagnostics}


def test_xor_branches_are_not_flagged():
    workflow = (
        WorkflowBuilder("xor-demo")
        .variable("total", 0)
        .activity("decide", "decide")
        .activity("high", "high_path", outputs={"total": "result"})
        .activity("low", "low_path", outputs={"total": "result"})
        .activity("done", "done")
        .link("decide", "high", condition="total > 10")
        .link("decide", "low", otherwise=True)
        .link("high", "done")
        .link("low", "done")
        .build()
    )
    assert concurrent_step_pairs(workflow) == []
    assert verify_workflow_races(workflow) == []


def test_post_join_reader_is_not_flagged():
    workflow = (
        WorkflowBuilder("post-join")
        .variable("total", 0)
        .activity("fork", "start")
        .activity("left", "work", outputs={"total": "result"})
        .activity("right", "work")
        .activity("join", "merge",
                  inputs={"value": "total"})
        .link("fork", "left")
        .link("fork", "right")
        .link("left", "join")
        .link("right", "join")
        .build()
    )
    assert verify_workflow_races(workflow) == []


def test_disjoint_variables_are_clean():
    workflow = _parallel_workflow(
        left_outputs={"total": "result"}, right_outputs={"doc": "result"}
    )
    assert verify_workflow_races(workflow) == []
