"""Registry-scale sweeps: shared explorations, digest-cached verdicts."""

from repro.analysis.scenarios import build_registry_model
from repro.verify.incremental import VerificationCache
from repro.verify.registry import sweep_registry

AGREEMENTS = 60


def test_generated_registry_is_deterministic():
    first = build_registry_model(AGREEMENTS)
    second = build_registry_model(AGREEMENTS)
    assert first.verification_digest(deep=True) == second.verification_digest(
        deep=True
    )
    assert len(first.partners.agreements()) == AGREEMENTS


def test_cold_sweep_is_clean_and_shares_explorations():
    model = build_registry_model(AGREEMENTS)
    report = sweep_registry(model, deep=True)
    assert not report.diagnostics
    assert report.agreements == report.verified == AGREEMENTS
    assert report.cache_hits == 0
    # One exploration per referenced protocol, not per agreement.
    protocols = {a.protocol for a in model.partners.agreements()}
    assert report.explorations == len(protocols)
    assert report.states_explored > 0


def test_warm_sweep_serves_everything_from_cache():
    model = build_registry_model(AGREEMENTS)
    cache = VerificationCache()
    sweep_registry(model, deep=True, cache=cache)
    warm = sweep_registry(model, deep=True, cache=cache)
    assert warm.cache_hit_rate == 1.0
    assert warm.verified == 0
    assert warm.explorations == 0
    assert warm.fabric_cached


def test_single_agreement_edit_reverifies_exactly_that_agreement():
    model = build_registry_model(AGREEMENTS)
    cache = VerificationCache()
    sweep_registry(model, deep=True, cache=cache)

    edited = model.partners.agreements()[0]
    edited.properties["discount"] = "2%"
    after = sweep_registry(model, deep=True, cache=cache)
    assert after.verified == 1
    assert after.cache_hits == AGREEMENTS - 1
    # The fabric digest covers every component, so a term edit re-runs
    # the whole-model agreement-integrity pass too.
    assert not after.fabric_cached


def test_option_change_invalidates_the_whole_sweep():
    model = build_registry_model(AGREEMENTS)
    cache = VerificationCache()
    sweep_registry(model, deep=True, cache=cache)
    shallow = sweep_registry(model, deep=False, cache=cache)
    assert shallow.cache_hits == 0
    assert shallow.verified == AGREEMENTS
    assert shallow.explorations == 0  # deep=False explores nothing


def test_defective_pair_surfaces_under_each_agreement_location():
    from repro.verify.targets import build_deadlock_model

    model = build_deadlock_model()
    from repro.partners.agreement import TradingPartnerAgreement
    from repro.partners.profile import TradingPartner

    model.partners.add_partner(
        TradingPartner("TP-D", protocols=("deadlock-handshake",))
    )
    model.partners.add_agreement(
        TradingPartnerAgreement(
            "TP-D", "deadlock-handshake", "buyer",
            doc_types=("purchase_order", "invoice"),
        )
    )
    report = sweep_registry(model, deep=True)
    (label, diagnostics), = report.dirty.items()
    assert label.startswith("agreement:TP-D:")
    assert any(d.code == "B2B501" for d in diagnostics)
    assert all(d.location.startswith(label) for d in diagnostics)


def test_sweep_report_diagnostics_merge_fabric_and_agreements():
    model = build_registry_model(AGREEMENTS)
    report = sweep_registry(model, deep=True)
    assert report.diagnostics == report.fabric_diagnostics  # clean agreements
    assert report.dirty == {}
