"""Conversation model checking: the bounded product-state-space explorer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.b2b.protocol import extended_protocols
from repro.core.public_process import PublicProcessDefinition, PublicStep
from repro.verify import render_text
from repro.verify.statespace import explore_pair, render_msc
from repro.verify.targets import build_deadlock_model


def _definition(name, role, steps, protocol="test-proto"):
    return PublicProcessDefinition(
        name, protocol, role, "test-xml",
        [PublicStep(f"s{index}_{kind}_{doc}", kind, doc)
         for index, (kind, doc) in enumerate(steps)],
    )


def _deadlock_pair():
    model = build_deadlock_model()
    return (
        model.public_processes["deadlock-buyer"],
        model.public_processes["deadlock-seller"],
    )


# ---------------------------------------------------------------------------
# Defect detection
# ---------------------------------------------------------------------------


def test_complementary_request_reply_is_clean():
    buyer = _definition("b", "buyer", [("send", "po"), ("receive", "ack")])
    seller = _definition("s", "seller", [("receive", "po"), ("send", "ack")])
    result = explore_pair(buyer, seller)
    assert result.clean
    assert result.states_explored == 5  # the single interleaving, 4 moves


def test_deadlock_reports_b2b501_with_minimal_trace():
    buyer, seller = _deadlock_pair()
    result = explore_pair(buyer, seller)
    codes = [d.code for d in result.diagnostics]
    assert codes == ["B2B501"]
    (deadlock,) = result.diagnostics
    assert deadlock.severity == "error"
    # BFS guarantees the shortest run into the stuck state: exactly the
    # PO handover, not any longer interleaving.
    wire_lines = [line for line in deadlock.trace if "[" in line]
    assert len(wire_lines) == 2


def test_unspecified_reception_reports_b2b502():
    buyer = _definition("b", "buyer", [("send", "po"), ("receive", "invoice")])
    seller = _definition("s", "seller", [("receive", "po"), ("send", "ack")])
    result = explore_pair(buyer, seller)
    codes = {d.code for d in result.diagnostics}
    assert "B2B502" in codes
    reception = next(d for d in result.diagnostics if d.code == "B2B502")
    assert "'invoice'" in reception.message
    assert "'ack'" in reception.message


def test_orphan_message_reports_b2b504():
    buyer = _definition("b", "buyer", [("send", "po"), ("send", "note")])
    seller = _definition("s", "seller", [("receive", "po")])
    result = explore_pair(buyer, seller)
    codes = {d.code for d in result.diagnostics}
    assert "B2B504" in codes
    orphan = next(d for d in result.diagnostics if d.code == "B2B504")
    assert orphan.severity == "warning"
    assert "'note'" in orphan.message


def test_mutual_burst_overflows_at_bound_one_but_not_two():
    buyer = _definition(
        "b", "buyer",
        [("send", "x"), ("send", "x2"), ("receive", "y"), ("receive", "y2")],
    )
    seller = _definition(
        "s", "seller",
        [("send", "y"), ("send", "y2"), ("receive", "x"), ("receive", "x2")],
    )
    tight = explore_pair(buyer, seller, queue_bound=1)
    assert {d.code for d in tight.diagnostics} == {"B2B503"}
    overflow = next(iter(tight.diagnostics))
    assert "bound 1" in overflow.message
    assert explore_pair(buyer, seller, queue_bound=2).clean


def test_internal_steps_do_not_block_the_conversation():
    buyer = _definition(
        "b", "buyer",
        [("from_binding", "po"), ("send", "po"),
         ("receive", "ack"), ("to_binding", "ack")],
    )
    seller = _definition(
        "s", "seller",
        [("receive", "po"), ("to_binding", "po"),
         ("produce", "ack"), ("send", "ack")],
    )
    assert explore_pair(buyer, seller).clean


# ---------------------------------------------------------------------------
# Budgets
# ---------------------------------------------------------------------------


def test_max_states_truncation_reports_b2b505():
    buyer, seller = _deadlock_pair()
    result = explore_pair(buyer, seller, max_states=2)
    assert result.truncated
    assert result.states_explored <= 2
    assert not result.clean
    assert result.diagnostics[-1].code == "B2B505"
    assert result.diagnostics[-1].severity == "info"


def test_time_budget_zero_truncates_immediately():
    buyer, seller = _deadlock_pair()
    result = explore_pair(buyer, seller, time_budget=0.0)
    assert result.truncated
    assert [d.code for d in result.diagnostics] == ["B2B505"]


def test_invalid_bounds_are_rejected():
    buyer, seller = _deadlock_pair()
    with pytest.raises(ValueError):
        explore_pair(buyer, seller, queue_bound=0)
    with pytest.raises(ValueError):
        explore_pair(buyer, seller, max_states=0)


# ---------------------------------------------------------------------------
# Golden renderings
# ---------------------------------------------------------------------------

GOLDEN_DEADLOCK_TRACE = (
    "buyer                                seller",
    "send purchase_order  [send_po]  -->",
    "                                -->  receive purchase_order  [receive_po]",
    "state: buyer is blocked at step 'receive_invoice' (receive 'invoice'); "
    "seller is blocked at step 'receive_terms' (receive 'shipping_terms')",
    "queues: buyer->seller empty | seller->buyer empty",
)


def test_deadlock_counterexample_msc_golden():
    buyer, seller = _deadlock_pair()
    (deadlock,) = explore_pair(buyer, seller).diagnostics
    assert deadlock.trace == GOLDEN_DEADLOCK_TRACE


def test_render_text_indents_the_counterexample_golden():
    buyer, seller = _deadlock_pair()
    text = render_text(explore_pair(buyer, seller).diagnostics, title="demo")
    for line in GOLDEN_DEADLOCK_TRACE:
        assert f"      {line}" in text.splitlines()


def test_render_msc_arrow_directions():
    lines = render_msc(
        [
            (0, "send", "po", "a"),
            (1, "receive", "po", "b"),
            (1, "to_binding", "po", "c"),
            (1, "send", "ack", "d"),
            (0, "receive", "ack", "e"),
        ],
        "left",
        "right",
    )
    assert lines[0].startswith("left")
    assert lines[0].endswith("right")
    assert "-->" in lines[1] and lines[1].startswith("send po  [a]")
    assert "-->" in lines[2] and lines[2].endswith("receive po  [b]")
    assert "<--" not in lines[3]  # internal step: no arrow
    assert "<--" in lines[4] and lines[4].endswith("send ack  [d]")
    assert "<--" in lines[5] and lines[5].startswith("receive ack  [e]")


# ---------------------------------------------------------------------------
# The shipped protocols are conversation-clean
# ---------------------------------------------------------------------------


def test_every_shipped_protocol_pair_is_clean():
    for name, protocol in extended_protocols().items():
        result = explore_pair(protocol.buyer_process(), protocol.seller_process())
        assert result.clean, (name, [d.render() for d in result.diagnostics])


# ---------------------------------------------------------------------------
# Partial-order reduction
# ---------------------------------------------------------------------------


def _bursty_pair(burst):
    buyer = _definition(
        "b", "buyer",
        [("send", f"doc_{i}") for i in range(burst)]
        + [("receive", f"ret_{i}") for i in range(burst)],
    )
    seller = _definition(
        "s", "seller",
        [("send", f"ret_{i}") for i in range(burst)]
        + [("receive", f"doc_{i}") for i in range(burst)],
    )
    return buyer, seller


def test_reduction_prunes_bursty_interleavings_at_least_5x():
    buyer, seller = _bursty_pair(8)
    full = explore_pair(buyer, seller, queue_bound=8, reduce=False)
    reduced = explore_pair(buyer, seller, queue_bound=8)
    assert full.clean and reduced.clean
    assert reduced.reduced and not full.reduced
    assert reduced.states_pruned > 0
    assert full.states_explored >= 5 * reduced.states_explored


def test_reduction_keeps_clean_models_replay_free():
    buyer, seller = _bursty_pair(4)
    reduced = explore_pair(buyer, seller, queue_bound=4)
    assert reduced.clean
    assert reduced.replay_states == 0  # no defect, no counterexample replay


def test_reduction_preserves_deadlock_verdict_and_minimal_trace():
    buyer, seller = _deadlock_pair()
    full = explore_pair(buyer, seller, reduce=False)
    reduced = explore_pair(buyer, seller)
    assert [d.to_dict() for d in reduced.diagnostics] == [
        d.to_dict() for d in full.diagnostics
    ]
    assert reduced.replay_states == full.states_explored


def test_reduction_preserves_orphan_and_reception_verdicts():
    buyer = _definition(
        "b", "buyer", [("send", "po"), ("send", "note"), ("receive", "bill")]
    )
    seller = _definition("s", "seller", [("receive", "po"), ("send", "ack")])
    full = explore_pair(buyer, seller, reduce=False)
    reduced = explore_pair(buyer, seller)
    assert {d.code for d in full.diagnostics} == {
        d.code for d in reduced.diagnostics
    }
    assert [d.to_dict() for d in reduced.diagnostics] == [
        d.to_dict() for d in full.diagnostics
    ]


# ---------------------------------------------------------------------------
# Properties: termination within budget, determinism
# ---------------------------------------------------------------------------

_WIRE_STEP = st.tuples(
    st.sampled_from(["send", "receive"]),
    st.sampled_from(["po", "ack", "invoice"]),
)


@settings(max_examples=60, deadline=None)
@given(
    first=st.lists(_WIRE_STEP, min_size=1, max_size=5),
    second=st.lists(_WIRE_STEP, min_size=1, max_size=5),
    queue_bound=st.integers(min_value=1, max_value=3),
    max_states=st.integers(min_value=1, max_value=200),
)
def test_exploration_terminates_within_budget_and_is_deterministic(
    first, second, queue_bound, max_states
):
    buyer = _definition("b", "buyer", first)
    seller = _definition("s", "seller", second)
    runs = [
        explore_pair(buyer, seller, queue_bound=queue_bound, max_states=max_states)
        for _ in range(2)
    ]
    for result in runs:
        assert result.states_explored <= max_states
        if result.truncated:
            assert result.diagnostics[-1].code == "B2B505"
    assert runs[0].states_explored == runs[1].states_explored
    assert runs[0].truncated == runs[1].truncated
    assert [d.to_dict() for d in runs[0].diagnostics] == [
        d.to_dict() for d in runs[1].diagnostics
    ]


@settings(max_examples=60, deadline=None)
@given(
    first=st.lists(_WIRE_STEP, min_size=1, max_size=6),
    second=st.lists(_WIRE_STEP, min_size=1, max_size=6),
    queue_bound=st.integers(min_value=1, max_value=3),
)
def test_reduced_exploration_matches_full_bfs_verdicts(
    first, second, queue_bound
):
    """POR soundness, empirically: same codes, same minimal counterexamples.

    Budgets are generous (the default 4096-state cap dwarfs any 6+6-step
    product space), so neither pass truncates and the counterexample
    replay regenerates full-BFS traces byte for byte.
    """
    buyer = _definition("b", "buyer", first)
    seller = _definition("s", "seller", second)
    full = explore_pair(buyer, seller, queue_bound=queue_bound, reduce=False)
    reduced = explore_pair(buyer, seller, queue_bound=queue_bound)
    assert not full.truncated and not reduced.truncated
    assert reduced.states_explored <= full.states_explored
    assert reduced.clean == full.clean
    assert [d.to_dict() for d in reduced.diagnostics] == [
        d.to_dict() for d in full.diagnostics
    ]
