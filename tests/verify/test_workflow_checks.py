"""Graph and expression checks (B2B1xx / B2B2xx)."""

from repro.documents.normalized import schema_for
from repro.verify import verify_workflow
from repro.workflow.definitions import WorkflowBuilder


def codes(diagnostics):
    return sorted(d.code for d in diagnostics)


def test_clean_linear_workflow_has_no_diagnostics():
    workflow = (
        WorkflowBuilder("clean")
        .activity("a", "noop")
        .activity("b", "noop", after="a")
        .build()
    )
    assert verify_workflow(workflow) == []


def test_b2b101_unreachable_step():
    # a step with no incoming arcs counts as a start step, so true
    # unreachability needs a dead edge as the only way in
    workflow = (
        WorkflowBuilder("unreachable")
        .activity("a", "noop")
        .activity("b", "noop")
        .link("a", "b", condition="1 > 2")
        .build()
    )
    diagnostics = verify_workflow(workflow)
    assert "B2B101" in codes(diagnostics)
    unreachable = [d for d in diagnostics if d.code == "B2B101"]
    assert any("step:b" in d.location for d in unreachable)


def test_b2b102_all_outgoing_transitions_dead():
    workflow = (
        WorkflowBuilder("stuck")
        .activity("a", "noop")
        .activity("b", "noop")
        .link("a", "b", condition="False")
        .build()
    )
    diagnostics = verify_workflow(workflow)
    sinks = [d for d in diagnostics if d.code == "B2B102"]
    assert len(sinks) == 1
    assert "step:a" in sinks[0].location


def test_b2b103_xor_fanout_without_otherwise():
    workflow = (
        WorkflowBuilder("fanout")
        .variable("amount", 0)
        .activity("decide", "noop")
        .activity("high", "noop")
        .activity("low", "noop")
        .link("decide", "high", condition="amount > 100")
        .link("decide", "low", condition="amount <= 100")
        .build()
    )
    diagnostics = verify_workflow(workflow)
    assert codes(diagnostics) == ["B2B103"]
    assert "step:decide" in diagnostics[0].location


def test_b2b103_suppressed_by_otherwise():
    workflow = (
        WorkflowBuilder("fanout-ok")
        .variable("amount", 0)
        .activity("decide", "noop")
        .activity("high", "noop")
        .activity("low", "noop")
        .link("decide", "high", condition="amount > 100")
        .link("decide", "low", otherwise=True)
        .build()
    )
    assert verify_workflow(workflow) == []


def test_b2b103_suppressed_by_always_true_sibling():
    workflow = (
        WorkflowBuilder("fanout-true")
        .variable("amount", 0)
        .activity("decide", "noop")
        .activity("high", "noop")
        .activity("low", "noop")
        .link("decide", "high", condition="amount > 100")
        .link("decide", "low", condition="1 == 1")
        .build()
    )
    found = codes(verify_workflow(workflow))
    assert "B2B103" not in found
    assert "B2B105" in found  # the constant-True arc is still reported


def test_b2b104_constant_false_condition():
    workflow = (
        WorkflowBuilder("deadarc")
        .activity("a", "noop")
        .activity("b", "noop")
        .activity("c", "noop")
        .link("a", "b", condition="2 < 1")
        .link("a", "c")
        .build()
    )
    diagnostics = verify_workflow(workflow)
    dead = [d for d in diagnostics if d.code == "B2B104"]
    assert len(dead) == 1
    assert "transition[0]" in dead[0].location


def test_b2b105_constant_true_condition():
    workflow = (
        WorkflowBuilder("truearc")
        .activity("a", "noop")
        .activity("b", "noop")
        .activity("c", "noop")
        .link("a", "b", condition="len('x') == 1")
        .link("a", "c", otherwise=True)
        .build()
    )
    diagnostics = verify_workflow(workflow)
    shadows = [d for d in diagnostics if d.code == "B2B105"]
    assert len(shadows) == 1
    assert "shadows" in shadows[0].message


def test_b2b201_undeclared_variable_in_condition():
    workflow = (
        WorkflowBuilder("undeclared")
        .activity("a", "noop")
        .activity("b", "noop")
        .link("a", "b", condition="mystery > 5")
        .link("a", "b", otherwise=True)
        .build()
    )
    diagnostics = verify_workflow(workflow)
    undeclared = [d for d in diagnostics if d.code == "B2B201"]
    assert len(undeclared) == 1
    assert "'mystery'" in undeclared[0].message


def test_b2b201_step_outputs_declare_variables():
    workflow = (
        WorkflowBuilder("outputs")
        .activity("a", "noop", outputs={"result": "value"})
        .activity("b", "noop")
        .link("a", "b", condition="result > 5")
        .link("a", "b", otherwise=True)
        .build()
    )
    assert verify_workflow(workflow) == []


def test_b2b201_checks_step_inputs_and_loop_conditions():
    workflow = (
        WorkflowBuilder("inputs")
        .activity("a", "noop", inputs={"x": "ghost + 1"})
        .build()
    )
    diagnostics = verify_workflow(workflow)
    assert codes(diagnostics) == ["B2B201"]
    assert "input:x" in diagnostics[0].location

    workflow = (
        WorkflowBuilder("looped")
        .activity("a", "noop")
        .loop("more", body="child-flow", condition="pending > 0", after="a")
        .build()
    )
    diagnostics = verify_workflow(workflow)
    assert codes(diagnostics) == ["B2B201"]
    assert "step:more/condition" in diagnostics[0].location


def test_b2b202_unknown_document_path():
    schemas = {"document": schema_for("purchase_order")}
    workflow = (
        WorkflowBuilder("docpath")
        .variable("document")
        .activity("a", "noop")
        .activity("b", "noop")
        .link("a", "b", condition="document.header.no_such_field == 'x'")
        .link("a", "b", otherwise=True)
        .build()
    )
    diagnostics = verify_workflow(workflow, schemas=schemas)
    assert codes(diagnostics) == ["B2B202"]
    assert "no_such_field" in diagnostics[0].message


def test_b2b202_known_paths_and_amount_alias_pass():
    schemas = {"document": schema_for("purchase_order")}
    workflow = (
        WorkflowBuilder("docpath-ok")
        .variable("document")
        .activity("a", "noop")
        .activity("b", "noop")
        .link("a", "b", condition="document.amount > 10000")
        .link("a", "b", otherwise=True)
        .build()
    )
    assert verify_workflow(workflow, schemas=schemas) == []


def test_b2b202_derived_from_doc_types_metadata():
    workflow = (
        WorkflowBuilder("docpath-meta")
        .variable("document")
        .activity("a", "noop")
        .activity("b", "noop")
        .link("a", "b", condition="document.bogus.path == 1")
        .link("a", "b", otherwise=True)
        .meta(doc_types=["purchase_order"])
        .build()
    )
    diagnostics = verify_workflow(workflow)
    assert codes(diagnostics) == ["B2B202"]


def test_location_prefix_is_applied():
    workflow = (
        WorkflowBuilder("prefixed")
        .activity("a", "noop")
        .activity("b", "noop")
        .link("a", "b", condition="False")
        .build()
    )
    diagnostics = verify_workflow(workflow, location_prefix="model:X/private:p")
    assert all(d.location.startswith("model:X/private:p/") for d in diagnostics)
