"""Tests for the activity registry and built-in activities."""

import pytest

from repro.errors import ActivityError
from repro.workflow.activities import (
    ActivityContext,
    ActivityRegistry,
    Waiting,
    built_in_registry,
)


def _context(**overrides):
    defaults = dict(instance_id="I1", step_id="s1")
    defaults.update(overrides)
    return ActivityContext(**defaults)


class TestRegistry:
    def test_register_and_invoke(self):
        registry = ActivityRegistry()
        registry.register("double", lambda ctx: {"y": ctx.inputs["x"] * 2})
        result = registry.invoke("double", _context(inputs={"x": 4}))
        assert result == {"y": 8}

    def test_duplicate_name_rejected(self):
        registry = ActivityRegistry()
        registry.register("a", lambda ctx: {})
        with pytest.raises(ActivityError):
            registry.register("a", lambda ctx: {})

    def test_replace_flag(self):
        registry = ActivityRegistry()
        registry.register("a", lambda ctx: {"v": 1})
        registry.register("a", lambda ctx: {"v": 2}, replace=True)
        assert registry.invoke("a", _context()) == {"v": 2}

    def test_missing_activity_raises(self):
        with pytest.raises(ActivityError):
            ActivityRegistry().get("ghost")

    def test_none_result_normalized(self):
        registry = ActivityRegistry()
        registry.register("nothing", lambda ctx: None)
        assert registry.invoke("nothing", _context()) == {}

    def test_waiting_passed_through(self):
        registry = ActivityRegistry()
        registry.register("park", lambda ctx: Waiting("KEY"))
        result = registry.invoke("park", _context())
        assert isinstance(result, Waiting) and result.wait_key == "KEY"

    def test_bad_return_type_rejected(self):
        registry = ActivityRegistry()
        registry.register("bad", lambda ctx: 42)
        with pytest.raises(ActivityError):
            registry.invoke("bad", _context())

    def test_implementation_error_wrapped_with_site(self):
        registry = ActivityRegistry()

        def boom(ctx):
            raise ValueError("kaput")

        registry.register("boom", boom)
        with pytest.raises(ActivityError) as excinfo:
            registry.invoke("boom", _context())
        assert "I1/s1" in str(excinfo.value)
        assert "kaput" in str(excinfo.value)

    def test_names_sorted(self):
        registry = ActivityRegistry()
        registry.register_many({"b": lambda c: {}, "a": lambda c: {}})
        assert registry.names() == ["a", "b"]


class TestContext:
    def test_service_lookup(self):
        context = _context(services={"worklist": "WL"})
        assert context.service("worklist") == "WL"

    def test_missing_service_raises_with_hint(self):
        with pytest.raises(ActivityError) as excinfo:
            _context().service("rules")
        assert "rules" in str(excinfo.value)

    def test_default_wait_key(self):
        assert _context().default_wait_key() == "I1/s1"


class TestBuiltIns:
    def test_noop(self):
        assert built_in_registry().invoke("noop", _context()) == {}

    def test_set_variables_echoes_inputs(self):
        registry = built_in_registry()
        result = registry.invoke("set_variables", _context(inputs={"a": 1}))
        assert result == {"a": 1}

    def test_wait_for_event_uses_param_key(self):
        registry = built_in_registry()
        result = registry.invoke(
            "wait_for_event", _context(params={"wait_key": "K9"})
        )
        assert isinstance(result, Waiting) and result.wait_key == "K9"

    def test_fail_raises(self):
        registry = built_in_registry()
        with pytest.raises(ActivityError) as excinfo:
            registry.invoke("fail", _context(params={"message": "injected"}))
        assert "injected" in str(excinfo.value)
