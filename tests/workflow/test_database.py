"""Tests for the workflow database (Figure 4) and replication."""

import pytest

from repro.errors import PersistenceError
from repro.workflow.database import ReplicatedDatabase, WorkflowDatabase
from repro.workflow.definitions import WorkflowBuilder
from repro.workflow.instance import INSTANCE_COMPLETED, WorkflowInstance


def _type(name="wf", version="1"):
    return WorkflowBuilder(name, version=version).activity("a", "noop").build()


def _instance(instance_id="I1"):
    return WorkflowInstance(instance_id, "wf", "1", ["a"])


class TestTypes:
    def test_store_and_load(self):
        db = WorkflowDatabase()
        db.store_type(_type())
        loaded = db.load_type("wf", "1")
        assert loaded.name == "wf"
        assert db.type_loads == 1 and db.type_stores == 1

    def test_load_returns_independent_copy(self):
        db = WorkflowDatabase()
        db.store_type(_type())
        first = db.load_type("wf")
        second = db.load_type("wf")
        assert first is not second
        first.metadata["mutated"] = True
        assert "mutated" not in db.load_type("wf").metadata

    def test_latest_version_resolution(self):
        db = WorkflowDatabase()
        db.store_type(_type(version="1"))
        db.store_type(_type(version="2"))
        db.store_type(_type(version="10"))
        assert db.load_type("wf").version == "10"  # numeric, not lexicographic

    def test_has_type(self):
        db = WorkflowDatabase()
        db.store_type(_type(version="2"))
        assert db.has_type("wf")
        assert db.has_type("wf", "2")
        assert not db.has_type("wf", "1")
        assert not db.has_type("other")

    def test_missing_type_raises(self):
        with pytest.raises(PersistenceError):
            WorkflowDatabase().load_type("ghost")

    def test_delete_type(self):
        db = WorkflowDatabase()
        db.store_type(_type())
        db.delete_type("wf", "1")
        assert not db.has_type("wf")
        with pytest.raises(PersistenceError):
            db.delete_type("wf", "1")

    def test_list_types(self):
        db = WorkflowDatabase()
        db.store_type(_type("a"))
        db.store_type(_type("b"))
        assert sorted(t.name for t in db.list_types()) == ["a", "b"]


class TestInstances:
    def test_store_and_load(self):
        db = WorkflowDatabase()
        db.store_instance(_instance())
        assert db.load_instance("I1").instance_id == "I1"
        assert db.instance_count() == 1

    def test_load_is_a_snapshot(self):
        db = WorkflowDatabase()
        db.store_instance(_instance())
        loaded = db.load_instance("I1")
        loaded.variables["leak"] = True
        assert "leak" not in db.load_instance("I1").variables

    def test_store_overwrites(self):
        db = WorkflowDatabase()
        instance = _instance()
        db.store_instance(instance)
        instance.status = INSTANCE_COMPLETED
        db.store_instance(instance)
        assert db.load_instance("I1").status == INSTANCE_COMPLETED

    def test_missing_instance_raises(self):
        with pytest.raises(PersistenceError):
            WorkflowDatabase().load_instance("ghost")

    def test_list_instances_by_status(self):
        db = WorkflowDatabase()
        first = _instance("I1")
        second = _instance("I2")
        second.status = INSTANCE_COMPLETED
        db.store_instance(first)
        db.store_instance(second)
        assert len(db.list_instances()) == 2
        assert [i.instance_id for i in db.list_instances(INSTANCE_COMPLETED)] == ["I2"]

    def test_delete_instance(self):
        db = WorkflowDatabase()
        db.store_instance(_instance())
        db.delete_instance("I1")
        assert not db.has_instance("I1")


class TestDurability:
    def test_snapshot_restore_roundtrip(self):
        db = WorkflowDatabase("primary")
        db.store_type(_type())
        db.store_instance(_instance())
        restored = WorkflowDatabase.restore(db.snapshot())
        assert restored.name == "primary"
        assert restored.has_type("wf", "1")
        assert restored.load_instance("I1").instance_id == "I1"

    def test_corrupt_snapshot_rejected(self):
        with pytest.raises(PersistenceError):
            WorkflowDatabase.restore("{not json")
        with pytest.raises(PersistenceError):
            WorkflowDatabase.restore('{"missing": "keys"}')


class TestReplication:
    def test_write_through(self):
        replica_a, replica_b = WorkflowDatabase("a"), WorkflowDatabase("b")
        primary = ReplicatedDatabase("primary", [replica_a, replica_b])
        primary.store_type(_type())
        primary.store_instance(_instance())
        for replica in (replica_a, replica_b):
            assert replica.has_type("wf", "1")
            assert replica.has_instance("I1")

    def test_delete_propagates(self):
        replica = WorkflowDatabase("a")
        primary = ReplicatedDatabase("primary", [replica])
        primary.store_instance(_instance())
        primary.delete_instance("I1")
        assert not replica.has_instance("I1")

    def test_replicas_stay_consistent_after_update(self):
        replica = WorkflowDatabase("a")
        primary = ReplicatedDatabase("primary", [replica])
        instance = _instance()
        primary.store_instance(instance)
        instance.status = INSTANCE_COMPLETED
        primary.store_instance(instance)
        assert replica.load_instance("I1").status == INSTANCE_COMPLETED
