"""Tests for workflow type definitions and the builder."""

import pytest

from repro.errors import DefinitionError
from repro.workflow.definitions import (
    ActivityStep,
    LoopStep,
    RemoteSubworkflowStep,
    SubworkflowStep,
    Transition,
    WorkflowBuilder,
    WorkflowType,
)


def _linear(name="wf"):
    return (
        WorkflowBuilder(name)
        .activity("a", "noop")
        .activity("b", "noop", after="a")
        .activity("c", "noop", after="b")
        .build()
    )


class TestStepValidation:
    def test_activity_requires_name(self):
        with pytest.raises(DefinitionError):
            ActivityStep(step_id="s").validate()

    def test_activity_inputs_must_compile(self):
        from repro.errors import WorkflowError

        step = ActivityStep(step_id="s", activity="noop", inputs={"x": "lambda: 1"})
        with pytest.raises(WorkflowError):  # ExpressionError is a WorkflowError
            step.validate()

    def test_bad_join_rejected(self):
        step = ActivityStep(step_id="s", activity="noop", join="OR")
        with pytest.raises(DefinitionError):
            step.validate()

    def test_subworkflow_requires_target(self):
        with pytest.raises(DefinitionError):
            SubworkflowStep(step_id="s").validate()

    def test_remote_requires_engine(self):
        with pytest.raises(DefinitionError):
            RemoteSubworkflowStep(step_id="s", subworkflow="w").validate()

    def test_loop_validation(self):
        with pytest.raises(DefinitionError):
            LoopStep(step_id="s", body="b", mode="forever").validate()
        with pytest.raises(DefinitionError):
            LoopStep(step_id="s", body="b", max_iterations=0).validate()
        LoopStep(step_id="s", body="b", condition="i < 3").validate()


class TestTransition:
    def test_condition_compiles_at_construction(self):
        from repro.errors import WorkflowError

        with pytest.raises(WorkflowError):  # ExpressionError is a WorkflowError
            Transition("a", "b", condition="import os")

    def test_condition_and_otherwise_exclusive(self):
        with pytest.raises(DefinitionError):
            Transition("a", "b", condition="x > 1", otherwise=True)


class TestTypeValidation:
    def test_duplicate_step_id_rejected(self):
        with pytest.raises(DefinitionError):
            WorkflowType(
                "wf",
                [ActivityStep(step_id="a", activity="noop"),
                 ActivityStep(step_id="a", activity="noop")],
            )

    def test_empty_type_rejected(self):
        with pytest.raises(DefinitionError):
            WorkflowType("wf", [])

    def test_unknown_transition_endpoint_rejected(self):
        with pytest.raises(DefinitionError):
            WorkflowType(
                "wf",
                [ActivityStep(step_id="a", activity="noop")],
                [Transition("a", "ghost")],
            )

    def test_cycles_rejected_with_path(self):
        with pytest.raises(DefinitionError) as excinfo:
            WorkflowType(
                "wf",
                [ActivityStep(step_id="a", activity="noop"),
                 ActivityStep(step_id="b", activity="noop")],
                [Transition("a", "b"), Transition("b", "a")],
            )
        assert "cycle" in str(excinfo.value)
        assert "LoopStep" in str(excinfo.value)

    def test_no_start_step_rejected(self):
        # A pure cycle has no start; already rejected as a cycle, so build
        # an otherwise-valid graph and check start detection directly.
        workflow = _linear()
        assert [s.step_id for s in workflow.start_steps()] == ["a"]

    def test_multiple_otherwise_rejected(self):
        with pytest.raises(DefinitionError):
            WorkflowType(
                "wf",
                [ActivityStep(step_id="a", activity="noop"),
                 ActivityStep(step_id="b", activity="noop"),
                 ActivityStep(step_id="c", activity="noop")],
                [
                    Transition("a", "b", condition="True"),
                    Transition("a", "b", otherwise=True),
                    Transition("a", "c", otherwise=True),
                ],
            )

    def test_otherwise_needs_conditioned_sibling(self):
        with pytest.raises(DefinitionError):
            WorkflowType(
                "wf",
                [ActivityStep(step_id="a", activity="noop"),
                 ActivityStep(step_id="b", activity="noop")],
                [Transition("a", "b", otherwise=True)],
            )


class TestTopologyQueries:
    def test_incoming_outgoing(self):
        workflow = _linear()
        assert [t.target for t in workflow.outgoing("a")] == ["b"]
        assert [t.source for t in workflow.incoming("c")] == ["b"]

    def test_unknown_step_raises(self):
        with pytest.raises(DefinitionError):
            _linear().step("ghost")

    def test_counts(self):
        builder = WorkflowBuilder("wf")
        builder.activity("a", "noop")
        builder.activity("b", "noop", tags=("transformation",))
        builder.activity("c", "noop")
        builder.link("a", "b", condition="x > 1")
        builder.link("a", "c", otherwise=True)
        workflow = builder.build()
        assert workflow.step_count() == 3
        assert workflow.transition_count() == 2
        assert workflow.condition_count() == 1
        assert [s.step_id for s in workflow.steps_tagged("transformation")] == ["b"]


class TestSerialization:
    def test_roundtrip_preserves_structure(self):
        builder = WorkflowBuilder("wf", version="3", owner="acme")
        builder.variable("x", 0)
        builder.activity("a", "noop", params={"k": 1}, tags=("receive",))
        builder.subworkflow("s", "child", inputs={"y": "x"}, after="a")
        builder.loop("l", "body", condition="x < 5", after="s")
        builder.meta(private=True)
        original = builder.build()
        restored = WorkflowType.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()
        assert restored.version == "3"
        assert restored.owner == "acme"
        assert isinstance(restored.step("s"), SubworkflowStep)
        assert isinstance(restored.step("l"), LoopStep)

    def test_remote_step_roundtrip(self):
        step = RemoteSubworkflowStep(
            step_id="r", subworkflow="w", engine="e", inputs={"a": "b"}
        )
        workflow = WorkflowType("wf", [step])
        restored = WorkflowType.from_dict(workflow.to_dict())
        remote = restored.step("r")
        assert isinstance(remote, RemoteSubworkflowStep)
        assert remote.engine == "e"

    def test_unknown_kind_rejected(self):
        payload = _linear().to_dict()
        payload["steps"][0]["kind"] = "quantum"
        with pytest.raises(DefinitionError):
            WorkflowType.from_dict(payload)


class TestBuilder:
    def test_prev_chaining(self):
        workflow = (
            WorkflowBuilder("wf")
            .activity("a", "noop")
            .activity("b", "noop", after="<prev>")
            .build()
        )
        assert [t.source for t in workflow.incoming("b")] == ["a"]

    def test_variables_and_metadata(self):
        workflow = (
            WorkflowBuilder("wf")
            .variable("x", 42)
            .meta(kind="demo")
            .activity("a", "noop")
            .build()
        )
        assert workflow.variables == {"x": 42}
        assert workflow.metadata == {"kind": "demo"}
