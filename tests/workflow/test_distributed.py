"""Tests for distributed workflow management (Figures 5 and 6)."""

import pytest

from repro.errors import MigrationError
from repro.workflow.definitions import RemoteSubworkflowStep, WorkflowBuilder, WorkflowType
from repro.workflow.distributed import (
    EngineDirectory,
    migrate_instance,
    type_closure,
)
from repro.workflow.engine import WorkflowEngine
from repro.workflow.instance import INSTANCE_COMPLETED, INSTANCE_MIGRATED


def _waiting_type(name="wf", key="EVT"):
    builder = WorkflowBuilder(name, owner="alpha-corp")
    builder.activity("before", "noop")
    builder.activity("wait", "wait_for_event", params={"wait_key": key}, after="before")
    builder.activity("after", "noop", after="wait")
    return builder.build()


class TestEngineDirectory:
    def test_register_and_get(self):
        directory = EngineDirectory()
        engine = directory.register(WorkflowEngine("one"))
        assert directory.get("one") is engine
        assert engine.services["engine_directory"] is directory

    def test_duplicate_rejected(self):
        directory = EngineDirectory()
        directory.register(WorkflowEngine("one"))
        with pytest.raises(MigrationError):
            directory.register(WorkflowEngine("one"))

    def test_unknown_engine_raises(self):
        with pytest.raises(MigrationError):
            EngineDirectory().get("ghost")


class TestTypeClosure:
    def test_includes_subworkflow_types_recursively(self):
        engine = WorkflowEngine("e")
        leaf = WorkflowBuilder("leaf").activity("a", "noop").build()
        middle = WorkflowBuilder("middle")
        middle.subworkflow("call", "leaf")
        top = WorkflowBuilder("top")
        top.subworkflow("call", "middle")
        engine.deploy_all([leaf, middle.build(), top.build()])
        names = {t.name for t in type_closure(engine, "top")}
        assert names == {"top", "middle", "leaf"}

    def test_excludes_remote_subworkflows(self):
        engine = WorkflowEngine("e")
        top = WorkflowType(
            "top",
            [RemoteSubworkflowStep(step_id="r", subworkflow="foreign", engine="other")],
        )
        engine.deploy(top)
        names = {t.name for t in type_closure(engine, "top")}
        assert names == {"top"}

    def test_includes_loop_bodies(self):
        engine = WorkflowEngine("e")
        body = WorkflowBuilder("body").activity("a", "noop").build()
        top = WorkflowBuilder("top")
        top.loop("l", "body", condition="False")
        engine.deploy_all([body, top.build()])
        names = {t.name for t in type_closure(engine, "top")}
        assert names == {"top", "body"}


class TestMigration:
    def test_figure6_protocol_cold_target(self):
        """Target lacks the type: check (1) + send type (1) + instance (1)."""
        source, target = WorkflowEngine("src"), WorkflowEngine("dst")
        source.deploy(_waiting_type())
        instance_id = source.create_instance("wf")
        source.start(instance_id)
        report = migrate_instance(source, target, instance_id)
        assert report.type_checks == 1
        assert report.types_sent == 1
        assert report.instances_sent == 1
        assert report.messages_exchanged == 3

    def test_figure6_protocol_warm_target(self):
        """Target already holds the type: no type transfer."""
        source, target = WorkflowEngine("src"), WorkflowEngine("dst")
        workflow = _waiting_type()
        source.deploy(workflow)
        target.deploy(workflow)
        instance_id = source.create_instance("wf")
        source.start(instance_id)
        report = migrate_instance(source, target, instance_id)
        assert report.types_sent == 0
        assert report.messages_exchanged == 2

    def test_instance_continues_on_target(self):
        source, target = WorkflowEngine("src"), WorkflowEngine("dst")
        source.deploy(_waiting_type())
        instance_id = source.create_instance("wf")
        source.start(instance_id)
        migrate_instance(source, target, instance_id)
        instance = target.complete_waiting_step("EVT", {})
        assert instance.status == INSTANCE_COMPLETED

    def test_source_keeps_migrated_tombstone(self):
        source, target = WorkflowEngine("src"), WorkflowEngine("dst")
        source.deploy(_waiting_type())
        instance_id = source.create_instance("wf")
        source.start(instance_id)
        migrate_instance(source, target, instance_id)
        assert source.get_instance(instance_id).status == INSTANCE_MIGRATED
        assert not source.has_waiting("EVT")
        assert target.has_waiting("EVT")

    def test_double_migration_rejected(self):
        source, target = WorkflowEngine("src"), WorkflowEngine("dst")
        source.deploy(_waiting_type())
        instance_id = source.create_instance("wf")
        source.start(instance_id)
        migrate_instance(source, target, instance_id)
        with pytest.raises(MigrationError):
            migrate_instance(source, target, instance_id)

    def test_migration_carries_waiting_children(self):
        source, target = WorkflowEngine("src"), WorkflowEngine("dst")
        child = _waiting_type("child", key="CHILD-EVT")
        parent_builder = WorkflowBuilder("parent", owner="alpha-corp")
        parent_builder.subworkflow("call", "child")
        source.deploy_all([child, parent_builder.build()])
        parent_id = source.create_instance("parent")
        source.start(parent_id)
        report = migrate_instance(source, target, parent_id)
        assert report.instances_sent == 2  # parent + waiting child
        instance = target.complete_waiting_step("CHILD-EVT", {})
        assert instance.status == INSTANCE_COMPLETED
        assert target.get_instance(parent_id).status == INSTANCE_COMPLETED

    def test_roundtrip_migration(self):
        source, target = WorkflowEngine("src"), WorkflowEngine("dst")
        builder = WorkflowBuilder("wf")
        builder.activity("w1", "wait_for_event", params={"wait_key": "K1"})
        builder.activity("w2", "wait_for_event", params={"wait_key": "K2"}, after="w1")
        source.deploy(builder.build())
        instance_id = source.create_instance("wf")
        source.start(instance_id)
        migrate_instance(source, target, instance_id)
        target.complete_waiting_step("K1", {})
        migrate_instance(target, source, instance_id)
        instance = source.complete_waiting_step("K2", {})
        assert instance.status == INSTANCE_COMPLETED


class TestDistribution:
    """Figure 5(b): remote subworkflows — interface crosses, definition
    does not."""

    def _pair(self):
        directory = EngineDirectory()
        master = directory.register(WorkflowEngine("master"))
        slave = directory.register(WorkflowEngine("slave"))
        return directory, master, slave

    def test_remote_subworkflow_executes_on_slave(self):
        _, master, slave = self._pair()
        child = WorkflowBuilder("child")
        child.variable("x", 0)
        child.activity("calc", "set_variables", inputs={"y": "x + 1"}, outputs={"y": "y"})
        slave.deploy(child.build())
        parent = WorkflowBuilder("parent")
        parent.variable("v", 9)
        parent._steps.append(
            RemoteSubworkflowStep(step_id="r", subworkflow="child", engine="slave",
                                  inputs={"x": "v"}, outputs={"res": "y"})
        )
        master.deploy(parent.build())
        instance = master.run("parent")
        assert instance.variables["res"] == 10
        # the child ran on the slave...
        assert slave.instances_completed == 1
        # ...and its definition never reached the master (Section 2.1).
        assert not master.database.has_type("child")

    def test_remote_child_waiting_resumes_master(self):
        _, master, slave = self._pair()
        child = _waiting_type("child", key="REMOTE-EVT")
        slave.deploy(child)
        parent = WorkflowBuilder("parent")
        parent._steps.append(
            RemoteSubworkflowStep(step_id="r", subworkflow="child", engine="slave")
        )
        parent.activity("done", "noop")
        parent._transitions.append(
            __import__("repro.workflow.definitions", fromlist=["Transition"]).Transition("r", "done")
        )
        master.deploy(parent.build())
        master_id = master.create_instance("parent")
        master.start(master_id)
        assert master.get_instance(master_id).status != INSTANCE_COMPLETED
        slave.complete_waiting_step("REMOTE-EVT", {})
        assert master.get_instance(master_id).status == INSTANCE_COMPLETED

    def test_missing_directory_service_is_an_error(self):
        lone = WorkflowEngine("lone")
        parent = WorkflowType(
            "parent",
            [RemoteSubworkflowStep(step_id="r", subworkflow="child", engine="slave")],
        )
        lone.deploy(parent)
        from repro.errors import ActivityError

        with pytest.raises(ActivityError):
            lone.run("parent")
