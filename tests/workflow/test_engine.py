"""Tests for the workflow engine interpreter.

Covers the control-flow semantics the paper's arguments rest on: XOR
branching with dead-path elimination, parallel split/join, subworkflow
"return only when finished" semantics (Section 3.1), loops, waiting steps,
failure handling, and the persist-advance-persist database contract.
"""

import pytest

from repro.errors import ActivityError, InstanceError
from repro.workflow.activities import built_in_registry
from repro.workflow.definitions import WorkflowBuilder
from repro.workflow.engine import WorkflowEngine
from repro.workflow.instance import (
    INSTANCE_COMPLETED,
    INSTANCE_FAILED,
    INSTANCE_WAITING,
    STEP_COMPLETED,
    STEP_SKIPPED,
)


@pytest.fixture
def engine():
    return WorkflowEngine("test")


def _deploy(engine, builder):
    workflow = builder.build()
    engine.deploy(workflow)
    return workflow


class TestSequences:
    def test_linear_execution_order(self, engine):
        trace = []
        engine.activities.register("trace", lambda ctx: trace.append(ctx.step_id) or {})
        builder = WorkflowBuilder("wf")
        builder.activity("a", "trace").activity("b", "trace", after="a")
        builder.activity("c", "trace", after="b")
        _deploy(engine, builder)
        instance = engine.run("wf")
        assert instance.status == INSTANCE_COMPLETED
        assert trace == ["a", "b", "c"]

    def test_data_flows_through_variables(self, engine):
        builder = WorkflowBuilder("wf")
        builder.variable("x", 3)
        builder.activity("double", "set_variables", inputs={"y": "x * 2"},
                         outputs={"y": "y"})
        builder.activity("add", "set_variables", inputs={"z": "y + 1"},
                         outputs={"z": "z"}, after="double")
        _deploy(engine, builder)
        instance = engine.run("wf")
        assert instance.variables["z"] == 7

    def test_run_overrides_defaults(self, engine):
        builder = WorkflowBuilder("wf")
        builder.variable("x", 1)
        builder.activity("id", "set_variables", inputs={"out": "x"}, outputs={"out": "out"})
        _deploy(engine, builder)
        assert engine.run("wf", {"x": 42}).variables["out"] == 42

    def test_promised_output_missing_fails(self, engine):
        builder = WorkflowBuilder("wf")
        builder.activity("a", "noop", outputs={"x": "not_returned"})
        _deploy(engine, builder)
        with pytest.raises(ActivityError):
            engine.run("wf")

    def test_history_records_lifecycle(self, engine):
        builder = WorkflowBuilder("wf")
        builder.activity("a", "noop")
        _deploy(engine, builder)
        instance = engine.run("wf")
        events = [entry["event"] for entry in instance.history]
        assert events[0] == "created"
        assert "started" in events and "completed" in events
        assert "step_completed" in events


class TestBranching:
    def _approval_builder(self):
        builder = WorkflowBuilder("wf")
        builder.variable("amount", 0)
        builder.activity("start", "noop")
        builder.activity("approve", "noop")
        builder.activity("end", "noop", join="XOR")
        builder.link("start", "approve", condition="amount > 10000")
        builder.link("start", "end", otherwise=True)
        builder.link("approve", "end")
        return builder

    def test_condition_true_takes_branch(self, engine):
        _deploy(engine, self._approval_builder())
        instance = engine.run("wf", {"amount": 20000})
        assert instance.step_state("approve").status == STEP_COMPLETED

    def test_condition_false_skips_branch(self, engine):
        _deploy(engine, self._approval_builder())
        instance = engine.run("wf", {"amount": 5})
        assert instance.step_state("approve").status == STEP_SKIPPED
        assert instance.status == INSTANCE_COMPLETED

    def test_skip_is_recorded_in_history(self, engine):
        _deploy(engine, self._approval_builder())
        instance = engine.run("wf", {"amount": 5})
        assert any(e["step_id"] == "approve" for e in instance.events("step_skipped"))

    def test_multiway_xor(self, engine):
        builder = WorkflowBuilder("wf")
        builder.variable("route", "")
        builder.activity("start", "noop")
        for target in ("a", "b", "c"):
            builder.activity(target, "noop")
            builder.link("start", target, condition=f"route == '{target}'")
        builder.activity("end", "noop", join="XOR")
        for target in ("a", "b", "c"):
            builder.link(target, "end")
        _deploy(engine, builder)
        instance = engine.run("wf", {"route": "b"})
        assert instance.step_state("b").status == STEP_COMPLETED
        assert instance.step_state("a").status == STEP_SKIPPED
        assert instance.step_state("c").status == STEP_SKIPPED

    def test_dead_path_propagates_through_chains(self, engine):
        builder = WorkflowBuilder("wf")
        builder.variable("go", False)
        builder.activity("start", "noop")
        builder.activity("x1", "noop")
        builder.activity("x2", "noop", after="x1")
        builder.activity("end", "noop", join="XOR")
        builder.link("start", "x1", condition="go == True")
        builder.link("start", "end", otherwise=True)
        builder.link("x2", "end")
        _deploy(engine, builder)
        instance = engine.run("wf", {"go": False})
        assert instance.step_state("x1").status == STEP_SKIPPED
        assert instance.step_state("x2").status == STEP_SKIPPED
        assert instance.status == INSTANCE_COMPLETED


class TestParallelism:
    def test_and_split_and_join(self, engine):
        executed = []
        engine.activities.register("trace", lambda ctx: executed.append(ctx.step_id) or {})
        builder = WorkflowBuilder("wf")
        builder.activity("split", "trace")
        for branch in ("p1", "p2", "p3"):
            builder.activity(branch, "trace")
            builder.link("split", branch)
        builder.activity("join", "trace")
        for branch in ("p1", "p2", "p3"):
            builder.link(branch, "join")
        _deploy(engine, builder)
        instance = engine.run("wf")
        assert instance.status == INSTANCE_COMPLETED
        assert executed[0] == "split" and executed[-1] == "join"
        assert set(executed[1:4]) == {"p1", "p2", "p3"}

    def test_and_join_with_dead_branch_skips(self, engine):
        # AND join where one incoming arc is dead: the join cannot fire.
        builder = WorkflowBuilder("wf")
        builder.variable("go", False)
        builder.activity("start", "noop")
        builder.activity("live", "noop")
        builder.activity("guarded", "noop")
        builder.activity("join", "noop")  # AND join (default)
        builder.link("start", "live")
        builder.link("start", "guarded", condition="go == True")
        builder.link("live", "join")
        builder.link("guarded", "join")
        _deploy(engine, builder)
        instance = engine.run("wf", {"go": False})
        assert instance.step_state("join").status == STEP_SKIPPED


class TestSubworkflows:
    def test_child_outputs_mapped_to_parent(self, engine):
        child = WorkflowBuilder("child")
        child.variable("x", 0)
        child.activity("calc", "set_variables", inputs={"y": "x * 2"}, outputs={"y": "y"})
        _deploy(engine, child)
        parent = WorkflowBuilder("parent")
        parent.variable("val", 21)
        parent.subworkflow("call", "child", inputs={"x": "val"}, outputs={"res": "y"})
        _deploy(engine, parent)
        instance = engine.run("parent")
        assert instance.variables["res"] == 42

    def test_child_instance_persisted_with_parent_links(self, engine):
        child = WorkflowBuilder("child")
        child.activity("a", "noop")
        _deploy(engine, child)
        parent = WorkflowBuilder("parent")
        parent.subworkflow("call", "child")
        _deploy(engine, parent)
        parent_instance = engine.run("parent")
        child_id = parent_instance.step_state("call").child_instance_id
        child_instance = engine.get_instance(child_id)
        assert child_instance.parent_instance_id == parent_instance.instance_id
        assert child_instance.parent_step_id == "call"
        assert child_instance.status == INSTANCE_COMPLETED

    def test_nested_subworkflows(self, engine):
        leaf = WorkflowBuilder("leaf")
        leaf.variable("n", 0)
        leaf.activity("inc", "set_variables", inputs={"n": "n + 1"}, outputs={"n": "n"})
        _deploy(engine, leaf)
        middle = WorkflowBuilder("middle")
        middle.variable("n", 0)
        middle.subworkflow("call_leaf", "leaf", inputs={"n": "n"}, outputs={"n": "n"})
        _deploy(engine, middle)
        top = WorkflowBuilder("top")
        top.variable("n", 10)
        top.subworkflow("call_middle", "middle", inputs={"n": "n"}, outputs={"result": "n"})
        _deploy(engine, top)
        assert engine.run("top").variables["result"] == 11

    def test_subworkflow_returns_control_only_when_finished(self, engine):
        """Section 3.1: a subworkflow cannot yield control mid-way.

        The child parks on an external event; the parent's next step must
        NOT run until the child is completed — there is no 'partial
        return'.  This is the executable counter-example behind the
        paper's argument that message exchanges cannot live in
        subworkflows.
        """
        child = WorkflowBuilder("child")
        child.activity("receive", "wait_for_event", params={"wait_key": "CHILD-EVT"})
        child.activity("reply", "noop", after="receive")
        _deploy(engine, child)
        parent_trace = []
        engine.activities.register(
            "after_child", lambda ctx: parent_trace.append(ctx.now) or {}
        )
        parent = WorkflowBuilder("parent")
        parent.subworkflow("call", "child")
        parent.activity("next_step", "after_child", after="call")
        _deploy(engine, parent)

        instance_id = engine.create_instance("parent")
        engine.start(instance_id)
        # the child is parked; the parent must not have progressed
        assert parent_trace == []
        assert engine.get_instance(instance_id).status == INSTANCE_WAITING
        # only completing the child's event releases the parent
        engine.complete_waiting_step("CHILD-EVT", {})
        assert parent_trace != []
        assert engine.get_instance(instance_id).status == INSTANCE_COMPLETED


class TestLoops:
    def _counter_body(self, engine):
        body = WorkflowBuilder("body")
        body.variable("i", 0)
        body.activity("inc", "set_variables", inputs={"i": "i + 1"}, outputs={"i": "i"})
        _deploy(engine, body)

    def test_while_loop(self, engine):
        self._counter_body(engine)
        builder = WorkflowBuilder("wf")
        builder.variable("i", 0)
        builder.loop("loop", "body", condition="i < 5", inputs={"i": "i"},
                     outputs={"i": "i"})
        _deploy(engine, builder)
        instance = engine.run("wf")
        assert instance.variables["i"] == 5
        assert instance.step_state("loop").iterations == 5

    def test_while_loop_zero_iterations(self, engine):
        self._counter_body(engine)
        builder = WorkflowBuilder("wf")
        builder.variable("i", 10)
        builder.loop("loop", "body", condition="i < 5", inputs={"i": "i"},
                     outputs={"i": "i"})
        _deploy(engine, builder)
        instance = engine.run("wf")
        assert instance.step_state("loop").iterations == 0
        assert instance.status == INSTANCE_COMPLETED

    def test_until_loop_runs_at_least_once(self, engine):
        self._counter_body(engine)
        builder = WorkflowBuilder("wf")
        builder.variable("i", 10)
        builder.loop("loop", "body", condition="i > 10", mode="until",
                     inputs={"i": "i"}, outputs={"i": "i"})
        _deploy(engine, builder)
        instance = engine.run("wf")
        assert instance.step_state("loop").iterations == 1
        assert instance.variables["i"] == 11

    def test_runaway_loop_guarded(self, engine):
        self._counter_body(engine)
        builder = WorkflowBuilder("wf")
        builder.variable("i", 0)
        builder.loop("loop", "body", condition="True", max_iterations=10,
                     inputs={"i": "i"}, outputs={"i": "i"})
        _deploy(engine, builder)
        with pytest.raises(ActivityError):
            engine.run("wf")


class TestWaitingSteps:
    def test_wait_and_resume(self, engine):
        builder = WorkflowBuilder("wf")
        builder.activity("wait", "wait_for_event", params={"wait_key": "EVT"},
                         outputs={"msg": "msg"})
        builder.activity("done", "noop", after="wait")
        _deploy(engine, builder)
        instance_id = engine.create_instance("wf")
        assert engine.start(instance_id).status == INSTANCE_WAITING
        assert engine.has_waiting("EVT")
        instance = engine.complete_waiting_step("EVT", {"msg": "hello"})
        assert instance.status == INSTANCE_COMPLETED
        assert instance.variables["msg"] == "hello"
        assert not engine.has_waiting("EVT")

    def test_unknown_wait_key_raises(self, engine):
        with pytest.raises(InstanceError):
            engine.complete_waiting_step("GHOST", {})

    def test_duplicate_wait_key_rejected(self, engine):
        builder = WorkflowBuilder("wf")
        builder.activity("wait", "wait_for_event", params={"wait_key": "SAME"})
        _deploy(engine, builder)
        engine.start(engine.create_instance("wf"))
        with pytest.raises(ActivityError):
            engine.start(engine.create_instance("wf"))

    def test_cancel_waiting_step_fails_instance(self, engine):
        builder = WorkflowBuilder("wf")
        builder.activity("wait", "wait_for_event", params={"wait_key": "EVT"})
        _deploy(engine, builder)
        instance_id = engine.create_instance("wf")
        engine.start(instance_id)
        instance = engine.cancel_waiting_step("EVT", "reply timed out")
        assert instance.status == INSTANCE_FAILED
        assert "timed out" in instance.error

    def test_parallel_waits_resume_independently(self, engine):
        builder = WorkflowBuilder("wf")
        builder.activity("split", "noop")
        builder.activity("w1", "wait_for_event", params={"wait_key": "K1"})
        builder.activity("w2", "wait_for_event", params={"wait_key": "K2"})
        builder.activity("join", "noop")
        builder.link("split", "w1")
        builder.link("split", "w2")
        builder.link("w1", "join")
        builder.link("w2", "join")
        _deploy(engine, builder)
        instance_id = engine.create_instance("wf")
        engine.start(instance_id)
        engine.complete_waiting_step("K2", {})
        assert engine.get_instance(instance_id).status == INSTANCE_WAITING
        instance = engine.complete_waiting_step("K1", {})
        assert instance.status == INSTANCE_COMPLETED


class TestFailures:
    def test_activity_failure_fails_instance_and_raises(self, engine):
        builder = WorkflowBuilder("wf")
        builder.activity("boom", "fail", params={"message": "kaput"})
        _deploy(engine, builder)
        instance_id = engine.create_instance("wf")
        with pytest.raises(ActivityError):
            engine.start(instance_id)
        instance = engine.get_instance(instance_id)
        assert instance.status == INSTANCE_FAILED
        assert "kaput" in instance.error

    def test_failure_without_raise_mode(self):
        engine = WorkflowEngine("soft", raise_on_failure=False)
        builder = WorkflowBuilder("wf")
        builder.activity("boom", "fail")
        engine.deploy(builder.build())
        instance = engine.run("wf")
        assert instance.status == INSTANCE_FAILED

    def test_steps_after_failure_do_not_run(self):
        engine = WorkflowEngine("soft", raise_on_failure=False)
        executed = []
        engine.activities.register("trace", lambda ctx: executed.append(ctx.step_id) or {})
        builder = WorkflowBuilder("wf")
        builder.activity("boom", "fail")
        builder.activity("after", "trace", after="boom")
        engine.deploy(builder.build())
        engine.run("wf")
        assert executed == []

    def test_stuck_graph_detected(self, engine):
        # "end" AND-joins two arcs, but one source is itself unreachable in
        # a way that never produces a signal: a disconnected pending step.
        builder = WorkflowBuilder("wf")
        builder.activity("a", "noop")
        builder.activity("island_target", "noop", join="XOR")
        # island_target has an incoming arc from a step that never runs
        # because it waits on an AND join of nothing... construct directly:
        builder.link("a", "island_target", condition="False")
        _deploy(engine, builder)
        # all signals arrive as False -> island skipped; completes fine.
        assert engine.run("wf").status == INSTANCE_COMPLETED

    def test_start_twice_rejected(self, engine):
        builder = WorkflowBuilder("wf")
        builder.activity("a", "noop")
        _deploy(engine, builder)
        instance_id = engine.create_instance("wf")
        engine.start(instance_id)
        with pytest.raises(InstanceError):
            engine.start(instance_id)


class TestPersistenceContract:
    def test_engine_persists_every_advance(self, engine):
        """Figure 4: retrieve -> advance -> store on every step."""
        builder = WorkflowBuilder("wf")
        builder.activity("a", "noop").activity("b", "noop", after="a")
        _deploy(engine, builder)
        loads_before = engine.database.instance_loads
        stores_before = engine.database.instance_stores
        engine.run("wf")
        # one store at creation + at least one load/store pair per step
        assert engine.database.instance_loads - loads_before >= 2
        assert engine.database.instance_stores - stores_before >= 3

    def test_instance_survives_database_snapshot(self, engine):
        builder = WorkflowBuilder("wf")
        builder.activity("wait", "wait_for_event", params={"wait_key": "EVT"})
        builder.activity("done", "noop", after="wait")
        _deploy(engine, builder)
        instance_id = engine.create_instance("wf")
        engine.start(instance_id)
        # simulate an engine restart from the persisted snapshot
        from repro.workflow.database import WorkflowDatabase

        restored_db = WorkflowDatabase.restore(engine.database.snapshot())
        fresh_engine = WorkflowEngine("fresh", database=restored_db,
                                      activities=built_in_registry())
        fresh_engine._wait_index["EVT"] = (instance_id, "wait")
        instance = fresh_engine.complete_waiting_step("EVT", {})
        assert instance.status == INSTANCE_COMPLETED
