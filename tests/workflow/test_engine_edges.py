"""Control-flow edge cases: all-false XOR joins, dead paths through nested
subworkflows, and wait-key handling on cancelled instances."""

import pytest

from repro.errors import InstanceError
from repro.workflow.database import WorkflowDatabase
from repro.workflow.definitions import WorkflowBuilder
from repro.workflow.engine import WorkflowEngine


def _engine() -> WorkflowEngine:
    return WorkflowEngine("edges", WorkflowDatabase("edges-db"))


class TestXorJoinAllFalse:
    def _build(self):
        """start fans out on two conditions into an XOR join; when both
        conditions are false the join (and everything after it) must be
        skipped, not stuck."""
        builder = WorkflowBuilder("xor-all-false")
        builder.variable("flag1", False).variable("flag2", False)
        builder.activity("start", "noop")
        builder.activity("left", "noop")
        builder.activity("right", "noop")
        builder.activity("merge", "noop", join="XOR")
        builder.activity("end", "noop")
        builder.link("start", "left", condition="flag1 == True")
        builder.link("start", "right", condition="flag2 == True")
        builder.link("left", "merge")
        builder.link("right", "merge")
        builder.link("merge", "end")
        return builder.build()

    def test_all_false_arcs_skip_the_join_and_downstream(self):
        engine = _engine()
        engine.deploy(self._build())
        instance = engine.run("xor-all-false")
        assert instance.status == "completed"
        for step_id in ("left", "right", "merge", "end"):
            assert instance.step_state(step_id).status == "skipped", step_id
        assert instance.step_state("start").status == "completed"

    def test_one_true_arc_fires_the_join(self):
        engine = _engine()
        engine.deploy(self._build())
        instance = engine.run("xor-all-false", variables={"flag2": True})
        assert instance.status == "completed"
        assert instance.step_state("left").status == "skipped"
        assert instance.step_state("right").status == "completed"
        assert instance.step_state("merge").status == "completed"
        assert instance.step_state("end").status == "completed"

    def test_skips_emit_kernel_events(self):
        engine = _engine()
        trace = engine.runtime.enable_trace()
        engine.deploy(self._build())
        engine.run("xor-all-false")
        skipped = {event.step_id for event in trace.events(type="step_skipped")}
        assert skipped == {"left", "right", "merge", "end"}


class TestDeadPathThroughNestedSubworkflows:
    def _deploy(self, engine: WorkflowEngine) -> None:
        """grandparent --false--> parent-sub(child-sub(grandchild)): the
        whole nested chain must be eliminated without instantiating any
        child, and the XOR join after it must still fire from the live arc."""
        grandchild = WorkflowBuilder("grandchild")
        grandchild.activity("leaf", "noop")
        child = WorkflowBuilder("child")
        child.activity("pre", "noop")
        child.subworkflow("inner", "grandchild", after="pre")
        parent = WorkflowBuilder("parent")
        parent.variable("take_detour", False)
        parent.activity("start", "noop")
        parent.subworkflow("detour", "child")
        parent.activity("straight", "noop")
        parent.activity("merge", "noop", join="XOR")
        parent.link("start", "detour", condition="take_detour == True")
        parent.link("start", "straight", otherwise=True)
        parent.link("detour", "merge")
        parent.link("straight", "merge")
        engine.deploy_all([grandchild.build(), child.build(), parent.build()])

    def test_false_branch_skips_subworkflow_without_instantiation(self):
        engine = _engine()
        self._deploy(engine)
        instance = engine.run("parent")
        assert instance.status == "completed"
        assert instance.step_state("detour").status == "skipped"
        assert instance.step_state("detour").child_instance_id == ""
        assert instance.step_state("merge").status == "completed"
        types_instantiated = {
            other.type_name for other in engine.database.list_instances()
        }
        assert types_instantiated == {"parent"}

    def test_true_branch_runs_the_whole_nested_chain(self):
        engine = _engine()
        self._deploy(engine)
        instance = engine.run("parent", variables={"take_detour": True})
        assert instance.status == "completed"
        assert instance.step_state("detour").status == "completed"
        assert instance.step_state("straight").status == "skipped"
        types_instantiated = sorted(
            other.type_name for other in engine.database.list_instances()
        )
        assert types_instantiated == ["child", "grandchild", "parent"]


class TestWaitingStepOnCancelledInstance:
    def _deploy(self, engine: WorkflowEngine) -> None:
        builder = WorkflowBuilder("parker")
        builder.activity("wait", "wait_for_event", params={"wait_key": "edge:key"})
        builder.activity("done", "noop", after="wait")
        engine.deploy(builder.build())

    def test_complete_waiting_step_after_cancel_raises(self):
        engine = _engine()
        self._deploy(engine)
        instance = engine.run("parker")
        assert instance.status == "waiting"
        assert engine.has_waiting("edge:key")
        engine.cancel_instance(instance.instance_id, "operator abort")
        # cancellation released the wait key: the late event must not
        # resurrect the cancelled instance.
        assert not engine.has_waiting("edge:key")
        with pytest.raises(InstanceError, match="no step waiting"):
            engine.complete_waiting_step("edge:key", {})
        refreshed = engine.get_instance(instance.instance_id)
        assert refreshed.status == "cancelled"
        assert refreshed.error == "operator abort"

    def test_cancel_emits_instance_cancelled_event(self):
        engine = _engine()
        trace = engine.runtime.enable_trace()
        self._deploy(engine)
        instance = engine.run("parker")
        engine.cancel_instance(instance.instance_id, "operator abort")
        event = trace.last(type="instance_cancelled")
        assert event is not None
        assert event.instance_id == instance.instance_id
        assert event.reason == "operator abort"
