"""Tests for engine operations: cancel, retry, restart recovery."""

import pytest

from repro.errors import ActivityError, InstanceError
from repro.workflow.activities import built_in_registry
from repro.workflow.database import WorkflowDatabase
from repro.workflow.definitions import WorkflowBuilder
from repro.workflow.engine import WorkflowEngine
from repro.workflow.instance import (
    INSTANCE_CANCELLED,
    INSTANCE_COMPLETED,
    INSTANCE_FAILED,
)


@pytest.fixture
def engine():
    return WorkflowEngine("ops", raise_on_failure=False)


def _deploy_waiter(engine, key="EVT"):
    builder = WorkflowBuilder("waiter")
    builder.activity("wait", "wait_for_event", params={"wait_key": key})
    builder.activity("done", "noop", after="wait")
    engine.deploy(builder.build())


class TestCancellation:
    def test_cancel_waiting_instance(self, engine):
        _deploy_waiter(engine)
        instance_id = engine.create_instance("waiter")
        engine.start(instance_id)
        instance = engine.cancel_instance(instance_id, "operator abort")
        assert instance.status == INSTANCE_CANCELLED
        assert instance.error == "operator abort"
        assert not engine.has_waiting("EVT")

    def test_cancel_releases_wait_key_for_reuse(self, engine):
        _deploy_waiter(engine)
        first = engine.create_instance("waiter")
        engine.start(first)
        engine.cancel_instance(first)
        second = engine.create_instance("waiter")
        engine.start(second)  # would raise on a duplicate wait key
        assert engine.has_waiting("EVT")

    def test_cancel_terminal_instance_rejected(self, engine):
        builder = WorkflowBuilder("quick")
        builder.activity("a", "noop")
        engine.deploy(builder.build())
        instance = engine.run("quick")
        with pytest.raises(InstanceError):
            engine.cancel_instance(instance.instance_id)

    def test_cancel_cascades_to_children(self, engine):
        child = WorkflowBuilder("child")
        child.activity("wait", "wait_for_event", params={"wait_key": "CHILD-EVT"})
        engine.deploy(child.build())
        parent = WorkflowBuilder("parent")
        parent.subworkflow("call", "child")
        engine.deploy(parent.build())
        parent_id = engine.create_instance("parent")
        engine.start(parent_id)
        engine.cancel_instance(parent_id)
        child_id = engine.get_instance(parent_id).step_state("call").child_instance_id
        assert engine.get_instance(child_id).status == INSTANCE_CANCELLED
        assert not engine.has_waiting("CHILD-EVT")

    def test_completion_of_cancelled_key_raises(self, engine):
        _deploy_waiter(engine)
        instance_id = engine.create_instance("waiter")
        engine.start(instance_id)
        engine.cancel_instance(instance_id)
        with pytest.raises(InstanceError):
            engine.complete_waiting_step("EVT", {})


class TestRetry:
    def _deploy_flaky(self, engine):
        attempts = {"count": 0}

        def flaky(context):
            attempts["count"] += 1
            if attempts["count"] == 1:
                raise ActivityError("backend unreachable")
            return {"value": attempts["count"]}

        engine.activities.register("flaky", flaky)
        builder = WorkflowBuilder("flaky-wf")
        builder.activity("try", "flaky", outputs={"value": "value"})
        builder.activity("after", "noop", after="try")
        engine.deploy(builder.build())
        return attempts

    def test_retry_after_repair_completes(self, engine):
        self._deploy_flaky(engine)
        instance = engine.run("flaky-wf")
        assert instance.status == INSTANCE_FAILED
        retried = engine.retry_failed_step(instance.instance_id)
        assert retried.status == INSTANCE_COMPLETED
        assert retried.variables["value"] == 2
        assert retried.step_state("after").status == "completed"

    def test_retry_records_history(self, engine):
        self._deploy_flaky(engine)
        instance = engine.run("flaky-wf")
        retried = engine.retry_failed_step(instance.instance_id)
        assert retried.events("retrying")
        assert retried.events("step_failed")  # the original failure stays

    def test_retry_non_failed_instance_rejected(self, engine):
        _deploy_waiter(engine)
        instance_id = engine.create_instance("waiter")
        engine.start(instance_id)
        with pytest.raises(InstanceError):
            engine.retry_failed_step(instance_id)

    def test_persistent_failure_can_retry_again(self, engine):
        engine.activities.register(
            "always-broken", lambda ctx: (_ for _ in ()).throw(ActivityError("still down"))
        )
        builder = WorkflowBuilder("broken-wf")
        builder.activity("try", "always-broken")
        engine.deploy(builder.build())
        instance = engine.run("broken-wf")
        retried = engine.retry_failed_step(instance.instance_id)
        assert retried.status == INSTANCE_FAILED
        # and a third attempt is still possible
        retried = engine.retry_failed_step(instance.instance_id)
        assert retried.status == INSTANCE_FAILED


class TestRecovery:
    def test_restart_rebuilds_wait_index(self, engine):
        _deploy_waiter(engine, key="K1")
        instance_id = engine.create_instance("waiter")
        engine.start(instance_id)
        # simulate a crash: a fresh engine over the persisted database
        snapshot = engine.database.snapshot()
        fresh = WorkflowEngine(
            "ops-restarted",
            database=WorkflowDatabase.restore(snapshot),
            activities=built_in_registry(),
        )
        assert not fresh.has_waiting("K1")
        assert fresh.recover() == 1
        assert fresh.has_waiting("K1")
        instance = fresh.complete_waiting_step("K1", {})
        assert instance.status == INSTANCE_COMPLETED

    def test_recover_on_empty_database(self, engine):
        assert engine.recover() == 0

    def test_recover_ignores_terminal_instances(self, engine):
        builder = WorkflowBuilder("quick")
        builder.activity("a", "noop")
        engine.deploy(builder.build())
        engine.run("quick")
        assert engine.recover() == 0
