"""Property-based tests: engine invariants over random workflow DAGs.

Random layered workflow types (XOR joins, conditioned arcs over boolean
variables, arbitrary fan-in/out) are generated and executed; the invariants
checked are the ones every WfMC-style engine must guarantee:

* every started instance reaches a terminal status with every step
  terminal (no token is ever lost);
* a step starts only after all of its predecessors are terminal;
* dead paths are consistent: a completed step has at least one completed
  predecessor arc whose condition held;
* execution is deterministic: same type + same variables = same trace;
* instances survive a persistence round trip mid-flight.
"""

from hypothesis import given, settings, strategies as st

from repro.workflow.database import WorkflowDatabase
from repro.workflow.definitions import Transition, WorkflowBuilder
from repro.workflow.engine import WorkflowEngine
from repro.workflow.expressions import Expression
from repro.workflow.instance import (
    INSTANCE_COMPLETED,
    STEP_COMPLETED,
    STEP_SKIPPED,
)

VARIABLES = ("v0", "v1", "v2", "v3")


@st.composite
def workflow_graphs(draw):
    """A random layered DAG with conditioned arcs and XOR joins."""
    layer_sizes = draw(st.lists(st.integers(1, 3), min_size=2, max_size=5))
    layers: list[list[str]] = []
    counter = 0
    for size in layer_sizes:
        layers.append([f"s{counter + i}" for i in range(size)])
        counter += size

    transitions: list[tuple[str, str, str | None]] = []
    for upper, lower in zip(layers, layers[1:]):
        for target in lower:
            # every lower step needs at least one incoming arc
            source_count = draw(st.integers(1, len(upper)))
            sources = draw(
                st.lists(st.sampled_from(upper), min_size=source_count,
                         max_size=source_count, unique=True)
            )
            for source in sources:
                conditioned = draw(st.booleans())
                condition = None
                if conditioned:
                    variable = draw(st.sampled_from(VARIABLES))
                    wanted = draw(st.booleans())
                    condition = f"{variable} == {wanted}"
                transitions.append((source, target, condition))
    assignment = {name: draw(st.booleans()) for name in VARIABLES}
    return layers, transitions, assignment


def _build(layers, transitions):
    builder = WorkflowBuilder("random-dag")
    for name in VARIABLES:
        builder.variable(name, False)
    for layer in layers:
        for step_id in layer:
            builder.activity(step_id, "noop", join="XOR")
    for source, target, condition in transitions:
        builder._transitions.append(Transition(source, target, condition))
    return builder.build()


def _run(layers, transitions, assignment):
    engine = WorkflowEngine("prop")
    engine.deploy(_build(layers, transitions))
    instance = engine.run("random-dag", assignment)
    return engine, instance


@settings(max_examples=60, deadline=None)
@given(workflow_graphs())
def test_every_instance_terminates_with_all_steps_terminal(graph):
    layers, transitions, assignment = graph
    _, instance = _run(layers, transitions, assignment)
    assert instance.status == INSTANCE_COMPLETED
    for state in instance.steps.values():
        assert state.status in (STEP_COMPLETED, STEP_SKIPPED)


@settings(max_examples=60, deadline=None)
@given(workflow_graphs())
def test_steps_start_only_after_their_predecessors(graph):
    layers, transitions, assignment = graph
    _, instance = _run(layers, transitions, assignment)
    position = {
        entry["step_id"]: index
        for index, entry in enumerate(instance.history)
        if entry["event"] == "step_started"
    }
    terminal = {}
    for index, entry in enumerate(instance.history):
        if entry["event"] in ("step_completed", "step_skipped"):
            terminal[entry["step_id"]] = index
    for source, target, _ in transitions:
        if target in position:
            assert source in terminal
            assert terminal[source] < position[target], (
                f"{target} started before {source} finished"
            )


@settings(max_examples=60, deadline=None)
@given(workflow_graphs())
def test_dead_path_consistency(graph):
    """XOR semantics: a step completed iff some incoming arc fired
    (source completed and condition held); skipped iff none did."""
    layers, transitions, assignment = graph
    _, instance = _run(layers, transitions, assignment)
    incoming: dict[str, list[tuple[str, str | None]]] = {}
    for source, target, condition in transitions:
        incoming.setdefault(target, []).append((source, condition))
    for layer in layers[1:]:
        for step_id in layer:
            fired = any(
                instance.step_state(source).status == STEP_COMPLETED
                and (condition is None
                     or Expression(condition).evaluate_bool(instance.variables))
                for source, condition in incoming.get(step_id, [])
            )
            actual = instance.step_state(step_id).status
            assert actual == (STEP_COMPLETED if fired else STEP_SKIPPED), (
                f"{step_id}: fired={fired} but status={actual}"
            )


@settings(max_examples=40, deadline=None)
@given(workflow_graphs())
def test_execution_is_deterministic(graph):
    layers, transitions, assignment = graph
    _, first = _run(layers, transitions, assignment)
    _, second = _run(layers, transitions, assignment)
    strip = lambda instance: [
        (entry["event"], entry["step_id"]) for entry in instance.history
    ]
    assert strip(first) == strip(second)
    assert {s.step_id: s.status for s in first.steps.values()} == {
        s.step_id: s.status for s in second.steps.values()
    }


@settings(max_examples=30, deadline=None)
@given(workflow_graphs(), st.integers(0, 10_000))
def test_instance_survives_persistence_roundtrip(graph, seed):
    """Snapshot the database after the run; the restored instance is
    byte-identical (the Figure 4 durability contract)."""
    layers, transitions, assignment = graph
    engine, instance = _run(layers, transitions, assignment)
    restored_db = WorkflowDatabase.restore(engine.database.snapshot())
    restored = restored_db.load_instance(instance.instance_id)
    assert restored.to_dict() == instance.to_dict()
