"""Property tests: Expression.compile() is behaviourally identical to
Expression.evaluate().

Random expressions from the allowed grammar are generated and both paths
are run over random variable assignments.  Identity must hold for results
AND for error cases — compiled hot paths may not change which programs fail
or how their failures read, or a model that lints clean interpreted would
break compiled.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.documents.normalized import make_purchase_order
from repro.errors import ExpressionError
from repro.workflow.expressions import Expression

# -- random expression generator over the allowed grammar ---------------------

_NAMES = ("alpha", "beta", "gamma")
_FUNCTIONS = ("len", "min", "max", "abs", "round", "str", "int", "float", "bool")


@st.composite
def expressions(draw, depth=3):
    """A random source string from the allowed grammar."""
    choices = ["literal", "name"]
    if depth > 0:
        choices += ["binop", "unary", "boolop", "compare", "call",
                    "subscript", "tuple"]
    kind = draw(st.sampled_from(choices))
    sub = lambda: draw(expressions(depth=depth - 1))  # noqa: E731
    if kind == "literal":
        return repr(draw(st.one_of(
            st.integers(-100, 100),
            st.floats(-100, 100, allow_nan=False),
            st.booleans(),
            st.text(alphabet="abxy", max_size=3),
        )))
    if kind == "name":
        return draw(st.sampled_from(_NAMES))
    if kind == "binop":
        op = draw(st.sampled_from(["+", "-", "*", "/", "%", "//"]))
        return f"({sub()} {op} {sub()})"
    if kind == "unary":
        op = draw(st.sampled_from(["not ", "-", "+"]))
        return f"({op}{sub()})"
    if kind == "boolop":
        op = draw(st.sampled_from([" and ", " or "]))
        return f"({sub()}{op}{sub()})"
    if kind == "compare":
        op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">=", " in "]))
        return f"({sub()} {op} {sub()})"
    if kind == "call":
        function = draw(st.sampled_from(_FUNCTIONS))
        return f"{function}({sub()})"
    if kind == "subscript":
        index = draw(st.one_of(st.integers(-3, 3), st.sampled_from(_NAMES)))
        return f"{sub()}[{index}]"
    return f"({sub()}, {sub()})"


def variable_assignments():
    values = st.one_of(
        st.integers(-50, 50),
        st.floats(-50, 50, allow_nan=False),
        st.booleans(),
        st.text(alphabet="abxy", max_size=3),
        st.lists(st.integers(0, 9), max_size=4),
        st.dictionaries(st.sampled_from(["k1", "k2"]), st.integers(0, 9), max_size=2),
    )
    return st.fixed_dictionaries({name: values for name in _NAMES})


def _outcome(runner, variables):
    """(kind, payload) of one evaluation: a result or a failure message."""
    try:
        return ("ok", runner(variables))
    except ExpressionError as exc:
        return ("expression-error", str(exc))


@settings(max_examples=300, deadline=None)
@given(source=expressions(), variables=variable_assignments())
def test_compiled_matches_interpreted(source, variables):
    try:
        expression = Expression(source)
    except ExpressionError:
        return  # grammar corner the validator rejects: nothing to compare
    program = expression.compile()
    interpreted = _outcome(expression.evaluate, variables)
    compiled = _outcome(program, variables)
    assert compiled == interpreted


@settings(max_examples=50, deadline=None)
@given(variables=variable_assignments())
def test_truth_matches_interpreted(variables):
    expression = Expression("alpha and not beta or gamma == 3")
    assert expression.compile()(variables) == expression.evaluate(variables)


# -- document-access identity (the Figure 9 hot path) -------------------------

LINES = [
    {"sku": "LAPTOP-15", "quantity": 50, "unit_price": 1200.0},
    {"sku": "DOCK-1", "quantity": 5, "unit_price": 150.0},
]

DOCUMENT_EXPRESSIONS = [
    "PO.amount",
    "PO.amount >= 55000 and source == 'TP1' or PO.amount >= 40000 and source == 'TP2'",
    "PO.order_id",
    "PO.header",
    "len(PO.lines)",
    "PO.lines[0]['sku']",
    "PO.missing_field",
    "PO['also.missing']",
]


@pytest.mark.parametrize("source", DOCUMENT_EXPRESSIONS)
@pytest.mark.parametrize("partner", ["TP1", "TP2"])
def test_document_access_identity(source, partner):
    expression = Expression(source)
    variables = {
        "PO": make_purchase_order("P1", partner, "ACME", LINES),
        "source": partner,
    }
    assert _outcome(expression.compile(), variables) == _outcome(
        expression.evaluate, variables
    )


def test_error_messages_identical_for_unknown_variable():
    expression = Expression("nope + 1")
    interpreted = _outcome(expression.evaluate, {})
    compiled = _outcome(expression.compile(), {})
    assert interpreted[0] == "expression-error"
    assert compiled == interpreted


def test_compile_is_cached():
    expression = Expression("1 + 1")
    assert expression.compile() is expression.compile()
