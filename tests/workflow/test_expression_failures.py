"""Runtime evaluation failures carry the expression text, and the
static-analysis introspection methods (names/paths/fold_constant)."""

import pytest

from repro.errors import ExpressionError
from repro.workflow.expressions import Expression


class TestErrorCarriesExpression:
    def test_zero_division_is_wrapped(self):
        expression = Expression("x / y")
        with pytest.raises(ExpressionError) as excinfo:
            expression.evaluate({"x": 1, "y": 0})
        assert excinfo.value.expression == "x / y"
        assert "ZeroDivisionError" in str(excinfo.value)

    def test_type_error_is_wrapped(self):
        expression = Expression("x + y")
        with pytest.raises(ExpressionError) as excinfo:
            expression.evaluate({"x": 1, "y": "s"})
        assert excinfo.value.expression == "x + y"

    def test_unknown_variable_carries_expression(self):
        with pytest.raises(ExpressionError) as excinfo:
            Expression("missing > 1").evaluate({})
        assert excinfo.value.expression == "missing > 1"

    def test_compile_error_carries_expression(self):
        with pytest.raises(ExpressionError) as excinfo:
            Expression("x +")
        assert excinfo.value.expression == "x +"

    def test_rejected_construct_carries_expression(self):
        with pytest.raises(ExpressionError) as excinfo:
            Expression("[i for i in x]")
        assert excinfo.value.expression == "[i for i in x]"

    def test_missing_document_key_carries_expression(self):
        with pytest.raises(ExpressionError) as excinfo:
            Expression("doc.nope").evaluate({"doc": {"yes": 1}})
        assert excinfo.value.expression == "doc.nope"


class TestNames:
    def test_names_excludes_builtins(self):
        assert Expression("len(lines) > 0 and amount > max(a, b)").names() == {
            "lines",
            "amount",
            "a",
            "b",
        }

    def test_names_matches_variables_used(self):
        expression = Expression("PO.amount > 10000")
        assert expression.names() == expression.variables_used() == {"PO"}


class TestPaths:
    def test_maximal_chains_only(self):
        paths = Expression(
            "PO.amount > 10000 and PO.header.currency == 'USD'"
        ).paths()
        assert paths == {"PO.amount", "PO.header.currency"}

    def test_subscript_paths(self):
        assert Expression("doc['header'].po_number").paths() == {
            "doc.header.po_number"
        }
        assert Expression("lines[0].sku == 'X'").paths() == {"lines[0].sku"}

    def test_bare_names_are_not_paths(self):
        assert Expression("amount > 10").paths() == set()


class TestFoldConstant:
    def test_constant_expressions_fold(self):
        assert Expression("1 > 2").fold_constant() == (False,)
        assert Expression("1 + 1 == 2").fold_constant() == (True,)
        assert Expression("'a' + 'b'").fold_constant() == ("ab",)

    def test_variable_expressions_do_not_fold(self):
        assert Expression("amount > 10").fold_constant() is None

    def test_failing_constant_does_not_fold(self):
        assert Expression("1 / 0").fold_constant() is None
