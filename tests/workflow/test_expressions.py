"""Tests for the safe expression language."""

import pytest
from hypothesis import given, strategies as st

from repro.documents.normalized import make_purchase_order
from repro.errors import ExpressionError
from repro.workflow.expressions import Expression


class TestCompilation:
    @pytest.mark.parametrize(
        "text",
        [
            "1 + 1",
            "amount > 10000",
            "PO.amount >= 55000 and source == 'TP1'",
            "a.b.c[0]['k']",
            "items[i]",
            "matrix[row][col + 1]",
            "not done",
            "x in (1, 2, 3)",
            "len(items) > 0",
            "min(a, b) + max(a, b)",
            "-x + +y",
            "1 < x < 10",
        ],
    )
    def test_accepts_supported_grammar(self, text):
        Expression(text)

    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "import os",
            "__import__('os')",
            "open('/etc/passwd')",
            "lambda: 1",
            "[x for x in y]",
            "x = 1",
            "x.y()",
            "exec('1')",
            "f'{x}'",
            "x[1:2]",        # slice subscript
            "x[y():]",       # slice with a call inside
            "x[lambda: 1]",  # unsupported subscript expression
            "x ** 2",        # power not whitelisted
            "{1: 2}",        # dict literal
            "len(x, key=1)",  # keyword args
        ],
    )
    def test_rejects_unsupported_grammar(self, text):
        with pytest.raises(ExpressionError):
            Expression(text)

    def test_rejection_happens_at_compile_time(self):
        # A malicious condition must fail at deployment, not at runtime.
        with pytest.raises(ExpressionError):
            Expression("system('rm -rf /')")


class TestEvaluation:
    def test_arithmetic(self):
        assert Expression("2 + 3 * 4").evaluate({}) == 14

    def test_comparison_chain(self):
        expr = Expression("1 < x < 10")
        assert expr.evaluate_bool({"x": 5})
        assert not expr.evaluate_bool({"x": 20})

    def test_boolean_short_circuit(self):
        # the right side would fail; short-circuit must protect it
        expr = Expression("present and data.key == 1")
        assert expr.evaluate_bool({"present": False, "data": {}}) is False

    def test_dict_attribute_access(self):
        expr = Expression("PO.amount > 10000")
        assert expr.evaluate_bool({"PO": {"amount": 20000}})

    def test_nested_access(self):
        expr = Expression("order.lines[0].sku == 'A'")
        context = {"order": {"lines": [{"sku": "A"}]}}
        assert expr.evaluate_bool(context)

    def test_string_subscript(self):
        assert Expression("d['k']").evaluate({"d": {"k": 7}}) == 7

    def test_variable_subscript(self):
        # The satellite fix: ``items[i]`` must evaluate, not AttributeError.
        expr = Expression("items[i]")
        assert expr.evaluate({"items": [10, 20, 30], "i": 2}) == 30
        assert Expression("d[key]").evaluate({"d": {"k": 7}, "key": "k"}) == 7

    def test_computed_subscript(self):
        assert Expression("items[i + 1]").evaluate({"items": [1, 2], "i": 0}) == 2

    def test_unsupported_subscript_key_raises_expression_error(self):
        # A key type the access rules cannot use raises ExpressionError,
        # never a raw AttributeError/TypeError.
        with pytest.raises(ExpressionError):
            Expression("items[x]").evaluate({"items": [1, 2], "x": 1.5})

    def test_variable_subscript_out_of_range(self):
        with pytest.raises(ExpressionError):
            Expression("items[i]").evaluate({"items": [1], "i": 5})

    def test_membership(self):
        assert Expression("x in ('a', 'b')").evaluate_bool({"x": "a"})

    def test_builtins(self):
        assert Expression("len(items)").evaluate({"items": [1, 2, 3]}) == 3
        assert Expression("round(x, 1)").evaluate({"x": 2.25}) == 2.2

    def test_unknown_variable_raises(self):
        with pytest.raises(ExpressionError):
            Expression("ghost + 1").evaluate({})

    def test_unknown_key_raises(self):
        with pytest.raises(ExpressionError):
            Expression("d.nope").evaluate({"d": {}})

    def test_index_out_of_range_raises(self):
        with pytest.raises(ExpressionError):
            Expression("xs[5]").evaluate({"xs": [1]})

    def test_runtime_type_error_wrapped(self):
        with pytest.raises(ExpressionError):
            Expression("a + b").evaluate({"a": 1, "b": "s"})

    def test_variables_used(self):
        expr = Expression("PO.amount >= 55000 and source == 'TP1' or len(items)")
        assert expr.variables_used() == {"PO", "source", "items"}


class TestDocumentAccess:
    """The paper writes ``PO.amount``; documents must support it."""

    @pytest.fixture
    def po(self):
        return make_purchase_order(
            "P1", "TP1", "ACME", [{"sku": "A", "quantity": 2, "unit_price": 30000.0}]
        )

    def test_amount_maps_to_total(self, po):
        assert Expression("PO.amount").evaluate({"PO": po}) == 60000.0

    def test_paper_rule_expression(self, po):
        expr = Expression("PO.amount >= 55000 and source == 'TP1'")
        assert expr.evaluate_bool({"PO": po, "source": "TP1"})
        assert not expr.evaluate_bool({"PO": po, "source": "TP2"})

    def test_header_shortcut(self, po):
        assert Expression("PO.po_number").evaluate({"PO": po}) == "P1"

    def test_full_path_access(self, po):
        assert Expression("PO.header.currency").evaluate({"PO": po}) == "USD"

    def test_missing_document_field_raises(self, po):
        with pytest.raises(ExpressionError):
            Expression("PO.nonexistent").evaluate({"PO": po})


# -- property-based -----------------------------------------------------------

_numbers = st.integers(-100, 100)


@given(a=_numbers, b=_numbers, c=_numbers)
def test_arithmetic_matches_python(a, b, c):
    expr = Expression("a + b * c - (a - b)")
    assert expr.evaluate({"a": a, "b": b, "c": c}) == a + b * c - (a - b)


@given(a=_numbers, b=_numbers)
def test_comparisons_match_python(a, b):
    for op in ("<", "<=", ">", ">=", "==", "!="):
        expr = Expression(f"a {op} b")
        assert expr.evaluate_bool({"a": a, "b": b}) == eval(f"a {op} b")


@given(a=st.booleans(), b=st.booleans(), c=st.booleans())
def test_boolean_logic_matches_python(a, b, c):
    expr = Expression("a and b or not c")
    assert bool(expr.evaluate({"a": a, "b": b, "c": c})) == (a and b or not c)


@given(st.integers(0, 200_000), st.sampled_from(["TP1", "TP2", "TP3"]))
def test_paper_condition_total_function(amount, source):
    """The Figure 9 condition is a pure function of (amount, source)."""
    expr = Expression(
        "amount >= 55000 and source == 'TP1' or amount >= 40000 and source == 'TP2'"
    )
    expected = (amount >= 55000 and source == "TP1") or (
        amount >= 40000 and source == "TP2"
    )
    assert expr.evaluate_bool({"amount": amount, "source": source}) == expected
