"""Tests for workflow instance state and persistence snapshots."""

import pytest

from repro.documents.normalized import make_purchase_order
from repro.errors import InstanceError
from repro.workflow.instance import (
    INSTANCE_COMPLETED,
    INSTANCE_CREATED,
    STEP_COMPLETED,
    STEP_PENDING,
    StepState,
    WorkflowInstance,
)


def _instance():
    return WorkflowInstance("I1", "wf", "1", ["a", "b", "c"], {"x": 1})


class TestBasics:
    def test_initial_state(self):
        instance = _instance()
        assert instance.status == INSTANCE_CREATED
        assert all(s.status == STEP_PENDING for s in instance.steps.values())
        assert not instance.is_terminal()

    def test_requires_id(self):
        with pytest.raises(InstanceError):
            WorkflowInstance("", "wf", "1", [])

    def test_step_state_lookup(self):
        assert _instance().step_state("a").step_id == "a"
        with pytest.raises(InstanceError):
            _instance().step_state("ghost")

    def test_steps_in_status(self):
        instance = _instance()
        instance.step_state("a").status = STEP_COMPLETED
        assert [s.step_id for s in instance.steps_in_status(STEP_COMPLETED)] == ["a"]

    def test_all_steps_terminal(self):
        instance = _instance()
        assert not instance.all_steps_terminal()
        for state in instance.steps.values():
            state.status = STEP_COMPLETED
        assert instance.all_steps_terminal()


class TestSignals:
    def test_signal_lifecycle(self):
        instance = _instance()
        assert instance.signal("a", "b") is None
        instance.set_signal("a", "b", True)
        assert instance.signal("a", "b") is True
        instance.set_signal("a", "c", False)
        assert instance.signal("a", "c") is False


class TestHistory:
    def test_record_and_filter(self):
        instance = _instance()
        instance.record(1.0, "started")
        instance.record(2.0, "step_completed", "a")
        instance.record(3.0, "step_completed", "b")
        assert len(instance.events("step_completed")) == 2
        assert instance.events("started")[0]["at"] == 1.0


class TestPersistence:
    def test_roundtrip_plain_variables(self):
        instance = _instance()
        instance.status = INSTANCE_COMPLETED
        instance.completed_at = 9.0
        instance.set_signal("a", "b", True)
        instance.step_state("a").status = STEP_COMPLETED
        instance.step_state("a").outputs = {"k": [1, 2]}
        instance.record(1.0, "started")
        restored = WorkflowInstance.from_dict(instance.to_dict())
        assert restored.to_dict() == instance.to_dict()
        assert restored.signal("a", "b") is True
        assert restored.step_state("a").outputs == {"k": [1, 2]}

    def test_documents_in_variables_survive(self):
        instance = _instance()
        po = make_purchase_order(
            "P1", "B", "S", [{"sku": "A", "quantity": 1, "unit_price": 2}]
        )
        instance.variables["document"] = po
        restored = WorkflowInstance.from_dict(instance.to_dict())
        assert restored.variables["document"] == po
        assert restored.variables["document"].format_name == "normalized"

    def test_snapshot_is_detached(self):
        instance = _instance()
        snapshot = instance.to_dict()
        snapshot["variables"]["x"] = 999
        assert instance.variables["x"] == 1

    def test_documents_in_step_outputs_survive(self):
        # regression: step outputs holding documents must stay JSON-encodable
        import json

        instance = _instance()
        po = make_purchase_order(
            "P1", "B", "S", [{"sku": "A", "quantity": 1, "unit_price": 2}]
        )
        instance.step_state("a").outputs = {"document": po}
        payload = instance.to_dict()
        json.dumps(payload)  # must not raise
        restored = WorkflowInstance.from_dict(payload)
        assert restored.step_state("a").outputs["document"] == po

    def test_parent_links_preserved(self):
        instance = WorkflowInstance(
            "I2", "wf", "1", ["a"], parent_instance_id="I1", parent_step_id="s"
        )
        restored = WorkflowInstance.from_dict(instance.to_dict())
        assert restored.parent_instance_id == "I1"
        assert restored.parent_step_id == "s"


class TestStepState:
    def test_roundtrip(self):
        state = StepState("s", status=STEP_COMPLETED, outputs={"x": 1},
                          iterations=3, child_instance_id="C", wait_key="K",
                          error="boom")
        assert StepState.from_dict(state.to_dict()) == state
