"""to_dict / from_dict round trips for every step kind.

A serialized type must rebuild into a semantically identical definition —
type migration between engines (Figure 6) depends on it.
"""

import json

from repro.workflow.definitions import (
    ActivityStep,
    LoopStep,
    RemoteSubworkflowStep,
    SubworkflowStep,
    Transition,
    WorkflowType,
)


def roundtrip(workflow: WorkflowType) -> WorkflowType:
    # through JSON, not just dicts, to prove the payload is serializable
    return WorkflowType.from_dict(json.loads(json.dumps(workflow.to_dict())))


def assert_equivalent(original: WorkflowType, rebuilt: WorkflowType) -> None:
    assert rebuilt.to_dict() == original.to_dict()
    assert rebuilt.name == original.name
    assert rebuilt.version == original.version
    assert rebuilt.owner == original.owner
    assert set(rebuilt.steps) == set(original.steps)
    assert rebuilt.variables == original.variables
    assert rebuilt.metadata == original.metadata


def test_activity_step_round_trip():
    workflow = WorkflowType(
        "activities",
        [
            ActivityStep(
                "a",
                label="first",
                join="XOR",
                tags=("transformation", "edi"),
                activity="extract",
                inputs={"x": "amount + 1"},
                outputs={"result": "value"},
                params={"retries": 3, "codes": [1, 2]},
            ),
            ActivityStep("b", activity="store"),
        ],
        [Transition("a", "b", condition="result > 0"),
         Transition("a", "b", otherwise=True)],
        variables={"amount": 10},
        version="7",
        owner="ACME",
        metadata={"private": True, "doc_types": ["purchase_order"]},
    )
    rebuilt = roundtrip(workflow)
    assert_equivalent(workflow, rebuilt)
    step = rebuilt.steps["a"]
    assert isinstance(step, ActivityStep)
    assert step.tags == ("transformation", "edi")
    assert step.params == {"retries": 3, "codes": [1, 2]}


def test_subworkflow_step_round_trip():
    workflow = WorkflowType(
        "subflows",
        [
            SubworkflowStep(
                "call",
                subworkflow="child",
                version="2",
                inputs={"doc": "document"},
                outputs={"verdict": "approved"},
            ),
        ],
        [],
        variables={"document": None},
    )
    rebuilt = roundtrip(workflow)
    assert_equivalent(workflow, rebuilt)
    step = rebuilt.steps["call"]
    assert isinstance(step, SubworkflowStep)
    assert step.subworkflow == "child"
    assert step.version == "2"


def test_remote_subworkflow_step_round_trip():
    workflow = WorkflowType(
        "remote",
        [
            RemoteSubworkflowStep(
                "offload",
                subworkflow="partner-flow",
                engine="partner-engine",
                inputs={"po": "document"},
                outputs={"ack": "ack_document"},
            ),
        ],
        [],
        variables={"document": None},
    )
    rebuilt = roundtrip(workflow)
    assert_equivalent(workflow, rebuilt)
    step = rebuilt.steps["offload"]
    assert isinstance(step, RemoteSubworkflowStep)
    assert step.engine == "partner-engine"


def test_loop_step_round_trip():
    workflow = WorkflowType(
        "loops",
        [
            ActivityStep("init", activity="noop", outputs={"pending": "count"}),
            LoopStep(
                "drain",
                body="process-one",
                condition="pending > 0",
                mode="until",
                max_iterations=25,
                inputs={"item": "pending"},
            ),
        ],
        [Transition("init", "drain")],
    )
    rebuilt = roundtrip(workflow)
    assert_equivalent(workflow, rebuilt)
    step = rebuilt.steps["drain"]
    assert isinstance(step, LoopStep)
    assert step.mode == "until"
    assert step.max_iterations == 25
    assert step.condition == "pending > 0"


def test_mixed_kind_workflow_round_trip_preserves_transitions():
    workflow = WorkflowType(
        "mixed",
        [
            ActivityStep("a", activity="noop", outputs={"n": "n"}),
            SubworkflowStep("s", subworkflow="child"),
            RemoteSubworkflowStep("r", subworkflow="child", engine="there"),
            LoopStep("l", body="child", condition="n > 0"),
        ],
        [
            Transition("a", "s", condition="n > 10"),
            Transition("a", "r", otherwise=True),
            Transition("s", "l"),
            Transition("r", "l"),
        ],
    )
    rebuilt = roundtrip(workflow)
    assert_equivalent(workflow, rebuilt)
    kinds = {step_id: step.kind for step_id, step in rebuilt.steps.items()}
    assert kinds == {
        "a": "activity",
        "s": "subworkflow",
        "r": "remote_subworkflow",
        "l": "loop",
    }
    rebuilt_arcs = [
        (arc.source, arc.target, arc.condition, arc.otherwise)
        for arc in rebuilt.transitions
    ]
    original_arcs = [
        (arc.source, arc.target, arc.condition, arc.otherwise)
        for arc in workflow.transitions
    ]
    assert rebuilt_arcs == original_arcs


def test_double_round_trip_is_stable():
    workflow = WorkflowType(
        "stable",
        [ActivityStep("a", activity="noop")],
        [],
        metadata={"doc_types": ["purchase_order", "po_ack"]},
    )
    once = roundtrip(workflow)
    twice = roundtrip(once)
    assert twice.to_dict() == once.to_dict() == workflow.to_dict()
