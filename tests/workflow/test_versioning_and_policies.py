"""Tests for type versioning, subworkflow late binding (Section 2.1), and
the persistence-policy ablation."""

import pytest

from repro.errors import WorkflowError
from repro.workflow.definitions import WorkflowBuilder
from repro.workflow.engine import WorkflowEngine
from repro.workflow.instance import INSTANCE_COMPLETED


def _child(version, result):
    builder = WorkflowBuilder("child", version=version)
    builder.activity(
        "calc", "set_variables", inputs={"y": f"'{result}'"}, outputs={"y": "y"}
    )
    return builder.build()


class TestVersioning:
    def test_new_instances_use_latest_version(self):
        engine = WorkflowEngine("v")
        engine.deploy(_child("1", "from-v1"))
        engine.deploy(_child("2", "from-v2"))
        instance = engine.run("child")
        assert instance.type_version == "2"
        assert instance.variables["y"] == "from-v2"

    def test_pinned_version_still_runnable(self):
        engine = WorkflowEngine("v")
        engine.deploy(_child("1", "from-v1"))
        engine.deploy(_child("2", "from-v2"))
        instance = engine.start(engine.create_instance("child", version="1"))
        assert instance.variables["y"] == "from-v1"

    def test_in_flight_instance_keeps_its_version(self):
        """Section 2.1: a running instance is interpreted against the type
        version it was created with, even after an upgrade."""
        engine = WorkflowEngine("v")
        builder = WorkflowBuilder("wf", version="1")
        builder.activity("wait", "wait_for_event", params={"wait_key": "K"})
        builder.activity(
            "mark", "set_variables", inputs={"v": "'one'"}, outputs={"v": "v"},
            after="wait",
        )
        engine.deploy(builder.build())
        instance_id = engine.create_instance("wf")
        engine.start(instance_id)
        # upgrade while the instance is parked
        upgraded = WorkflowBuilder("wf", version="2")
        upgraded.activity("wait", "wait_for_event", params={"wait_key": "K2"})
        upgraded.activity(
            "mark", "set_variables", inputs={"v": "'two'"}, outputs={"v": "v"},
            after="wait",
        )
        engine.deploy(upgraded.build())
        instance = engine.complete_waiting_step("K", {})
        assert instance.status == INSTANCE_COMPLETED
        assert instance.type_version == "1"
        assert instance.variables["v"] == "one"


class TestLateBinding:
    """Section 2.1: with late binding, 'any change in a subworkflow
    definition will only affect those workflow instances that are newly
    started' — and a pinned reference never moves."""

    def _parent(self, pinned_version=""):
        builder = WorkflowBuilder("parent")
        builder.subworkflow(
            "call", "child", version=pinned_version, outputs={"result": "y"}
        )
        return builder.build()

    def test_late_bound_subworkflow_picks_up_upgrades(self):
        engine = WorkflowEngine("lb")
        engine.deploy(_child("1", "from-v1"))
        engine.deploy(self._parent())
        assert engine.run("parent").variables["result"] == "from-v1"
        engine.deploy(_child("2", "from-v2"))
        assert engine.run("parent").variables["result"] == "from-v2"

    def test_pinned_subworkflow_does_not_move(self):
        engine = WorkflowEngine("lb")
        engine.deploy(_child("1", "from-v1"))
        engine.deploy(self._parent(pinned_version="1"))
        engine.deploy(_child("2", "from-v2"))
        assert engine.run("parent").variables["result"] == "from-v1"


class TestPersistencePolicies:
    def _chain_engine(self, policy):
        engine = WorkflowEngine("p", persistence=policy)
        builder = WorkflowBuilder("chain")
        previous = None
        for index in range(10):
            builder.activity(f"s{index}", "noop", after=previous)
            previous = f"s{index}"
        engine.deploy(builder.build())
        return engine

    def test_unknown_policy_rejected(self):
        with pytest.raises(WorkflowError):
            WorkflowEngine("p", persistence="whenever")

    def test_both_policies_produce_identical_results(self):
        results = {}
        for policy in ("per_step", "per_quiescence"):
            engine = self._chain_engine(policy)
            instance = engine.run("chain")
            results[policy] = {
                "status": instance.status,
                "steps": {s.step_id: s.status for s in instance.steps.values()},
            }
        assert results["per_step"] == results["per_quiescence"]

    def test_per_step_persists_every_advance(self):
        engine = self._chain_engine("per_step")
        engine.run("chain")
        assert engine.database.instance_stores >= 10

    def test_per_quiescence_persists_at_boundaries_only(self):
        engine = self._chain_engine("per_quiescence")
        engine.run("chain")
        # creation + final settle (plus nothing in between)
        assert engine.database.instance_stores <= 3

    def test_per_quiescence_still_durable_at_waits(self):
        engine = WorkflowEngine("p", persistence="per_quiescence")
        builder = WorkflowBuilder("waiter")
        builder.activity("a", "noop")
        builder.activity("wait", "wait_for_event", params={"wait_key": "K"}, after="a")
        builder.activity("b", "noop", after="wait")
        engine.deploy(builder.build())
        instance_id = engine.create_instance("waiter")
        engine.start(instance_id)
        # the park point is durable: the store happened at quiescence
        persisted = engine.database.load_instance(instance_id)
        assert persisted.step_state("a").status == "completed"
        assert persisted.step_state("wait").status == "waiting"
        instance = engine.complete_waiting_step("K", {})
        assert instance.status == INSTANCE_COMPLETED

    def test_crash_loses_in_flight_steps_under_lazy_policy(self):
        """The durability trade, demonstrated: a crash mid-advance loses
        everything since the last quiescence under per_quiescence, nothing
        under per_step."""
        observed = {}
        for policy in ("per_step", "per_quiescence"):
            engine = WorkflowEngine("p", persistence=policy, raise_on_failure=False)

            def crash(context):  # a hard crash, not a recorded failure
                raise KeyboardInterrupt

            engine.activities.register("crash", crash)
            builder = WorkflowBuilder("wf")
            builder.activity("a", "noop")
            builder.activity("b", "noop", after="a")
            builder.activity("boom", "crash", after="b")
            engine.deploy(builder.build())
            instance_id = engine.create_instance("wf")
            with pytest.raises(KeyboardInterrupt):
                engine.start(instance_id)
            persisted = engine.database.load_instance(instance_id)
            observed[policy] = persisted.step_state("b").status
        assert observed["per_step"] == "completed"      # survived the crash
        assert observed["per_quiescence"] == "pending"  # lost with the workspace
