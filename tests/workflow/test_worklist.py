"""Tests for the work-item list (human approvals)."""

import pytest

from repro.errors import WorklistError
from repro.workflow.worklist import Worklist


def _worklist():
    return Worklist("test")


class TestLifecycle:
    def test_add_creates_open_item(self):
        wl = _worklist()
        item = wl.add("I1", "approve", "Approve PO", payload={"amount": 5})
        assert item.status == "open"
        assert item.payload == {"amount": 5}
        assert wl.open_items() == [item]

    def test_claim_then_complete(self):
        wl = _worklist()
        item = wl.add("I1", "approve", "Approve")
        wl.claim(item.item_id, "alice")
        completed = wl.complete(item.item_id, {"approved": True}, completed_by="alice")
        assert completed.status == "completed"
        assert completed.decision == {"approved": True}
        assert wl.completed_count() == 1

    def test_complete_unclaimed_item_allowed(self):
        wl = _worklist()
        item = wl.add("I1", "approve", "Approve")
        wl.complete(item.item_id, {"approved": False})
        assert wl.get(item.item_id).status == "completed"

    def test_claim_completed_item_rejected(self):
        wl = _worklist()
        item = wl.add("I1", "approve", "Approve")
        wl.complete(item.item_id, {})
        with pytest.raises(WorklistError):
            wl.claim(item.item_id, "bob")

    def test_wrong_user_cannot_complete_claimed(self):
        wl = _worklist()
        item = wl.add("I1", "approve", "Approve")
        wl.claim(item.item_id, "alice")
        with pytest.raises(WorklistError):
            wl.complete(item.item_id, {}, completed_by="bob")

    def test_double_complete_rejected(self):
        wl = _worklist()
        item = wl.add("I1", "approve", "Approve")
        wl.complete(item.item_id, {})
        with pytest.raises(WorklistError):
            wl.complete(item.item_id, {})

    def test_unknown_item_raises(self):
        with pytest.raises(WorklistError):
            _worklist().complete("WI-x", {})


class TestQueries:
    def test_open_items_by_role(self):
        wl = _worklist()
        wl.add("I1", "s", "a", role="manager")
        wl.add("I1", "s2", "b", role="clerk")
        assert len(wl.open_items("manager")) == 1
        assert len(wl.open_items()) == 2

    def test_items_for_instance(self):
        wl = _worklist()
        wl.add("I1", "s", "a")
        wl.add("I2", "s", "b")
        assert len(wl.items_for_instance("I1")) == 1


class TestAutomation:
    def test_auto_policy_completes_on_add(self):
        wl = _worklist()
        wl.set_auto_policy(lambda item: {"approved": item.payload["amount"] < 100})
        approved = wl.add("I1", "s", "small", payload={"amount": 5})
        denied = wl.add("I1", "s", "big", payload={"amount": 500})
        assert approved.decision == {"approved": True}
        assert denied.decision == {"approved": False}
        assert wl.open_items() == []

    def test_auto_policy_can_leave_open(self):
        wl = _worklist()
        wl.set_auto_policy(lambda item: None)
        item = wl.add("I1", "s", "manual")
        assert item.status == "open"

    def test_completion_callback_fires(self):
        wl = _worklist()
        seen = []
        wl.on_completion(lambda item: seen.append(item.item_id))
        item = wl.add("I1", "s", "x")
        wl.complete(item.item_id, {})
        assert seen == [item.item_id]

    def test_auto_policy_triggers_callback_too(self):
        wl = _worklist()
        seen = []
        wl.on_completion(lambda item: seen.append(item.item_id))
        wl.set_auto_policy(lambda item: {"approved": True})
        item = wl.add("I1", "s", "x")
        assert seen == [item.item_id]
